#!/usr/bin/env python
"""Fail when the docs drift from the code's canonical tables.

Three checks, each asserting set equality in *both* directions:

- ``docs/http_api.md`` vs. the HTTP server's canonical route list
  :data:`repro.serve.httpd.ROUTES` (each route documented as a heading
  of the form ``### `METHOD /path```);
- ``docs/observability.md`` vs. the Prometheus metric families
  :func:`repro.obs.prom.family_names` says a ``/metrics`` render
  emits (each family mentioned by name somewhere in the page);
- ``docs/cluster.md`` vs. the cluster wire protocol's frame-type
  registry :data:`repro.cluster.proto.MESSAGE_TYPES` (each frame type
  documented as a ``### `type``` heading).

A route, metric, or frame type added to the code without
documentation, or documentation for one the code no longer has, fails
CI.

Usage (repo root)::

    PYTHONPATH=src python tools/check_docs_freshness.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "http_api.md"
OBS_DOC_PATH = REPO_ROOT / "docs" / "observability.md"
CLUSTER_DOC_PATH = REPO_ROOT / "docs" / "cluster.md"

#: The heading form the API reference uses for each endpoint.
_HEADING = re.compile(
    r"^#{2,4}\s+`(GET|POST|PUT|DELETE|PATCH|HEAD)\s+(/\S*)`\s*$",
    re.MULTILINE,
)

#: Anything that looks like one of our Prometheus metric names.
_METRIC_TOKEN = re.compile(r"\brepro_[a-z0-9_]+\b")

#: Histogram sample suffixes that resolve to their base family.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")

#: The heading form docs/cluster.md uses for each wire frame type.
_FRAME_HEADING = re.compile(r"^#{2,4}\s+`([a-z_]+)`\s*$", re.MULTILINE)


def documented_routes(text: str) -> set[tuple[str, str]]:
    """The ``(method, path pattern)`` pairs documented as headings."""
    return {(m.group(1), m.group(2)) for m in _HEADING.finditer(text)}


def registered_routes() -> set[tuple[str, str]]:
    """The server's canonical route table."""
    from repro.serve.httpd import ROUTES

    return set(ROUTES)


def check(doc_path: Path = DOC_PATH) -> list[str]:
    """The list of drift problems (empty when the docs are fresh)."""
    problems: list[str] = []
    if not doc_path.exists():
        return [f"{doc_path} does not exist"]
    documented = documented_routes(doc_path.read_text(encoding="utf-8"))
    registered = registered_routes()
    for method, path in sorted(registered - documented):
        problems.append(
            f"route {method} {path} is registered in repro/serve/httpd.py "
            f"but has no `### `{method} {path}`` heading in {doc_path.name}"
        )
    for method, path in sorted(documented - registered):
        problems.append(
            f"{doc_path.name} documents {method} {path}, which is not in "
            "repro.serve.httpd.ROUTES (stale documentation)"
        )
    if not documented:
        problems.append(
            f"{doc_path.name} documents no routes at all -- the heading "
            "format is ``### `METHOD /path```"
        )
    return problems


def documented_metrics(text: str) -> set[str]:
    """Every ``repro_*`` token mentioned in the observability page."""
    return set(_METRIC_TOKEN.findall(text))


def emitted_metrics() -> set[str]:
    """The deterministic family set a ``/metrics`` render emits."""
    from repro.obs.prom import family_names

    return family_names()


def check_metrics(doc_path: Path = OBS_DOC_PATH) -> list[str]:
    """Drift between documented and emitted Prometheus families."""
    problems: list[str] = []
    if not doc_path.exists():
        return [f"{doc_path} does not exist"]
    documented = documented_metrics(doc_path.read_text(encoding="utf-8"))
    emitted = emitted_metrics()
    for family in sorted(emitted - documented):
        problems.append(
            f"metric family {family} is emitted by /metrics but never "
            f"mentioned in {doc_path.name}"
        )
    # Documented tokens must be a family name or a histogram sample of
    # one (``_bucket``/``_sum``/``_count``) -- anything else is stale.
    for token in sorted(documented - emitted):
        base = next(
            (
                token[: -len(suffix)]
                for suffix in _HISTOGRAM_SUFFIXES
                if token.endswith(suffix) and token[: -len(suffix)] in emitted
            ),
            None,
        )
        if base is None:
            problems.append(
                f"{doc_path.name} mentions {token}, which /metrics does "
                "not emit (stale documentation)"
            )
    if not documented:
        problems.append(f"{doc_path.name} documents no repro_* metrics at all")
    return problems


def documented_frame_types(text: str) -> set[str]:
    """Every frame type documented as a ``### `type``` heading."""
    return set(_FRAME_HEADING.findall(text))


def wire_frame_types() -> set[str]:
    """The cluster protocol's canonical frame-type registry."""
    from repro.cluster.proto import MESSAGE_TYPES

    return set(MESSAGE_TYPES)


def check_cluster(doc_path: Path = CLUSTER_DOC_PATH) -> list[str]:
    """Drift between documented and registered wire frame types."""
    problems: list[str] = []
    if not doc_path.exists():
        return [f"{doc_path} does not exist"]
    documented = documented_frame_types(doc_path.read_text(encoding="utf-8"))
    registered = wire_frame_types()
    for frame_type in sorted(registered - documented):
        problems.append(
            f"frame type {frame_type!r} is in repro.cluster.proto."
            f"MESSAGE_TYPES but has no ``### `{frame_type}``` heading in "
            f"{doc_path.name}"
        )
    for frame_type in sorted(documented - registered):
        problems.append(
            f"{doc_path.name} documents frame type {frame_type!r}, which "
            "is not in repro.cluster.proto.MESSAGE_TYPES (stale "
            "documentation)"
        )
    if not documented:
        problems.append(
            f"{doc_path.name} documents no frame types at all -- the "
            "heading format is ``### `type```"
        )
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems = check()
    metric_problems = check_metrics()
    cluster_problems = check_cluster()
    if problems:
        print("docs/http_api.md is out of sync with the HTTP route table:")
        for problem in problems:
            print(f"  - {problem}")
    if metric_problems:
        print(
            "docs/observability.md is out of sync with the Prometheus "
            "metric families:"
        )
        for problem in metric_problems:
            print(f"  - {problem}")
    if cluster_problems:
        print(
            "docs/cluster.md is out of sync with the cluster wire "
            "protocol:"
        )
        for problem in cluster_problems:
            print(f"  - {problem}")
    if problems or metric_problems or cluster_problems:
        return 1
    routes = len(registered_routes())
    metrics = len(emitted_metrics())
    frames = len(wire_frame_types())
    print(
        f"docs freshness OK: all {routes} HTTP routes, {metrics} "
        f"Prometheus metric families, and {frames} cluster frame types "
        "documented, none stale"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
