#!/usr/bin/env python
"""Fail when ``docs/http_api.md`` drifts from the server's route table.

The HTTP server's canonical route list is
:data:`repro.serve.httpd.ROUTES`; the API reference documents each
route as a heading of the form ``### `METHOD /path```.  This check
asserts the two sets are *identical* in both directions -- a route
added to the server without documentation, or documentation for a
route the server no longer registers, fails CI.

Usage (repo root)::

    PYTHONPATH=src python tools/check_docs_freshness.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "http_api.md"

#: The heading form the API reference uses for each endpoint.
_HEADING = re.compile(
    r"^#{2,4}\s+`(GET|POST|PUT|DELETE|PATCH|HEAD)\s+(/\S*)`\s*$",
    re.MULTILINE,
)


def documented_routes(text: str) -> set[tuple[str, str]]:
    """The ``(method, path pattern)`` pairs documented as headings."""
    return {(m.group(1), m.group(2)) for m in _HEADING.finditer(text)}


def registered_routes() -> set[tuple[str, str]]:
    """The server's canonical route table."""
    from repro.serve.httpd import ROUTES

    return set(ROUTES)


def check(doc_path: Path = DOC_PATH) -> list[str]:
    """The list of drift problems (empty when the docs are fresh)."""
    problems: list[str] = []
    if not doc_path.exists():
        return [f"{doc_path} does not exist"]
    documented = documented_routes(doc_path.read_text(encoding="utf-8"))
    registered = registered_routes()
    for method, path in sorted(registered - documented):
        problems.append(
            f"route {method} {path} is registered in repro/serve/httpd.py "
            f"but has no `### `{method} {path}`` heading in {doc_path.name}"
        )
    for method, path in sorted(documented - registered):
        problems.append(
            f"{doc_path.name} documents {method} {path}, which is not in "
            "repro.serve.httpd.ROUTES (stale documentation)"
        )
    if not documented:
        problems.append(
            f"{doc_path.name} documents no routes at all -- the heading "
            "format is ``### `METHOD /path```"
        )
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    problems = check()
    if problems:
        print("docs/http_api.md is out of sync with the HTTP route table:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    count = len(registered_routes())
    print(f"docs freshness OK: all {count} HTTP routes documented, none stale")
    return 0


if __name__ == "__main__":
    sys.exit(main())
