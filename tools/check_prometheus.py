#!/usr/bin/env python
"""CI scrape check: ``/metrics`` must be valid Prometheus exposition.

Boots the serving stack on an ephemeral port, drives one counting
request through it, then scrapes ``/metrics`` twice -- once via the
``?format=prometheus`` query parameter and once via an ``Accept:
text/plain`` header, the way a real Prometheus scraper negotiates --
and validates both line by line with
:func:`repro.obs.prom.validate_exposition`.  Asserts the scrape
carries the full deterministic family set
(:func:`repro.obs.prom.family_names`) and that the request just made
is visible in the counters.

Usage (repo root)::

    PYTHONPATH=src python tools/check_prometheus.py
"""

from __future__ import annotations

import json
import sys
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def scrape(base: str, path: str, headers: dict | None = None) -> tuple[str, str]:
    request = urllib.request.Request(f"{base}{path}", headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.prom import CONTENT_TYPE, family_names, parse_exposition
    from repro.obs.prom import validate_exposition
    from repro.serve.httpd import BackgroundServer, CountingServer
    from repro.serve.service import CountingService

    problems: list[str] = []
    server = CountingServer(service=CountingService(), host="127.0.0.1", port=0)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        payload = json.dumps(
            {
                "query": "exists z. (E(x, z) & E(z, y))",
                "structure": {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}},
            }
        ).encode()
        request = urllib.request.Request(
            f"{base}/count", data=payload, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            count = json.load(response)["count"]
        if count != 3:
            problems.append(f"/count returned {count}, expected 3")

        by_query, query_type = scrape(base, "/metrics?format=prometheus")
        by_accept, accept_type = scrape(
            base, "/metrics", {"Accept": "text/plain"}
        )
        for label, content_type in (
            ("?format=prometheus", query_type),
            ("Accept: text/plain", accept_type),
        ):
            if content_type != CONTENT_TYPE:
                problems.append(
                    f"{label}: Content-Type {content_type!r}, "
                    f"expected {CONTENT_TYPE!r}"
                )
        for label, text in (
            ("?format=prometheus", by_query),
            ("Accept: text/plain", by_accept),
        ):
            for problem in validate_exposition(text):
                problems.append(f"{label}: {problem}")

        families = parse_exposition(by_query)
        missing = family_names() - set(families)
        for family in sorted(missing):
            problems.append(f"family {family} missing from the scrape")
        samples = {
            tuple(sorted(labels.items())): value
            for name, labels, value in families.get(
                "repro_requests_total", {"samples": []}
            )["samples"]
        }
        if samples.get((("endpoint", "count"),), 0) < 1:
            problems.append(
                "repro_requests_total{endpoint=\"count\"} did not record "
                "the request just made"
            )

        # JSON must stay the default for clients that never negotiate.
        plain, plain_type = scrape(base, "/metrics")
        if "application/json" not in plain_type:
            problems.append(
                f"default /metrics Content-Type {plain_type!r} is not JSON"
            )
        else:
            json.loads(plain)

    if problems:
        print("/metrics Prometheus exposition check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    lines = sum(1 for line in by_query.splitlines() if line.strip())
    print(
        f"prometheus scrape OK: {len(families)} families, {lines} lines, "
        "valid under both negotiation paths, JSON default intact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
