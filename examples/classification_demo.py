"""Classifying query families with the trichotomy theorem.

Run with ``python examples/classification_demo.py``.

The example builds several query families, computes the structural
measures the classification inspects (treewidth of cores and of contract
graphs of the associated pp-formulas), and reports which case of the
trichotomy each family falls into:

* path / star queries           -> case 1 (fixed-parameter tractable)
* hidden-clique queries         -> case 2 (equivalent to p-Clique)
* clique queries, grid queries  -> case 3 (as hard as p-#Clique)
* unions built from the above inherit the classification of their
  ``phi+`` sets (Theorem 3.2).
"""

from __future__ import annotations

from repro import classify_ep_class, classify_pp_class
from repro.algorithms import clique_query_family
from repro.core.classification import measure_pp_class
from repro.logic.builder import pp_from_atom_specs
from repro.logic.ep import EPFormula
from repro.workloads import (
    cycle_query,
    grid_query,
    hidden_clique_query,
    path_query,
    star_query,
    union_of_paths_query,
)


def show_family(name: str, formulas, bound: int) -> None:
    classification = classify_pp_class(formulas, treewidth_bound=bound)
    print(f"{name} (bound w={bound})")
    print(f"  -> {classification.case.value}")
    print(
        f"     max core treewidth {classification.max_core_treewidth}, "
        f"max contract treewidth {classification.max_contract_treewidth}"
    )
    for measure in classification.measures[:3]:
        print(
            f"       {measure.formula}: core tw {measure.core_treewidth}, "
            f"contract tw {measure.contract_treewidth}"
        )
    if len(classification.measures) > 3:
        print(f"       ... ({len(classification.measures) - 3} more)")
    print()


def main() -> None:
    print("Prenex pp-formula families")
    print("=" * 72)
    show_family(
        "Path queries (endpoints liberal)",
        [path_query(length, quantify_interior=True) for length in range(1, 7)],
        bound=1,
    )
    show_family(
        "Star queries (all variables liberal)",
        [star_query(rays) for rays in range(1, 7)],
        bound=1,
    )
    show_family(
        "Hidden-clique queries (clique is quantified)",
        [hidden_clique_query(k) for k in range(2, 6)],
        bound=1,
    )
    show_family("Clique queries (all variables liberal)", clique_query_family(6), bound=2)
    show_family(
        "Grid queries", [grid_query(n, n) for n in range(2, 5)], bound=2
    )
    show_family(
        "Cycle queries", [cycle_query(length) for length in range(3, 8)], bound=1
    )

    print("EP formula families (classified through phi+)")
    print("=" * 72)
    unions = [union_of_paths_query(list(range(1, top + 1))) for top in range(1, 5)]
    classification = classify_ep_class(unions, treewidth_bound=2)
    print("Unions of path queries of lengths 1..k")
    print(f"  -> {classification.case.value}")
    print(f"     phi+ contains {len(classification.pp_formulas)} pp-formulas")
    print()

    two_step = pp_from_atom_specs(
        [("E", ("x", "z")), ("E", ("z", "y"))], liberal=["x", "y"]
    )
    mixed: list[EPFormula] = [
        EPFormula.from_disjuncts([hidden_clique_query(k), two_step]) for k in range(2, 5)
    ]
    classification = classify_ep_class(mixed, treewidth_bound=1)
    print("Unions mixing a hidden-clique disjunct with a path disjunct")
    print(f"  -> {classification.case.value}")
    measures = measure_pp_class(list(classification.pp_formulas))
    worst = max(measures, key=lambda m: m.core_treewidth)
    print(
        f"     hardest phi+ member has core treewidth {worst.core_treewidth} "
        f"and contract treewidth {worst.contract_treewidth}"
    )


if __name__ == "__main__":
    main()
