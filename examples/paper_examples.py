"""Walk through the worked examples of the paper (Sections 4 and 5).

Run with ``python examples/paper_examples.py``.

Reproduces, with the library's public API:

* Example 4.1 -- inclusion-exclusion over the disjuncts of
  ``phi(w,x,y,z) = E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))``;
* Example 4.2 / 5.15 -- cancellation of counting-equivalent terms, which
  removes every treewidth-2 term from the expansion;
* Example 4.3 -- recovering the pp-formula counts from an oracle for the
  EP formula by solving a Vandermonde system;
* Example 5.21 -- the general construction ``theta -> theta+`` in the
  presence of a sentence disjunct.
"""

from __future__ import annotations

from repro import Structure, count_answers, counting_equivalent, star_decomposition
from repro.algorithms import count_pp_answers_brute_force
from repro.core import (
    OracleCallCounter,
    make_brute_force_oracle,
    plus_decomposition,
    raw_inclusion_exclusion,
    recover_star_counts,
)
from repro.workloads import example_4_1_query, example_4_2_query, example_5_21_query


def example_4_1() -> None:
    print("=" * 72)
    print("Example 4.1: inclusion-exclusion over two disjuncts")
    print("=" * 72)
    query = example_4_1_query()
    print("phi:", query)
    structure = Structure.from_relations({"E": [(1, 2), (2, 3), (3, 4), (4, 4)]})
    disjuncts = query.disjuncts()
    for disjunct in disjuncts:
        print("  disjunct:", disjunct, "->", count_pp_answers_brute_force(disjunct, structure))
    conjunction = disjuncts[0].conjoin(disjuncts[1])
    print("  phi1 & phi2:", count_pp_answers_brute_force(conjunction, structure))
    total = count_answers(query, structure)
    print("  |phi(B)| =", total, "(= |phi1| + |phi2| - |phi1 & phi2|)")
    print()


def example_4_2() -> None:
    print("=" * 72)
    print("Example 4.2 / 5.15: cancellation in inclusion-exclusion")
    print("=" * 72)
    query = example_4_2_query()
    print("phi:", query)
    raw = raw_inclusion_exclusion(query)
    cancelled = star_decomposition(query)
    print(f"  raw expansion: {len(raw)} terms, max treewidth {raw.max_treewidth()}")
    print(f"  after cancellation: {len(cancelled)} terms, max treewidth {cancelled.max_treewidth()}")
    for term in cancelled.terms:
        print(f"    {term.coefficient:+d} * |{term.formula}|")
    phi1, phi2, phi3 = query.disjuncts()
    print("  phi1 ~count phi2:", counting_equivalent(phi1, phi2))
    print("  phi1 ~count phi3:", counting_equivalent(phi1, phi3))
    print()


def example_4_3() -> None:
    print("=" * 72)
    print("Example 4.3: recovering pp-counts from an EP oracle (Vandermonde)")
    print("=" * 72)
    query = example_4_1_query()
    structure = Structure.from_relations({"E": [(1, 2), (2, 3), (3, 4), (4, 4)]})
    oracle = OracleCallCounter(make_brute_force_oracle(query))
    recovered = recover_star_counts(query, structure, oracle)
    for formula, value in recovered.items():
        direct = count_pp_answers_brute_force(formula, structure)
        status = "ok" if value == direct else "MISMATCH"
        print(f"  |{formula}| = {value} (direct {direct}) [{status}]")
    print(f"  oracle calls used: {oracle.calls}")
    print()


def example_5_21() -> None:
    print("=" * 72)
    print("Example 5.21: the general construction with a sentence disjunct")
    print("=" * 72)
    query = example_5_21_query()
    decomposition = plus_decomposition(query)
    print("  sentence disjuncts:", len(decomposition.sentence_disjuncts))
    print("  phi*_af:", [str(f) for f in decomposition.star.formulas()])
    print("  phi-_af:", [str(f) for f in decomposition.minus])
    print("  phi+ has", len(decomposition.plus), "formulas:")
    for formula in decomposition.plus:
        print("    ", formula)
    triangle = Structure.from_relations({"E": [(1, 2), (2, 3), (3, 1)]})
    print("  |theta| on a triangle:", count_answers(query, triangle),
          "(the sentence disjunct holds, so the count is |B|^|V| = 3^4)")
    short_path = Structure.from_relations({"E": [(1, 2), (2, 3)]})
    print("  |theta| on a 2-edge path:", count_answers(query, short_path),
          "(no length-3 path, so only the free part contributes)")
    print()


def main() -> None:
    example_4_1()
    example_4_2()
    example_4_3()
    example_5_21()


if __name__ == "__main__":
    main()
