#!/usr/bin/env python
"""The serving front end, end to end: boot, load, saturate, shut down.

Boots a live :mod:`repro.serve` HTTP server on an ephemeral port, then
plays the three phases of a serving story against it:

1. **correctness** -- ``/count``, ``/count_many``, and
   ``/count_sharded`` agree with the direct engine answer;
2. **registration** -- the structure is registered once under a name
   (``PUT /structures/demo``) and every later request counts by
   ``{"ref": "demo"}``, shipping zero structure bytes;
3. **saturation** -- a burst beyond ``max_in_flight + max_queue``
   produces immediate 429 rejections instead of an unbounded queue;
4. **observability** -- ``/metrics`` shows the per-endpoint request
   counters and latency percentiles, the engine's own stats, and the
   registry block.

The shutdown is graceful and the demo ends by proving no worker child
processes survived it.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

import json
import multiprocessing
import threading
import urllib.error
import urllib.request

from repro.serve import (
    BackgroundServer,
    CountingServer,
    CountingService,
    ServiceConfig,
)

TRIANGLE = {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}}
PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


def post(base: str, path: str, payload: dict, method: str = "POST") -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def main() -> None:
    config = ServiceConfig(
        max_in_flight=2, max_queue=2, request_timeout_seconds=10
    )
    server = CountingServer(
        service=CountingService(config=config, owns_engine=True), port=0
    )
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        print(f"serving on {base}  (max_in_flight=2, max_queue=2)")

        # -- 1. correctness across the three counting endpoints -------
        count = post(base, "/count", {"query": PATH_QUERY, "structure": TRIANGLE})
        sharded = post(
            base,
            "/count_sharded",
            {"query": PATH_QUERY, "structure": TRIANGLE, "shard_count": 2},
        )
        grid = post(
            base,
            "/count_many",
            {"queries": [PATH_QUERY, "E(x, y)"], "structures": [TRIANGLE]},
        )
        print(f"/count -> {count['count']}, /count_sharded -> {sharded['count']}, "
              f"/count_many -> {grid['counts']}")

        # -- 2. register once, then count by reference ----------------
        entry = post(base, "/structures/demo", {"structure": TRIANGLE},
                     method="PUT")
        print(f"registered {entry['name']!r}: pinned={entry['pinned']}, "
              f"~{entry['resident_bytes']} bytes resident")
        by_ref = post(
            base, "/count", {"query": PATH_QUERY, "structure": {"ref": "demo"}}
        )
        assert by_ref["count"] == count["count"]
        print(f"/count by ref -> {by_ref['count']} (request shipped no data)")

        # -- 3. a burst at 3x capacity: overflow rejects, fast --------
        results = {"ok": 0, "rejected": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(12)

        def fire() -> None:
            barrier.wait()
            try:
                post(base, "/count", {"query": PATH_QUERY, "structure": TRIANGLE})
                with lock:
                    results["ok"] += 1
            except urllib.error.HTTPError as error:
                assert error.code == 429, error.code
                with lock:
                    results["rejected"] += 1

        threads = [threading.Thread(target=fire) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print(f"burst of 12: {results['ok']} served, "
              f"{results['rejected']} rejected with 429")

        # -- 4. metrics: service histograms + engine + registry -------
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            metrics = json.load(response)
        count_stats = metrics["service"]["endpoints"]["count"]
        print(f"/count: {count_stats['completed']} completed, "
              f"{count_stats['rejected']} rejected, "
              f"p50 {count_stats['latency']['p50_seconds']}s")
        engine = metrics["engine"]
        print(f"engine: {engine['count_calls']} counts, "
              f"plan hit rate {engine['plan_hit_rate']:.2f}, "
              f"registry hits {engine['registry_hits']}")
        registry = metrics["registry"]
        print(f"registry: {registry['entries']} entries "
              f"({registry['pinned_entries']} pinned), "
              f"~{registry['resident_bytes']} bytes")

    children = multiprocessing.active_children()
    print(f"after graceful shutdown: {len(children)} child processes")
    assert not children


if __name__ == "__main__":
    main()
