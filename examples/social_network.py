"""Counting query answers on a synthetic social network.

Run with ``python examples/social_network.py``.

The paper motivates answer counting with decision-support queries over
large data; this example plays that scenario on a synthetic
follows-graph: how many follower-of-follower pairs are there, how many
pairs follow each other inside the same community, and so on.  It also
compares the paper-pipeline counting strategy against the naive
enumeration baseline on growing data.
"""

from __future__ import annotations

import time

from repro import count_answers
from repro.workloads import social_network


def report_counts() -> None:
    scenario = social_network(people=40, follow_probability=0.06, seed=7)
    structure = scenario.structure()
    print(f"Database: {scenario.database!r}")
    print(f"Universe size: {structure.size}, total rows: {scenario.database.total_rows()}")
    print()
    print(f"{'query':>28} | {'answers':>9}")
    print("-" * 42)
    for name, query in scenario.queries.items():
        count = query.count(structure)
        print(f"{name:>28} | {count:>9}")
    print()


def scaling_comparison() -> None:
    """Compare the paper pipeline against naive enumeration on a 4-ary query.

    The follows-chain query has four output variables, so the naive
    baseline enumerates ``|universe|**4`` assignments while the pipeline
    counts along a treewidth-1 decomposition; the gap widens rapidly
    with the number of people.
    """
    from repro.db import parse_ucq

    chain = parse_ucq(
        "Chain(x, y, z, w) :- Follows(x, y), Follows(y, z), Follows(z, w)."
    ).to_ep()
    print("Scaling: paper pipeline ('auto') vs naive enumeration on a 4-variable chain query")
    print(f"{'people':>7} | {'auto (s)':>9} | {'naive (s)':>10} | {'answers':>9}")
    print("-" * 46)
    for people in (8, 12, 16, 20):
        scenario = social_network(people=people, follow_probability=0.15, seed=11)
        structure = scenario.structure()

        start = time.perf_counter()
        fast = count_answers(chain, structure, strategy="auto")
        fast_seconds = time.perf_counter() - start

        start = time.perf_counter()
        slow = count_answers(chain, structure, strategy="naive")
        slow_seconds = time.perf_counter() - start

        assert fast == slow, "strategies disagree -- this is a bug"
        print(f"{people:>7} | {fast_seconds:>9.4f} | {slow_seconds:>10.4f} | {fast:>9}")
    print()
    print("The naive strategy enumerates |universe|^4 assignments; the paper")
    print("pipeline counts along a treewidth-1 decomposition of the query, so")
    print("its cost grows with the data's edge count rather than the fourth")
    print("power of the universe size.")


def main() -> None:
    report_counts()
    scaling_comparison()


if __name__ == "__main__":
    main()
