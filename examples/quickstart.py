"""Quickstart: counting answers to queries on a small graph.

Run with ``python examples/quickstart.py``.

The example builds a small directed graph, counts the answers of a few
existential positive queries with the library's main entry point
:func:`repro.count_answers`, and cross-checks the result against the
naive baseline.
"""

from __future__ import annotations

from repro import Structure, count_answers, count_answers_all_strategies, parse_query


def main() -> None:
    # A directed graph on 6 vertices: a cycle 0..4 plus a chord and a loop.
    graph = Structure.from_relations(
        {
            "E": [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (1, 4),
                (5, 5),
                (2, 5),
            ]
        }
    )
    print("Graph:")
    print(graph.describe())
    print()

    # 1. A conjunctive query: pairs connected by a directed path of length 2.
    two_step = "exists z. (E(x, z) & E(z, y))"
    print(f"|{two_step}| =", count_answers(two_step, graph))

    # 2. A union of conjunctive queries: pairs at distance exactly 1 or 2.
    #    The header declares the liberal variables explicitly.
    union = "phi(x, y) = E(x, y) | (exists z. (E(x, z) & E(z, y)))"
    print(f"|{union}| =", count_answers(union, graph))

    # 3. Liberal variables beyond the free variables: the count is taken
    #    over (x, y, w) even though w is unconstrained, so every answer of
    #    E(x, y) is multiplied by |universe| choices for w.
    liberal = parse_query("E(x, y)", liberal=["x", "y", "w"])
    print("|E(x, y)| over liberal (x, y, w) =", count_answers(liberal, graph))

    # 4. All strategies agree (the test-suite asserts this property on
    #    randomized inputs; here we just show it).
    print()
    print("Strategy cross-check for the union query:")
    for strategy, value in count_answers_all_strategies(union, graph).items():
        print(f"  {strategy:>20}: {value}")


if __name__ == "__main__":
    main()
