"""The counting engine: compile once, execute everywhere.

Demonstrates the `repro.engine` subsystem on the social-network
scenario: plan compilation and caching, warm vs. cold timings, the batch
API over many structures, and the engine statistics.

Run with::

    PYTHONPATH=src python examples/engine_demo.py
"""

import time

from repro import Engine
from repro.engine.plan import compile_plan
from repro.structures.random_gen import random_graph
from repro.workloads.scenarios import social_network, tenant_network


def main() -> None:
    scenario = social_network(people=20, seed=0)
    structure = scenario.structure()
    engine = Engine()

    print("== compiled plans ==")
    for name, query in scenario.queries.items():
        plan = engine.compile(query.to_ep())
        print(f"{name:28s} {plan.describe()}  ({plan.compile_seconds * 1e3:.1f} ms)")

    print("\n== the compile cost the plan cache removes ==")
    query = scenario.queries["reachable_in_two_or_one"].to_ep()
    before = time.perf_counter()
    compile_plan(query)  # what every pre-engine call re-paid
    per_call_compile = time.perf_counter() - before
    before = time.perf_counter()
    count = engine.count(query, structure)  # plan-cache hit: execute only
    warm = time.perf_counter() - before
    print(
        f"count={count}  compile {per_call_compile * 1e3:.1f} ms per call saved, "
        f"warm count {warm * 1e3:.1f} ms"
    )

    print("\n== batch over many structures ==")
    structures = [random_graph(12, 0.2, seed=s, relation="Follows") for s in range(6)]
    structures = [s.with_signature(structure.signature) for s in structures]
    grid = engine.count_many(
        [q.to_ep() for q in scenario.queries.values()], structures, parallel=False
    )
    for name, row in zip(scenario.queries, grid):
        print(f"{name:28s} {row}")

    print("\n== sharded counting over a multi-tenant structure ==")
    tenants = tenant_network(tenants=10, people_per_tenant=8, seed=1)
    tenant_structure = tenants.structure()
    query = tenants.queries["followers_of_followers"].to_ep()
    whole = engine.count(query, tenant_structure)
    sharded = engine.count_sharded(
        query, tenant_structure, shard_count=4, parallel=False
    )
    print(f"whole={whole}  sharded(4)={sharded}  (exactly equal by construction)")

    print("\n== engine stats ==")
    for key, value in engine.stats().as_dict().items():
        print(f"{key:28s} {value}")


if __name__ == "__main__":
    main()
