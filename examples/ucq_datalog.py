"""Using the database facade: datalog-style UCQs over a bibliography.

Run with ``python examples/ucq_datalog.py``.

Shows the :mod:`repro.db` layer: relations and databases, datalog-style
rules parsed into conjunctive queries and UCQs, answer counting and
(small) answer materialization, plus per-query structural reports.
"""

from __future__ import annotations

from repro import classify_query
from repro.db import Database, parse_ucq
from repro.workloads import triple_store


def main() -> None:
    scenario = triple_store(papers=20, authors=10, seed=3)
    db: Database = scenario.database
    print("Schema:", ", ".join(f"{name}/{db.relation(name).arity}" for name in db.relation_names))
    print("Rows:", db.total_rows(), " Domain size:", len(db.domain()))
    print()

    # A UCQ written as a small datalog program: pairs of papers related by
    # citation in either direction, or by sharing an author.
    related = parse_ucq(
        """
        Related(p, q) :- Cites(p, q).
        Related(p, q) :- Cites(q, p).
        Related(p, q) :- Wrote(a, p), Wrote(a, q).
        """
    )
    print("Query:")
    print(related)
    print()
    print("Answer count:", related.count(db))

    # Structural report: which case of the trichotomy does the family of
    # queries shaped like this one fall into?
    classification = classify_query(related.to_ep(), treewidth_bound=1)
    print("Classification (bound w=1):", classification.case.value)
    print("  ", classification.summary())
    print()

    # Small result sets can be materialized through the Database facade.
    self_citers = parse_ucq("SelfCite(a) :- Wrote(a, p), Wrote(a, q), Cites(p, q).")
    print("Self-citing authors:", self_citers.count(db))
    for answer in db.answers(self_citers)[:5]:
        print("   ", {variable.name: value for variable, value in answer.items()})


if __name__ == "__main__":
    main()
