"""Cooperative cost budgets for query execution.

The service's request deadline used to be advisory: a timed-out count
kept burning its executor thread (and a pool worker) until it finished
naturally, surfacing only as an ``abandoned`` gauge.  A
:class:`CostBudget` makes cancellation real by cooperation: the hot
loops -- the junction-tree DP in :mod:`repro.algorithms.csp`, the
backtracking search in :mod:`repro.structures.homomorphism`, and the
encoded-table joins in :mod:`repro.structures.encoding` /
:mod:`repro.engine.context` -- charge their iteration counts against
the ambient budget and raise
:class:`~repro.exceptions.BudgetExceeded` when it runs out.

The budget is *ambient*, carried in a :class:`contextvars.ContextVar`
rather than threaded through every function signature:

* the engine installs it with :func:`budget_scope` around an
  execution, so the sequential paths see it without any signature
  changes (the service's executor threads copy the context, so the
  scope crosses the thread hop);
* the executor reads :func:`current_budget` when packing pool jobs and
  ships the budget *by value* across the fork boundary; the worker
  re-installs it around the job, so budget- and deadline-exceeded
  counts abort inside the worker instead of running forever.

Charging is designed to cost nothing when no budget is set: hot loops
fetch the budget once per call (``budget = current_budget()``) and
guard each charge with ``if budget is not None``.  With a budget set,
the step counter is checked on every charge but the monotonic clock
only every ``check_interval`` steps, so deadline enforcement does not
put a syscall in the inner loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.exceptions import BudgetExceeded, ReproError

#: Steps between monotonic-clock checks while charging.
DEFAULT_CHECK_INTERVAL = 2048


class CostBudget:
    """A step counter plus an optional deadline, charged cooperatively.

    ``max_steps`` bounds the total iterations charged (``None`` for
    unlimited); ``max_seconds`` bounds wall time from :meth:`start`
    (``None`` for no deadline).  The budget is mutable, single-use
    state: it is armed once and charged from one execution (or one
    worker job) at a time.

    Pickling ships the *remaining* budget: a budget forwarded to a pool
    worker mid-execution grants the worker what is left, not a fresh
    allowance, so a requested budget is honored within a small factor
    end to end.
    """

    __slots__ = ("max_steps", "max_seconds", "check_interval", "steps",
                 "_started_at", "_deadline", "_tick")

    def __init__(
        self,
        max_steps: int | None = None,
        max_seconds: float | None = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ):
        if max_steps is not None and max_steps <= 0:
            raise ReproError("max_steps must be positive when set")
        if max_seconds is not None and max_seconds <= 0:
            raise ReproError("max_seconds must be positive when set")
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.check_interval = max(1, int(check_interval))
        self.steps = 0
        self._started_at: float | None = None
        self._deadline: float | None = None
        self._tick = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "CostBudget":
        """Arm the deadline clock (idempotent)."""
        if self._started_at is None:
            self._started_at = time.monotonic()
            if self.max_seconds is not None:
                self._deadline = self._started_at + self.max_seconds
        return self

    @property
    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def progress(self) -> dict:
        """Partial-progress stats, the 504 body's ``budget`` block."""
        out: dict = {"steps": self.steps}
        if self.max_steps is not None:
            out["max_steps"] = self.max_steps
        if self.max_seconds is not None:
            out["max_seconds"] = self.max_seconds
        if self._started_at is not None:
            out["elapsed_seconds"] = self.elapsed_seconds
        return out

    # -- charging -------------------------------------------------------
    def charge(self, steps: int = 1) -> None:
        """Charge ``steps`` iterations; raise when the budget runs out."""
        self.steps += steps
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"cost budget exhausted after {self.steps} steps "
                f"(max_steps={self.max_steps})",
                self.progress(),
            )
        if self._deadline is not None:
            self._tick += steps
            if self._tick >= self.check_interval:
                self._tick = 0
                if time.monotonic() > self._deadline:
                    raise BudgetExceeded(
                        f"cost budget deadline exceeded after "
                        f"{self.elapsed_seconds:.3f}s "
                        f"(max_seconds={self.max_seconds})",
                        self.progress(),
                    )

    def check(self) -> None:
        """An explicit deadline check for chunky (vectorized) phases."""
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"cost budget exhausted after {self.steps} steps "
                f"(max_steps={self.max_steps})",
                self.progress(),
            )
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise BudgetExceeded(
                f"cost budget deadline exceeded after "
                f"{self.elapsed_seconds:.3f}s (max_seconds={self.max_seconds})",
                self.progress(),
            )

    # -- fork transport: ship the remaining allowance -------------------
    def __getstate__(self):
        remaining_seconds = self.max_seconds
        if self._deadline is not None:
            remaining_seconds = max(0.001, self._deadline - time.monotonic())
        remaining_steps = self.max_steps
        if self.max_steps is not None:
            remaining_steps = max(1, self.max_steps - self.steps)
        return (remaining_steps, remaining_seconds, self.check_interval)

    def __setstate__(self, state) -> None:
        max_steps, max_seconds, check_interval = state
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.check_interval = check_interval
        self.steps = 0
        self._started_at = None
        self._deadline = None
        self._tick = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostBudget(max_steps={self.max_steps}, "
            f"max_seconds={self.max_seconds}, steps={self.steps})"
        )


#: The ambient budget of the current execution (``None`` = unlimited).
_current: ContextVar[CostBudget | None] = ContextVar(
    "repro_cost_budget", default=None
)


def current_budget() -> CostBudget | None:
    """The budget governing the current execution, if any."""
    return _current.get()


@contextmanager
def budget_scope(budget: CostBudget | None):
    """Install ``budget`` as the ambient budget for the ``with`` body.

    ``None`` explicitly clears any inherited budget (used by paths that
    must not be charged, e.g. registration work).
    """
    if budget is not None:
        budget.start()
    token = _current.set(budget)
    try:
        yield budget
    finally:
        _current.reset(token)
