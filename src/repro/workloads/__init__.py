"""Workload generators: query families, random queries and domain scenarios."""

from repro.workloads.generators import (
    clique_query,
    cycle_query,
    example_4_1_query,
    example_4_2_query,
    example_5_21_query,
    frontier_family,
    frontier_query_pair,
    grid_query,
    hidden_clique_query,
    path_query,
    random_conjunctive_query,
    random_ucq,
    star_query,
    union_of_paths_query,
)
from repro.workloads.scenarios import (
    Scenario,
    all_scenarios,
    movie_database,
    social_network,
    tenant_network,
    triple_store,
)

__all__ = [
    "clique_query",
    "cycle_query",
    "frontier_family",
    "frontier_query_pair",
    "example_4_1_query",
    "example_4_2_query",
    "example_5_21_query",
    "grid_query",
    "hidden_clique_query",
    "path_query",
    "random_conjunctive_query",
    "random_ucq",
    "star_query",
    "union_of_paths_query",
    "Scenario",
    "all_scenarios",
    "movie_database",
    "social_network",
    "tenant_network",
    "triple_store",
]
