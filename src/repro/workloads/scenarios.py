"""Domain scenarios: realistic-looking synthetic databases and query mixes.

The paper motivates answer counting with decision-support workloads over
large data volumes; these scenarios provide small but structurally
realistic stand-ins used by the examples and benchmarks:

* a **social network** (people, follows-edges, community memberships),
* an **RDF-style triple store** flattened into binary relations
  (publications, authorship, citations),
* a **movie database** (movies, actors, casting, genres).

Each scenario returns a :class:`~repro.db.database.Database` plus a
dictionary of named queries (a mix of conjunctive queries and UCQs) so
that callers can iterate over realistic query shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.database import Database
from repro.db.query import UnionOfConjunctiveQueries
from repro.db.sql_like import parse_ucq


@dataclass(frozen=True)
class Scenario:
    """A generated database together with a dictionary of named queries."""

    name: str
    database: Database
    queries: dict[str, UnionOfConjunctiveQueries]

    def structure(self):
        """The database as a relational structure."""
        return self.database.to_structure()


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def social_network(
    people: int = 30,
    follow_probability: float = 0.08,
    communities: int = 4,
    seed: int | random.Random | None = 0,
) -> Scenario:
    """A follows-graph with community memberships.

    Relations: ``Follows(person, person)``, ``Member(person, community)``.
    """
    rng = _rng(seed)
    db = Database()
    names = [f"p{i}" for i in range(people)]
    groups = [f"c{i}" for i in range(communities)]
    for source in names:
        for target in names:
            if source != target and rng.random() < follow_probability:
                db.add_row("Follows", source, target)
    for person in names:
        db.add_row("Member", person, rng.choice(groups))
        if rng.random() < 0.3:
            db.add_row("Member", person, rng.choice(groups))
    queries = {
        "followers_of_followers": parse_ucq(
            "FoF(x, y) :- Follows(x, z), Follows(z, y)."
        ),
        "mutual_follow": parse_ucq("Mutual(x, y) :- Follows(x, y), Follows(y, x)."),
        "reachable_in_two_or_one": parse_ucq(
            """
            Reach(x, y) :- Follows(x, y).
            Reach(x, y) :- Follows(x, z), Follows(z, y).
            """
        ),
        "same_community_follow": parse_ucq(
            "SameCom(x, y) :- Follows(x, y), Member(x, c), Member(y, c)."
        ),
        "influencer_pairs": parse_ucq(
            """
            Inf(x, y) :- Follows(z, x), Follows(z, y), Follows(x, y).
            Inf(x, y) :- Follows(z, x), Follows(z, y), Follows(y, x).
            """
        ),
    }
    return Scenario("social_network", db, queries)


def triple_store(
    papers: int = 25,
    authors: int = 15,
    citation_probability: float = 0.08,
    seed: int | random.Random | None = 1,
) -> Scenario:
    """A bibliographic graph: authorship and citations.

    Relations: ``Wrote(author, paper)``, ``Cites(paper, paper)``,
    ``InVenue(paper, venue)``.
    """
    rng = _rng(seed)
    db = Database()
    paper_ids = [f"paper{i}" for i in range(papers)]
    author_ids = [f"author{i}" for i in range(authors)]
    venues = ["pods", "icdt", "sigmod", "vldb"]
    for paper in paper_ids:
        for author in rng.sample(author_ids, rng.randint(1, 3)):
            db.add_row("Wrote", author, paper)
        db.add_row("InVenue", paper, rng.choice(venues))
    for citing in paper_ids:
        for cited in paper_ids:
            if citing != cited and rng.random() < citation_probability:
                db.add_row("Cites", citing, cited)
    queries = {
        "coauthors": parse_ucq("Coauthor(a, b) :- Wrote(a, p), Wrote(b, p)."),
        "self_citation_authors": parse_ucq(
            "SelfCite(a) :- Wrote(a, p), Wrote(a, q), Cites(p, q)."
        ),
        "cited_or_citing": parse_ucq(
            """
            Related(p, q) :- Cites(p, q).
            Related(p, q) :- Cites(q, p).
            """
        ),
        "venue_citation_pairs": parse_ucq(
            "VenuePair(p, q) :- Cites(p, q), InVenue(p, v), InVenue(q, v)."
        ),
    }
    return Scenario("triple_store", db, queries)


def movie_database(
    movies: int = 20,
    actors: int = 25,
    casting_probability: float = 0.15,
    seed: int | random.Random | None = 2,
) -> Scenario:
    """Movies, actors and genres.

    Relations: ``ActsIn(actor, movie)``, ``HasGenre(movie, genre)``,
    ``Directed(director, movie)``.
    """
    rng = _rng(seed)
    db = Database()
    movie_ids = [f"m{i}" for i in range(movies)]
    actor_ids = [f"a{i}" for i in range(actors)]
    directors = [f"d{i}" for i in range(max(3, movies // 4))]
    genres = ["drama", "comedy", "thriller", "scifi"]
    for movie in movie_ids:
        db.add_row("HasGenre", movie, rng.choice(genres))
        db.add_row("Directed", rng.choice(directors), movie)
        for actor in actor_ids:
            if rng.random() < casting_probability:
                db.add_row("ActsIn", actor, movie)
    queries = {
        "costars": parse_ucq("Costar(a, b) :- ActsIn(a, m), ActsIn(b, m)."),
        "actor_director_pairs": parse_ucq(
            "Worked(a, d) :- ActsIn(a, m), Directed(d, m)."
        ),
        "same_genre_costars": parse_ucq(
            "GenrePair(a, b) :- ActsIn(a, m), ActsIn(b, n), HasGenre(m, g), HasGenre(n, g)."
        ),
        "versatile_actors": parse_ucq(
            """
            Versatile(a) :- ActsIn(a, m), HasGenre(m, g), ActsIn(a, n), HasGenre(n, h).
            """
        ),
    }
    return Scenario("movie_database", db, queries)


def tenant_network(
    tenants: int = 12,
    people_per_tenant: int = 8,
    follow_probability: float = 0.25,
    seed: int | random.Random | None = 3,
) -> Scenario:
    """A multi-tenant follows-graph: many small isolated social networks.

    Relations: ``Follows(person, person)``, ``Member(person, group)``,
    with every edge staying inside one tenant.  The Gaifman graph of the
    data therefore has (up to) ``tenants`` connected components, which
    makes this the canonical workload for the sharded execution path:
    component-aligned shards distribute whole tenants, and per-tenant
    query counts sum exactly.
    """
    rng = _rng(seed)
    db = Database()
    for tenant in range(tenants):
        names = [f"t{tenant}_p{i}" for i in range(people_per_tenant)]
        groups = [f"t{tenant}_g{i}" for i in range(max(1, people_per_tenant // 4))]
        for source in names:
            for target in names:
                if source != target and rng.random() < follow_probability:
                    db.add_row("Follows", source, target)
        for person in names:
            db.add_row("Member", person, rng.choice(groups))
    queries = {
        "followers_of_followers": parse_ucq(
            "FoF(x, y) :- Follows(x, z), Follows(z, y)."
        ),
        "mutual_follow": parse_ucq("Mutual(x, y) :- Follows(x, y), Follows(y, x)."),
        "reachable_in_two_or_one": parse_ucq(
            """
            Reach(x, y) :- Follows(x, y).
            Reach(x, y) :- Follows(x, z), Follows(z, y).
            """
        ),
        "same_group_follow": parse_ucq(
            "SameGroup(x, y) :- Follows(x, y), Member(x, g), Member(y, g)."
        ),
    }
    return Scenario("tenant_network", db, queries)


def all_scenarios(seed: int = 0) -> list[Scenario]:
    """All built-in scenarios, with seeds offset from ``seed``."""
    return [
        social_network(seed=seed),
        triple_store(seed=seed + 1),
        movie_database(seed=seed + 2),
        tenant_network(seed=seed + 3),
    ]
