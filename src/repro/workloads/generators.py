"""Workload generators: query families and random queries.

The benchmark harness sweeps over *families* of queries whose structural
parameters (treewidth of cores and contract graphs, number of disjuncts,
number of quantified variables) grow in a controlled way, so that the
measured scaling can be compared against the case the trichotomy assigns
to the family.  This module provides:

* deterministic families -- path, star, cycle, grid and clique queries,
  and their quantified variants;
* random conjunctive queries and UCQs with tunable size parameters.

All functions return :class:`~repro.logic.pp.PPFormula` or
:class:`~repro.logic.ep.EPFormula` objects over the graph signature
``{E/2}`` unless stated otherwise.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import WorkloadError
from repro.logic.builder import pp_from_atom_specs
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula
from repro.logic.terms import Atom, Variable


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Deterministic families
# ----------------------------------------------------------------------
def path_query(length: int, relation: str = "E", quantify_interior: bool = False) -> PPFormula:
    """The path query ``E(x0,x1) & E(x1,x2) & ... & E(x_{l-1},x_l)``.

    With ``quantify_interior=True`` only the endpoints are liberal, so
    the query asks for pairs connected by a path of the given length.
    Path queries have treewidth 1 and are the canonical FPT family.
    """
    if length < 1:
        raise WorkloadError("length must be at least 1")
    variables = [f"x{i}" for i in range(length + 1)]
    specs = [(relation, (variables[i], variables[i + 1])) for i in range(length)]
    if quantify_interior:
        return pp_from_atom_specs(specs, liberal=[variables[0], variables[-1]])
    return pp_from_atom_specs(specs, liberal=variables)


def star_query(rays: int, relation: str = "E", quantify_leaves: bool = False) -> PPFormula:
    """The star query ``E(c, y1) & ... & E(c, yk)`` (treewidth 1)."""
    if rays < 1:
        raise WorkloadError("rays must be at least 1")
    leaves = [f"y{i}" for i in range(1, rays + 1)]
    specs = [(relation, ("c", leaf)) for leaf in leaves]
    if quantify_leaves:
        return pp_from_atom_specs(specs, liberal=["c"])
    return pp_from_atom_specs(specs, liberal=["c", *leaves])


def cycle_query(length: int, relation: str = "E") -> PPFormula:
    """The cycle query on ``length`` variables (treewidth 2 for length >= 3)."""
    if length < 3:
        raise WorkloadError("cycle length must be at least 3")
    variables = [f"x{i}" for i in range(length)]
    specs = [
        (relation, (variables[i], variables[(i + 1) % length])) for i in range(length)
    ]
    return pp_from_atom_specs(specs, liberal=variables)


def grid_query(rows: int, cols: int, relation: str = "E") -> PPFormula:
    """The grid query (treewidth ``min(rows, cols)``)."""
    if rows < 1 or cols < 1:
        raise WorkloadError("rows and cols must be positive")
    variable = {(r, c): f"x{r}_{c}" for r in range(rows) for c in range(cols)}
    specs = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                specs.append((relation, (variable[(r, c)], variable[(r, c + 1)])))
            if r + 1 < rows:
                specs.append((relation, (variable[(r, c)], variable[(r + 1, c)])))
    return pp_from_atom_specs(specs, liberal=list(variable.values()))


def hidden_clique_query(k: int, relation: str = "E") -> PPFormula:
    """A query whose *contract graph* is a k-clique although only two
    variables are liberal.

    The quantified variables form a k-clique and every quantified
    variable is adjacent to both liberal variables; the single
    ∃-component therefore has all liberal variables in its boundary and
    contributes no contract edge beyond the pair, but its *core* retains
    the k-clique, so the family violates the core half of the
    tractability condition -- the witness family for case (2) style
    behaviour in the experiments.
    """
    if k < 2:
        raise WorkloadError("k must be at least 2")
    quantified = [f"u{i}" for i in range(1, k + 1)]
    specs = [
        (relation, (quantified[i], quantified[j]))
        for i in range(k)
        for j in range(k)
        if i != j
    ]
    specs += [(relation, ("x", quantified[0])), (relation, (quantified[-1], "y"))]
    return pp_from_atom_specs(specs, liberal=["x", "y"])


def clique_query(k: int, relation: str = "E") -> PPFormula:
    """The k-clique query with every variable liberal.

    With no quantified variables the contract graph *is* the query
    graph, so both the contract and the core have treewidth ``k - 1``:
    for ``k >= bound + 2`` the family fails both halves of the
    tractability condition and classifies as p-#Clique-hard -- the
    canonical witness on the intractable side of the frontier.
    """
    if k < 2:
        raise WorkloadError("k must be at least 2")
    variables = [f"x{i}" for i in range(k)]
    specs = [
        (relation, (variables[i], variables[j]))
        for i in range(k)
        for j in range(k)
        if i != j
    ]
    return pp_from_atom_specs(specs, liberal=variables)


def frontier_query_pair(
    k: int, relation: str = "E"
) -> tuple[PPFormula, PPFormula]:
    """A matched ``(tractable, hard)`` pair straddling the frontier.

    Both queries share the liberal variables ``x0 .. x{k-1}`` (same
    arity, same signature); they differ only in their atom structure:

    * the tractable side is the path ``E(x0,x1) & ... &
      E(x{k-2},x{k-1})`` -- treewidth 1, verdict FPT at any bound;
    * the hard side is the k-clique on the same variables -- contract
      *and* core treewidth ``k - 1``, verdict p-#Clique-hard whenever
      ``k - 1`` exceeds the policy's treewidth bound.

    At the default bound of 2, ``k >= 4`` puts the pair on opposite
    sides of the trichotomy, which is what the routing benchmarks and
    policy tests need: identical wire-level shape, opposite verdicts.
    """
    if k < 2:
        raise WorkloadError("k must be at least 2")
    variables = [f"x{i}" for i in range(k)]
    path_specs = [
        (relation, (variables[i], variables[i + 1])) for i in range(k - 1)
    ]
    tractable = pp_from_atom_specs(path_specs, liberal=variables)
    return tractable, clique_query(k, relation=relation)


def frontier_family(
    ks: Sequence[int], relation: str = "E"
) -> list[tuple[PPFormula, PPFormula]]:
    """Matched frontier pairs (:func:`frontier_query_pair`) for each ``k``."""
    if not ks:
        raise WorkloadError("need at least one clique size")
    return [frontier_query_pair(k, relation=relation) for k in ks]


def union_of_paths_query(lengths: Sequence[int], relation: str = "E") -> EPFormula:
    """A UCQ asking for pairs connected by a path of any of the given lengths.

    All disjuncts share the liberal variables ``{x, y}``; interior path
    variables are quantified.
    """
    if not lengths:
        raise WorkloadError("need at least one path length")
    disjuncts = []
    for index, length in enumerate(lengths):
        if length < 1:
            raise WorkloadError("path lengths must be at least 1")
        interior = [f"z{index}_{i}" for i in range(length - 1)]
        chain = ["x", *interior, "y"]
        atoms = [Atom(relation, (chain[i], chain[i + 1])) for i in range(length)]
        disjuncts.append(
            PPFormula.from_atoms(atoms, liberal=["x", "y"])
        )
    return EPFormula.from_disjuncts(disjuncts)


def example_4_2_query() -> EPFormula:
    """The formula of Example 4.2 / 5.15 of the paper.

    ``phi(w,x,y,z) = (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))``
    """
    liberal = ["w", "x", "y", "z"]
    disjuncts = [
        pp_from_atom_specs([("E", ("x", "y")), ("E", ("y", "z"))], liberal=liberal),
        pp_from_atom_specs([("E", ("z", "w")), ("E", ("w", "x"))], liberal=liberal),
        pp_from_atom_specs([("E", ("w", "x")), ("E", ("x", "y"))], liberal=liberal),
    ]
    return EPFormula.from_disjuncts(disjuncts)


def example_4_1_query() -> EPFormula:
    """The formula of Example 4.1 of the paper.

    ``phi(w,x,y,z) = E(x,y) & (E(w,x) | (E(y,z) & E(z,z)))``
    """
    from repro.logic.parser import parse_query

    return parse_query("phi(w, x, y, z) = E(x, y) & (E(w, x) | (E(y, z) & E(z, z)))")


def example_5_21_query() -> EPFormula:
    """The formula ``theta`` of Example 5.21 (Example 4.2 plus a sentence disjunct)."""
    liberal = ["w", "x", "y", "z"]
    sentence = pp_from_atom_specs(
        [("E", ("a", "b")), ("E", ("b", "c")), ("E", ("c", "d"))],
        quantified=["a", "b", "c", "d"],
    ).with_liberal(liberal)
    return EPFormula.from_disjuncts(list(example_4_2_query().disjuncts()) + [sentence])


# ----------------------------------------------------------------------
# Random queries
# ----------------------------------------------------------------------
def random_conjunctive_query(
    variable_count: int,
    atom_count: int,
    relation: str = "E",
    liberal_count: int | None = None,
    seed: int | random.Random | None = None,
) -> PPFormula:
    """A random conjunctive query over the graph signature.

    Atoms are sampled uniformly over ordered pairs of distinct variables
    (self-loops excluded); ``liberal_count`` variables (default: all) are
    liberal, the rest quantified.  The query is *not* guaranteed to be
    connected.
    """
    if variable_count < 1:
        raise WorkloadError("variable_count must be at least 1")
    if atom_count < 0:
        raise WorkloadError("atom_count must be non-negative")
    rng = _rng(seed)
    variables = [f"v{i}" for i in range(variable_count)]
    atoms: list[Atom] = []
    for _ in range(atom_count):
        if variable_count == 1:
            source = target = variables[0]
        else:
            source, target = rng.sample(variables, 2)
        atoms.append(Atom(relation, (source, target)))
    if liberal_count is None:
        liberal = variables
    else:
        if not 0 <= liberal_count <= variable_count:
            raise WorkloadError("liberal_count out of range")
        liberal = rng.sample(variables, liberal_count)
    formula = PPFormula.from_atoms(atoms, quantified=[v for v in variables if v not in set(liberal)])
    return formula.with_liberal(set(formula.free_variables) | {Variable(v) for v in liberal})


def random_ucq(
    disjunct_count: int,
    variable_count: int,
    atom_count: int,
    relation: str = "E",
    liberal_count: int | None = None,
    seed: int | random.Random | None = None,
) -> EPFormula:
    """A random union of conjunctive queries with a shared liberal set.

    Each disjunct is drawn by :func:`random_conjunctive_query` over the
    same liberal variables (the first ``liberal_count`` variable names);
    quantified variables are standardized apart automatically.
    """
    if disjunct_count < 1:
        raise WorkloadError("disjunct_count must be at least 1")
    rng = _rng(seed)
    if liberal_count is None:
        liberal_count = variable_count
    liberal = [f"v{i}" for i in range(liberal_count)]
    disjuncts = []
    for index in range(disjunct_count):
        query = random_conjunctive_query(
            variable_count,
            atom_count,
            relation=relation,
            liberal_count=None,
            seed=rng.randrange(1 << 30),
        )
        # Re-liberalize: keep only the shared liberal variables liberal and
        # quantify everything else.
        renaming = {
            Variable(f"v{i}"): Variable(f"v{i}") if i < liberal_count else Variable(f"q{index}_{i}")
            for i in range(variable_count)
        }
        renamed = query.rename(renaming)
        atoms = renamed.atoms()
        disjuncts.append(
            PPFormula.from_atoms(
                atoms,
                quantified=[v for v in renamed.variables if v.name.startswith(f"q{index}_")],
            ).with_liberal(liberal)
        )
    return EPFormula.from_disjuncts(disjuncts)
