"""Tree decompositions.

A tree decomposition of a graph ``G`` is a tree whose nodes carry *bags*
of vertices of ``G`` such that

1. every vertex of ``G`` appears in some bag,
2. for every edge of ``G`` some bag contains both endpoints, and
3. for every vertex, the bags containing it form a connected subtree
   (the running-intersection property).

The *width* of a decomposition is the size of its largest bag minus one;
the treewidth of ``G`` is the minimum width over all decompositions.

Treewidth drives the tractability frontier of the paper: the FPT cases
of the trichotomy are exactly the query classes whose cores and contract
graphs have bounded treewidth, and the counting algorithms in
:mod:`repro.algorithms.csp` run in time exponential only in the width of
the decomposition they are given.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import DecompositionError

Vertex = Hashable
BagId = int


class TreeDecomposition:
    """An immutable tree decomposition.

    Parameters
    ----------
    bags:
        A mapping from bag identifiers (any hashable; usually integers)
        to iterables of graph vertices.
    edges:
        The edges of the decomposition tree, as pairs of bag identifiers.
        For a single-bag decomposition this may be empty.
    """

    __slots__ = ("_bags", "_tree")

    def __init__(
        self,
        bags: Mapping[BagId, Iterable[Vertex]],
        edges: Iterable[tuple[BagId, BagId]] = (),
    ):
        self._bags: dict[BagId, frozenset[Vertex]] = {
            bag_id: frozenset(content) for bag_id, content in bags.items()
        }
        if not self._bags:
            raise DecompositionError("a tree decomposition needs at least one bag")
        tree = nx.Graph()
        tree.add_nodes_from(self._bags)
        for left, right in edges:
            if left not in self._bags or right not in self._bags:
                raise DecompositionError(f"edge ({left!r}, {right!r}) references unknown bags")
            tree.add_edge(left, right)
        if not nx.is_tree(tree):
            raise DecompositionError("the decomposition's bag graph is not a tree")
        self._tree = tree

    # ------------------------------------------------------------------
    @property
    def bags(self) -> dict[BagId, frozenset[Vertex]]:
        """A copy of the bag mapping."""
        return dict(self._bags)

    @property
    def tree(self) -> nx.Graph:
        """The decomposition tree (a networkx graph over bag ids)."""
        return self._tree.copy()

    def bag(self, bag_id: BagId) -> frozenset[Vertex]:
        """The contents of one bag."""
        return self._bags[bag_id]

    @property
    def width(self) -> int:
        """The width of the decomposition (largest bag size minus one)."""
        return max(len(bag) for bag in self._bags.values()) - 1

    def vertices(self) -> frozenset[Vertex]:
        """All graph vertices covered by the decomposition."""
        out: set[Vertex] = set()
        for bag in self._bags.values():
            out |= bag
        return frozenset(out)

    def __len__(self) -> int:
        return len(self._bags)

    def __iter__(self) -> Iterator[BagId]:
        return iter(self._bags)

    # ------------------------------------------------------------------
    def is_valid_for(self, graph: nx.Graph) -> bool:
        """Check validity for ``graph`` (see :meth:`validate`)."""
        try:
            self.validate(graph)
        except DecompositionError:
            return False
        return True

    def validate(self, graph: nx.Graph) -> None:
        """Raise :class:`DecompositionError` unless this decomposes ``graph``."""
        covered = self.vertices()
        missing = set(graph.nodes) - covered
        if missing:
            raise DecompositionError(f"vertices not covered by any bag: {sorted(map(repr, missing))}")
        for left, right in graph.edges:
            if not any(left in bag and right in bag for bag in self._bags.values()):
                raise DecompositionError(f"edge ({left!r}, {right!r}) not covered by any bag")
        for vertex in graph.nodes:
            containing = [bag_id for bag_id, bag in self._bags.items() if vertex in bag]
            subtree = self._tree.subgraph(containing)
            if containing and not nx.is_connected(subtree):
                raise DecompositionError(
                    f"bags containing {vertex!r} do not form a connected subtree"
                )

    # ------------------------------------------------------------------
    def rooted_order(self, root: BagId | None = None) -> list[tuple[BagId, BagId | None]]:
        """A post-order listing of ``(bag_id, parent_id)`` pairs.

        The root has parent ``None``.  Dynamic programs over the
        decomposition iterate this list: every child appears before its
        parent.
        """
        if root is None:
            root = next(iter(self._bags))
        order: list[tuple[BagId, BagId | None]] = []
        visited: set[BagId] = set()

        def visit(node: BagId, parent: BagId | None) -> None:
            visited.add(node)
            for neighbor in self._tree.neighbors(node):
                if neighbor not in visited:
                    visit(neighbor, node)
            order.append((node, parent))

        visit(root, None)
        if len(order) != len(self._bags):
            raise DecompositionError("the decomposition tree is not connected")
        return order

    def children(self, root: BagId | None = None) -> dict[BagId, list[BagId]]:
        """Child lists of every bag when the tree is rooted at ``root``."""
        out: dict[BagId, list[BagId]] = {bag_id: [] for bag_id in self._bags}
        for node, parent in self.rooted_order(root):
            if parent is not None:
                out[parent].append(node)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeDecomposition(width={self.width}, bags={len(self._bags)})"


def trivial_decomposition(graph: nx.Graph) -> TreeDecomposition:
    """The one-bag decomposition containing every vertex."""
    vertices = list(graph.nodes) or ["<empty>"]
    return TreeDecomposition({0: vertices})


def decomposition_from_elimination_ordering(
    graph: nx.Graph, ordering: list[Vertex]
) -> TreeDecomposition:
    """Build a tree decomposition from a vertex elimination ordering.

    Eliminating a vertex connects all its remaining neighbors into a
    clique; the bag created for the vertex is the vertex together with
    those neighbors.  The bag of a vertex is connected to the bag of its
    earliest-eliminated remaining neighbor, which yields a valid
    decomposition whose width is the maximum back-degree of the
    ordering.
    """
    if set(ordering) != set(graph.nodes):
        raise DecompositionError("ordering must list every vertex exactly once")
    if not ordering:
        return trivial_decomposition(graph)
    working = graph.copy()
    position = {vertex: index for index, vertex in enumerate(ordering)}
    bags: dict[int, set[Vertex]] = {}
    neighbors_at_elimination: dict[Vertex, set[Vertex]] = {}
    for index, vertex in enumerate(ordering):
        neighbors = set(working.neighbors(vertex))
        neighbors_at_elimination[vertex] = neighbors
        bags[index] = {vertex} | neighbors
        for left in neighbors:
            for right in neighbors:
                if left != right:
                    working.add_edge(left, right)
        working.remove_node(vertex)
    edges: list[tuple[int, int]] = []
    for index, vertex in enumerate(ordering):
        neighbors = neighbors_at_elimination[vertex]
        if neighbors:
            successor = min(neighbors, key=lambda v: position[v])
            edges.append((index, position[successor]))
    # The bag graph built this way is a forest with one component per
    # connected component of the input graph (isolated vertices included);
    # link the components into a single tree before constructing the
    # decomposition.
    forest = nx.Graph()
    forest.add_nodes_from(bags)
    forest.add_edges_from(edges)
    components = list(nx.connected_components(forest))
    if len(components) > 1:
        anchor = min(components[0])
        for component in components[1:]:
            edges.append((anchor, min(component)))
    return TreeDecomposition(bags, edges)
