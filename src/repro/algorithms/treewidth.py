"""Treewidth computation: exact for small graphs, heuristic otherwise.

The classification machinery needs the treewidth of two graphs derived
from each query: the graph of its core and its contract graph.  Both are
formula-sized (their vertices are query variables), so an exact
exponential algorithm is perfectly adequate; heuristics are provided for
experiments on larger synthetic graphs and as a fast upper bound.

Exact algorithm
---------------
The dynamic program of Bodlaender et al. over subsets of vertices: for a
subset ``S`` already eliminated, ``tw(S)`` is the minimum over the next
vertex ``v`` of ``max(tw(S \\ {v}), q(S \\ {v}, v))`` where ``q(S', v)``
counts the vertices outside ``S'`` adjacent to ``v`` *through* ``S'``
(i.e. reachable from ``v`` via internal vertices in ``S'``).  Runs in
``O*(2^n)`` and is used up to ``exact_threshold`` vertices.

Heuristics
----------
Min-degree and min-fill elimination orderings, returning both an upper
bound and the corresponding tree decomposition.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.algorithms.decomposition import (
    TreeDecomposition,
    decomposition_from_elimination_ordering,
    trivial_decomposition,
)
from repro.exceptions import DecompositionError

Vertex = Hashable

#: Default number of vertices up to which the exact algorithm is used.
DEFAULT_EXACT_THRESHOLD = 13


# ----------------------------------------------------------------------
# Elimination-ordering heuristics
# ----------------------------------------------------------------------
def min_degree_ordering(graph: nx.Graph) -> list[Vertex]:
    """The min-degree elimination ordering."""
    working = graph.copy()
    ordering: list[Vertex] = []
    while working.nodes:
        vertex = min(working.nodes, key=lambda v: (working.degree(v), repr(v)))
        neighbors = list(working.neighbors(vertex))
        for i, left in enumerate(neighbors):
            for right in neighbors[i + 1 :]:
                working.add_edge(left, right)
        working.remove_node(vertex)
        ordering.append(vertex)
    return ordering


def min_fill_ordering(graph: nx.Graph) -> list[Vertex]:
    """The min-fill elimination ordering (minimize edges added per step)."""
    working = graph.copy()
    ordering: list[Vertex] = []

    def fill_in(vertex: Vertex) -> int:
        neighbors = list(working.neighbors(vertex))
        missing = 0
        for i, left in enumerate(neighbors):
            for right in neighbors[i + 1 :]:
                if not working.has_edge(left, right):
                    missing += 1
        return missing

    while working.nodes:
        vertex = min(working.nodes, key=lambda v: (fill_in(v), working.degree(v), repr(v)))
        neighbors = list(working.neighbors(vertex))
        for i, left in enumerate(neighbors):
            for right in neighbors[i + 1 :]:
                working.add_edge(left, right)
        working.remove_node(vertex)
        ordering.append(vertex)
    return ordering


def width_of_ordering(graph: nx.Graph, ordering: Sequence[Vertex]) -> int:
    """The width induced by an elimination ordering (max back-degree)."""
    working = graph.copy()
    width = 0
    for vertex in ordering:
        neighbors = list(working.neighbors(vertex))
        width = max(width, len(neighbors))
        for i, left in enumerate(neighbors):
            for right in neighbors[i + 1 :]:
                working.add_edge(left, right)
        working.remove_node(vertex)
    return width


def treewidth_upper_bound(graph: nx.Graph, heuristic: str = "min_fill") -> tuple[int, TreeDecomposition]:
    """A heuristic upper bound on treewidth plus a witnessing decomposition.

    ``heuristic`` is ``"min_fill"`` (default) or ``"min_degree"``.
    """
    if graph.number_of_nodes() == 0:
        return -1, trivial_decomposition(graph)
    if heuristic == "min_fill":
        ordering = min_fill_ordering(graph)
    elif heuristic == "min_degree":
        ordering = min_degree_ordering(graph)
    else:
        raise DecompositionError(f"unknown heuristic {heuristic!r}")
    decomposition = decomposition_from_elimination_ordering(graph, ordering)
    return decomposition.width, decomposition


# ----------------------------------------------------------------------
# Exact treewidth
# ----------------------------------------------------------------------
def _exact_treewidth_value(graph: nx.Graph) -> int:
    """Exact treewidth via subset dynamic programming."""
    vertices = sorted(graph.nodes, key=repr)
    n = len(vertices)
    if n == 0:
        return -1
    index_of = {v: i for i, v in enumerate(vertices)}
    adjacency = [0] * n
    for left, right in graph.edges:
        adjacency[index_of[left]] |= 1 << index_of[right]
        adjacency[index_of[right]] |= 1 << index_of[left]

    def q(eliminated: int, vertex: int) -> int:
        """Neighbors of ``vertex`` outside ``eliminated`` reachable through it."""
        seen = 1 << vertex
        frontier = adjacency[vertex]
        reachable_outside = 0
        while True:
            new_inside = frontier & eliminated & ~seen
            reachable_outside |= frontier & ~eliminated & ~seen
            if not new_inside:
                break
            seen |= new_inside
            next_frontier = 0
            bits = new_inside
            while bits:
                low = bits & -bits
                next_frontier |= adjacency[low.bit_length() - 1]
                bits ^= low
            frontier = next_frontier
        return bin(reachable_outside).count("1")

    from functools import lru_cache as _cache

    @_cache(maxsize=None)
    def tw(eliminated: int) -> int:
        if eliminated == 0:
            return -1
        best = n
        bits = eliminated
        while bits:
            low = bits & -bits
            vertex = low.bit_length() - 1
            bits ^= low
            remaining = eliminated ^ low
            candidate = max(tw(remaining), q(remaining, vertex))
            if candidate < best:
                best = candidate
        return best

    return tw((1 << n) - 1)


def _optimal_ordering(graph: nx.Graph, target_width: int) -> list[Vertex]:
    """Recover an elimination ordering of width ``target_width`` greedily.

    Repeatedly pick a vertex whose elimination keeps the remaining
    graph's exact treewidth at most ``target_width`` and whose current
    degree is at most ``target_width``.
    """
    working = graph.copy()
    ordering: list[Vertex] = []
    while working.nodes:
        placed = False
        for vertex in sorted(working.nodes, key=lambda v: (working.degree(v), repr(v))):
            if working.degree(vertex) > target_width:
                continue
            candidate = working.copy()
            neighbors = list(candidate.neighbors(vertex))
            for i, left in enumerate(neighbors):
                for right in neighbors[i + 1 :]:
                    candidate.add_edge(left, right)
            candidate.remove_node(vertex)
            if _exact_treewidth_value(candidate) <= target_width:
                working = candidate
                ordering.append(vertex)
                placed = True
                break
        if not placed:
            raise DecompositionError(
                "failed to recover an optimal elimination ordering; "
                "this indicates a bug in the exact treewidth computation"
            )
    return ordering


def treewidth_exact(graph: nx.Graph) -> tuple[int, TreeDecomposition]:
    """The exact treewidth and an optimal tree decomposition."""
    if graph.number_of_nodes() == 0:
        return -1, trivial_decomposition(graph)
    width = _exact_treewidth_value(graph)
    ordering = _optimal_ordering(graph, width)
    decomposition = decomposition_from_elimination_ordering(graph, ordering)
    return width, decomposition


def treewidth(
    graph: nx.Graph,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
) -> tuple[int, TreeDecomposition]:
    """Treewidth of ``graph``: exact when small, best heuristic otherwise.

    Returns ``(width, decomposition)``.  For graphs with at most
    ``exact_threshold`` vertices the result is exact; otherwise it is the
    better of the min-fill and min-degree upper bounds.
    """
    if graph.number_of_nodes() <= exact_threshold:
        return treewidth_exact(graph)
    fill_width, fill_decomposition = treewidth_upper_bound(graph, "min_fill")
    degree_width, degree_decomposition = treewidth_upper_bound(graph, "min_degree")
    if fill_width <= degree_width:
        return fill_width, fill_decomposition
    return degree_width, degree_decomposition
