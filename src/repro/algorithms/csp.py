"""Counting solutions of constraint networks by dynamic programming.

The counting algorithms of the library all bottom out in the same
primitive: count the assignments of a set of variables to a finite
domain that satisfy a collection of table constraints.  Counting
homomorphisms, counting answers to quantifier-free pp-formulas and the
final stage of the FPT algorithm for tractable query classes are all
instances.

Two strategies are provided:

* :func:`count_solutions_backtracking` -- exhaustive backtracking with
  forward pruning; always correct, exponential in the number of
  variables.  Used as the reference implementation and for tiny
  instances.
* :func:`count_solutions_decomposition` -- dynamic programming over a
  tree decomposition of the constraint network's primal graph (the
  classic junction-tree counting algorithm).  Runs in time
  ``O(poly * |domain|^(width+1))``, which is polynomial for classes of
  networks of bounded treewidth -- exactly the guarantee Theorem 2.11
  of the paper needs.

:func:`count_solutions` picks a strategy automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.algorithms.decomposition import TreeDecomposition
from repro.algorithms.treewidth import treewidth
from repro.exceptions import ReproError
from repro.structures.graphs import primal_graph_of_atoms

VariableName = Hashable
Value = Hashable
PartialAssignment = dict[VariableName, Value]


@dataclass(frozen=True)
class Constraint:
    """A table constraint: ``scope`` must take a value tuple in ``allowed``."""

    scope: tuple[VariableName, ...]
    allowed: frozenset[tuple[Value, ...]]

    def __post_init__(self) -> None:
        for row in self.allowed:
            if len(row) != len(self.scope):
                raise ReproError(
                    f"constraint row {row!r} does not match scope {self.scope!r}"
                )

    def satisfied_by(self, assignment: Mapping[VariableName, Value]) -> bool:
        """True if ``assignment`` (covering the scope) satisfies the constraint."""
        return tuple(assignment[v] for v in self.scope) in self.allowed

    def is_fully_assigned(self, assignment: Mapping[VariableName, Value]) -> bool:
        """True if every scope variable is assigned."""
        return all(v in assignment for v in self.scope)


@dataclass(frozen=True)
class CSPInstance:
    """A constraint network over a single shared domain."""

    variables: tuple[VariableName, ...]
    domain: tuple[Value, ...]
    constraints: tuple[Constraint, ...]

    @classmethod
    def build(
        cls,
        variables: Iterable[VariableName],
        domain: Iterable[Value],
        constraints: Iterable[Constraint],
    ) -> "CSPInstance":
        return cls(tuple(variables), tuple(domain), tuple(constraints))

    def primal_graph(self) -> nx.Graph:
        """The primal graph: variables as vertices, co-occurring scopes as cliques."""
        return primal_graph_of_atoms(
            (c.scope for c in self.constraints), vertices=self.variables
        )


# ----------------------------------------------------------------------
# Backtracking counter (reference implementation)
# ----------------------------------------------------------------------
def count_solutions_backtracking(instance: CSPInstance) -> int:
    """Count satisfying assignments by backtracking search.

    Variables constrained by no constraint contribute a multiplicative
    factor ``|domain|`` each and are not branched over.
    """
    constrained: set[VariableName] = set()
    for constraint in instance.constraints:
        constrained.update(constraint.scope)
    constrained_order = [v for v in instance.variables if v in constrained]
    unconstrained = [v for v in instance.variables if v not in constrained]
    watchers: dict[VariableName, list[Constraint]] = {v: [] for v in constrained_order}
    for constraint in instance.constraints:
        for variable in set(constraint.scope):
            if variable in watchers:
                watchers[variable].append(constraint)
    # Branch on the most constrained variables first.
    constrained_order.sort(key=lambda v: (-len(watchers[v]), repr(v)))

    assignment: PartialAssignment = {}

    def consistent(variable: VariableName) -> bool:
        for constraint in watchers[variable]:
            if constraint.is_fully_assigned(assignment) and not constraint.satisfied_by(assignment):
                return False
        return True

    def backtrack(index: int) -> int:
        if index == len(constrained_order):
            return 1
        variable = constrained_order[index]
        total = 0
        for value in instance.domain:
            assignment[variable] = value
            if consistent(variable):
                total += backtrack(index + 1)
            del assignment[variable]
        return total

    base = backtrack(0)
    return base * (len(instance.domain) ** len(unconstrained))


# ----------------------------------------------------------------------
# Junction-tree counter
# ----------------------------------------------------------------------
def _enumerate_bag_assignments(
    bag: Sequence[VariableName],
    domain: Sequence[Value],
    constraints: Sequence[Constraint],
) -> list[tuple[Value, ...]]:
    """Enumerate the assignments of a bag that satisfy the given constraints.

    Only constraints whose scope lies entirely within the bag are used
    (others cannot be evaluated); they serve as filters, so passing the
    same constraint for several bags is harmless.
    """
    bag_list = list(bag)
    bag_set = set(bag_list)
    local = [c for c in constraints if set(c.scope) <= bag_set]
    results: list[tuple[Value, ...]] = []
    assignment: PartialAssignment = {}

    # Order variables so that constraint scopes close early, enabling pruning.
    remaining = list(bag_list)
    ordered: list[VariableName] = []
    while remaining:
        best = min(
            remaining,
            key=lambda v: (
                -sum(1 for c in local if v in c.scope and all(u in ordered or u == v for u in c.scope)),
                repr(v),
            ),
        )
        ordered.append(best)
        remaining.remove(best)

    def consistent(variable: VariableName) -> bool:
        for constraint in local:
            if variable in constraint.scope and constraint.is_fully_assigned(assignment):
                if not constraint.satisfied_by(assignment):
                    return False
        return True

    def backtrack(index: int) -> None:
        if index == len(ordered):
            results.append(tuple(assignment[v] for v in bag_list))
            return
        variable = ordered[index]
        for value in domain:
            assignment[variable] = value
            if consistent(variable):
                backtrack(index + 1)
            del assignment[variable]

    backtrack(0)
    return results


def count_solutions_decomposition(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None = None,
) -> int:
    """Count satisfying assignments by DP over a tree decomposition.

    If no decomposition is given, one is computed for the primal graph
    (exact for small graphs, heuristic otherwise); the algorithm is
    correct for any valid decomposition, only its running time depends
    on the width.
    """
    if not instance.variables:
        # Only the empty assignment; it satisfies everything unless some
        # constraint has an empty allowed set over an empty scope.
        for constraint in instance.constraints:
            if not constraint.scope and not constraint.allowed:
                return 0
        return 1
    primal = instance.primal_graph()
    if decomposition is None:
        _, decomposition = treewidth(primal)
    else:
        decomposition.validate(primal)

    covered = decomposition.vertices()
    uncovered = [v for v in instance.variables if v not in covered]

    order = decomposition.rooted_order()
    children = decomposition.children()
    root = order[-1][0]

    # Assign every constraint to one bag containing its scope (for counting
    # semantics the assignment does not matter; constraints act as filters
    # in every bag anyway, and filtering twice is idempotent).
    bag_of: dict[int, list[Constraint]] = {bag_id: [] for bag_id in decomposition}
    for constraint in instance.constraints:
        scope = set(constraint.scope)
        home = None
        for bag_id in decomposition:
            if scope <= decomposition.bag(bag_id):
                home = bag_id
                break
        if home is None:
            raise ReproError(
                f"no bag covers constraint scope {constraint.scope!r}; "
                "the decomposition does not decompose the primal graph"
            )
        bag_of[home].append(constraint)

    # tables[bag_id]: dict assignment-of-bag (tuple ordered by sorted bag) -> count
    tables: dict[int, dict[tuple[Value, ...], int]] = {}
    bag_order: dict[int, list[VariableName]] = {
        bag_id: sorted(decomposition.bag(bag_id), key=repr) for bag_id in decomposition
    }

    for bag_id, parent in order:
        bag_vars = bag_order[bag_id]
        local_constraints = [
            c for c in instance.constraints if set(c.scope) <= set(bag_vars)
        ]
        table: dict[tuple[Value, ...], int] = {}
        child_ids = children[bag_id]
        # Pre-compute, for each child, a map from the projection onto the
        # separator (bag ∩ child bag) to the summed child count.
        child_projections: list[tuple[list[int], dict[tuple[Value, ...], int]]] = []
        for child in child_ids:
            child_vars = bag_order[child]
            separator = [v for v in child_vars if v in set(bag_vars)]
            child_sep_positions = [child_vars.index(v) for v in separator]
            projected: dict[tuple[Value, ...], int] = {}
            for child_assignment, count in tables[child].items():
                key = tuple(child_assignment[i] for i in child_sep_positions)
                projected[key] = projected.get(key, 0) + count
            parent_sep_positions = [bag_vars.index(v) for v in separator]
            child_projections.append((parent_sep_positions, projected))
            del tables[child]

        for values in _enumerate_bag_assignments(bag_vars, instance.domain, local_constraints):
            count = 1
            for positions, projected in child_projections:
                key = tuple(values[i] for i in positions)
                count *= projected.get(key, 0)
                if count == 0:
                    break
            if count:
                table[values] = count
        tables[bag_id] = table

    total = sum(tables[root].values())
    # Each variable that is not constrained by the decomposition at all
    # (not covered by any bag) ranges freely over the domain.  We also
    # need to correct for variables counted in several bags: the DP above
    # already handles that correctly because bags overlap only on
    # separators, which are projected consistently.
    return total * (len(instance.domain) ** len(uncovered))


def count_solutions(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None = None,
    strategy: str = "auto",
) -> int:
    """Count satisfying assignments of a constraint network.

    ``strategy`` is ``"auto"`` (default), ``"backtracking"`` or
    ``"decomposition"``.  ``auto`` uses the decomposition-based counter
    whenever the instance has more than a couple of variables.
    """
    if strategy == "backtracking":
        return count_solutions_backtracking(instance)
    if strategy == "decomposition":
        return count_solutions_decomposition(instance, decomposition)
    if strategy != "auto":
        raise ReproError(f"unknown strategy {strategy!r}")
    if len(instance.variables) <= 3 or not instance.constraints:
        return count_solutions_backtracking(instance)
    return count_solutions_decomposition(instance, decomposition)
