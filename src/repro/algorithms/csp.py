"""Counting solutions of constraint networks by dynamic programming.

The counting algorithms of the library all bottom out in the same
primitive: count the assignments of a set of variables to a finite
domain that satisfy a collection of table constraints.  Counting
homomorphisms, counting answers to quantifier-free pp-formulas and the
final stage of the FPT algorithm for tractable query classes are all
instances.

Two strategies are provided:

* :func:`count_solutions_backtracking` -- exhaustive backtracking with
  forward pruning; always correct, exponential in the number of
  variables.  Used as the reference implementation and for tiny
  instances.
* :func:`count_solutions_decomposition` -- dynamic programming over a
  tree decomposition of the constraint network's primal graph (the
  classic junction-tree counting algorithm).  Runs in time
  ``O(poly * |domain|^(width+1))``, which is polynomial for classes of
  networks of bounded treewidth -- exactly the guarantee Theorem 2.11
  of the paper needs.

:func:`count_solutions` picks a strategy automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.algorithms.decomposition import TreeDecomposition
from repro.algorithms.treewidth import treewidth
from repro.budget import current_budget
from repro.exceptions import ReproError
from repro.structures.graphs import primal_graph_of_atoms

VariableName = Hashable
Value = Hashable
PartialAssignment = dict[VariableName, Value]


@dataclass(frozen=True)
class Constraint:
    """A table constraint: ``scope`` must take a value tuple in ``allowed``."""

    scope: tuple[VariableName, ...]
    allowed: frozenset[tuple[Value, ...]]

    def __post_init__(self) -> None:
        for row in self.allowed:
            if len(row) != len(self.scope):
                raise ReproError(
                    f"constraint row {row!r} does not match scope {self.scope!r}"
                )

    def satisfied_by(self, assignment: Mapping[VariableName, Value]) -> bool:
        """True if ``assignment`` (covering the scope) satisfies the constraint."""
        return tuple(assignment[v] for v in self.scope) in self.allowed

    def is_fully_assigned(self, assignment: Mapping[VariableName, Value]) -> bool:
        """True if every scope variable is assigned."""
        return all(v in assignment for v in self.scope)


@dataclass(frozen=True)
class CSPInstance:
    """A constraint network over a single shared domain."""

    variables: tuple[VariableName, ...]
    domain: tuple[Value, ...]
    constraints: tuple[Constraint, ...]

    @classmethod
    def build(
        cls,
        variables: Iterable[VariableName],
        domain: Iterable[Value],
        constraints: Iterable[Constraint],
    ) -> "CSPInstance":
        return cls(tuple(variables), tuple(domain), tuple(constraints))

    def primal_graph(self) -> nx.Graph:
        """The primal graph: variables as vertices, co-occurring scopes as cliques."""
        return primal_graph_of_atoms(
            (c.scope for c in self.constraints), vertices=self.variables
        )


# ----------------------------------------------------------------------
# Backtracking counter (reference implementation)
# ----------------------------------------------------------------------
def count_solutions_backtracking(instance: CSPInstance) -> int:
    """Count satisfying assignments by backtracking search.

    Variables constrained by no constraint contribute a multiplicative
    factor ``|domain|`` each and are not branched over.
    """
    constrained: set[VariableName] = set()
    for constraint in instance.constraints:
        constrained.update(constraint.scope)
    constrained_order = [v for v in instance.variables if v in constrained]
    unconstrained = [v for v in instance.variables if v not in constrained]
    watchers: dict[VariableName, list[Constraint]] = {v: [] for v in constrained_order}
    for constraint in instance.constraints:
        for variable in set(constraint.scope):
            if variable in watchers:
                watchers[variable].append(constraint)
    # Branch on the most constrained variables first.
    constrained_order.sort(key=lambda v: (-len(watchers[v]), repr(v)))

    assignment: PartialAssignment = {}

    def consistent(variable: VariableName) -> bool:
        for constraint in watchers[variable]:
            if constraint.is_fully_assigned(assignment) and not constraint.satisfied_by(assignment):
                return False
        return True

    budget = current_budget()

    def backtrack(index: int) -> int:
        if index == len(constrained_order):
            return 1
        variable = constrained_order[index]
        total = 0
        if budget is not None:
            budget.charge(len(instance.domain))
        for value in instance.domain:
            assignment[variable] = value
            if consistent(variable):
                total += backtrack(index + 1)
            del assignment[variable]
        return total

    base = backtrack(0)
    return base * (len(instance.domain) ** len(unconstrained))


# ----------------------------------------------------------------------
# Junction-tree counter
# ----------------------------------------------------------------------
def _enumerate_bag_assignments(
    bag: Sequence[VariableName],
    domain: Sequence[Value],
    constraints: Sequence[Constraint],
) -> list[tuple[Value, ...]]:
    """Enumerate the assignments of a bag that satisfy the given constraints.

    Only constraints whose scope lies entirely within the bag are used
    (others cannot be evaluated); they serve as filters, so passing the
    same constraint for several bags is harmless.
    """
    bag_list = list(bag)
    bag_set = set(bag_list)
    local = [c for c in constraints if set(c.scope) <= bag_set]
    results: list[tuple[Value, ...]] = []
    assignment: PartialAssignment = {}

    # Order variables so that constraint scopes close early, enabling pruning.
    remaining = list(bag_list)
    ordered: list[VariableName] = []
    while remaining:
        best = min(
            remaining,
            key=lambda v: (
                -sum(1 for c in local if v in c.scope and all(u in ordered or u == v for u in c.scope)),
                repr(v),
            ),
        )
        ordered.append(best)
        remaining.remove(best)

    def consistent(variable: VariableName) -> bool:
        for constraint in local:
            if variable in constraint.scope and constraint.is_fully_assigned(assignment):
                if not constraint.satisfied_by(assignment):
                    return False
        return True

    budget = current_budget()

    def backtrack(index: int) -> None:
        if index == len(ordered):
            results.append(tuple(assignment[v] for v in bag_list))
            return
        variable = ordered[index]
        if budget is not None:
            budget.charge(len(domain))
        for value in domain:
            assignment[variable] = value
            if consistent(variable):
                backtrack(index + 1)
            del assignment[variable]

    backtrack(0)
    return results


def count_solutions_decomposition(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None = None,
) -> int:
    """Count satisfying assignments by DP over a tree decomposition.

    If no decomposition is given, one is computed for the primal graph
    (exact for small graphs, heuristic otherwise); the algorithm is
    correct for any valid decomposition, only its running time depends
    on the width.
    """
    if not instance.variables:
        # Only the empty assignment; it satisfies everything unless some
        # constraint has an empty allowed set over an empty scope.
        for constraint in instance.constraints:
            if not constraint.scope and not constraint.allowed:
                return 0
        return 1
    primal = instance.primal_graph()
    if decomposition is None:
        _, decomposition = treewidth(primal)
    else:
        decomposition.validate(primal)

    covered = decomposition.vertices()
    uncovered = [v for v in instance.variables if v not in covered]

    order = decomposition.rooted_order()
    children = decomposition.children()
    root = order[-1][0]

    # Assign every constraint to one bag containing its scope (for counting
    # semantics the assignment does not matter; constraints act as filters
    # in every bag anyway, and filtering twice is idempotent).
    bag_of: dict[int, list[Constraint]] = {bag_id: [] for bag_id in decomposition}
    for constraint in instance.constraints:
        scope = set(constraint.scope)
        home = None
        for bag_id in decomposition:
            if scope <= decomposition.bag(bag_id):
                home = bag_id
                break
        if home is None:
            raise ReproError(
                f"no bag covers constraint scope {constraint.scope!r}; "
                "the decomposition does not decompose the primal graph"
            )
        bag_of[home].append(constraint)

    # tables[bag_id]: dict assignment-of-bag (tuple ordered by sorted bag) -> count
    tables: dict[int, dict[tuple[Value, ...], int]] = {}
    bag_order: dict[int, list[VariableName]] = {
        bag_id: sorted(decomposition.bag(bag_id), key=repr) for bag_id in decomposition
    }

    budget = current_budget()
    for bag_id, parent in order:
        bag_vars = bag_order[bag_id]
        local_constraints = [
            c for c in instance.constraints if set(c.scope) <= set(bag_vars)
        ]
        table: dict[tuple[Value, ...], int] = {}
        child_ids = children[bag_id]
        # Pre-compute, for each child, a map from the projection onto the
        # separator (bag ∩ child bag) to the summed child count.
        child_projections: list[tuple[list[int], dict[tuple[Value, ...], int]]] = []
        for child in child_ids:
            child_vars = bag_order[child]
            separator = [v for v in child_vars if v in set(bag_vars)]
            child_sep_positions = [child_vars.index(v) for v in separator]
            projected: dict[tuple[Value, ...], int] = {}
            if budget is not None:
                budget.charge(len(tables[child]))
            for child_assignment, count in tables[child].items():
                key = tuple(child_assignment[i] for i in child_sep_positions)
                projected[key] = projected.get(key, 0) + count
            parent_sep_positions = [bag_vars.index(v) for v in separator]
            child_projections.append((parent_sep_positions, projected))
            del tables[child]

        for values in _enumerate_bag_assignments(bag_vars, instance.domain, local_constraints):
            count = 1
            for positions, projected in child_projections:
                key = tuple(values[i] for i in positions)
                count *= projected.get(key, 0)
                if count == 0:
                    break
            if count:
                table[values] = count
        tables[bag_id] = table

    total = sum(tables[root].values())
    # Each variable that is not constrained by the decomposition at all
    # (not covered by any bag) ranges freely over the domain.  We also
    # need to correct for variables counted in several bags: the DP above
    # already handles that correctly because bags overlap only on
    # separators, which are projected consistently.
    return total * (len(instance.domain) ** len(uncovered))


def table_from_scope(
    scope: tuple[VariableName, ...],
    rows: frozenset[tuple[Value, ...]],
) -> tuple[tuple[VariableName, ...], frozenset[tuple[Value, ...]]]:
    """Collapse repeated scope variables into a distinct-column table.

    Repeated variables become equality filters (a row survives iff all
    its entries for the same variable agree); columns are the distinct
    variables in first-occurrence order, matching the convention of the
    semijoin pipeline's base tables.  Scopes without repeats pass
    through untouched.
    """
    columns: list[VariableName] = []
    for variable in scope:
        if variable not in columns:
            columns.append(variable)
    if len(columns) == len(scope):
        return tuple(scope), rows
    filtered: set[tuple[Value, ...]] = set()
    for row in rows:
        values: dict[VariableName, Value] = {}
        consistent = True
        for variable, value in zip(scope, row):
            if values.setdefault(variable, value) != value:
                consistent = False
                break
        if consistent:
            filtered.add(tuple(values[c] for c in columns))
    return tuple(columns), frozenset(filtered)


def _weighted_join(
    left_cols: tuple[VariableName, ...],
    left: dict[tuple[Value, ...], int],
    right_cols: tuple[VariableName, ...],
    right: dict[tuple[Value, ...], int],
) -> tuple[tuple[VariableName, ...], dict[tuple[Value, ...], int]]:
    """Hash join of two weighted tables on their shared columns.

    Output weight of a joined row is the product of the input weights;
    both inputs have unique rows per their column sets, so each output
    row arises from exactly one (left, right) pair and the accumulation
    below never actually merges.
    """
    shared = [c for c in right_cols if c in left_cols]
    right_positions = [right_cols.index(c) for c in shared]
    extra_positions = [i for i, c in enumerate(right_cols) if c not in left_cols]
    out_cols = tuple(left_cols) + tuple(right_cols[i] for i in extra_positions)
    buckets: dict[tuple, list[tuple[tuple, int]]] = {}
    for row, weight in right.items():
        key = tuple(row[i] for i in right_positions)
        buckets.setdefault(key, []).append(
            (tuple(row[i] for i in extra_positions), weight)
        )
    left_positions = [left_cols.index(c) for c in shared]
    out: dict[tuple[Value, ...], int] = {}
    budget = current_budget()
    for row, weight in left.items():
        key = tuple(row[i] for i in left_positions)
        matches = buckets.get(key, ())
        if budget is not None:
            budget.charge(1 + len(matches))
        for extra, right_weight in matches:
            joined = row + extra
            out[joined] = out.get(joined, 0) + weight * right_weight
    return out_cols, out


def count_solutions_tables(
    variables: Sequence[VariableName],
    domain_size: int,
    tables: Sequence[tuple[tuple[VariableName, ...], frozenset]],
    decomposition: TreeDecomposition | None = None,
) -> int:
    """Count assignments of ``variables`` into ``range(domain_size)``
    satisfying every distinct-column table constraint, by join-driven
    DP over a tree decomposition.

    Semantically identical to building a :class:`CSPInstance` over the
    domain ``0..domain_size-1`` and calling :func:`count_solutions`
    with the decomposition strategy, but the per-bag work is a chain of
    weighted hash joins of the bag's constraint tables and child
    messages instead of backtracking over ``domain^|bag|`` candidate
    assignments -- per bag it costs time proportional to the joined
    table sizes, not to the domain size raised to the bag width.  Bag
    variables constrained by no local table and no separator are
    provably unconstrained within the bag (any constraint mentioning
    them would be local to a bag containing them, and separators carry
    all sharing) and contribute a multiplicative ``domain_size`` each,
    exactly like uncovered variables.

    This is the execution core of the encoded pp-plan path; the rows
    are dense ints there, but nothing here depends on that.
    """
    if not variables:
        for scope, rows in tables:
            if not scope and not rows:
                return 0
        return 1
    for scope, rows in tables:
        if scope and not rows:
            return 0
        if not scope and not rows:
            return 0
    if domain_size == 0:
        return 0
    primal = primal_graph_of_atoms(
        (scope for scope, _ in tables), vertices=tuple(variables)
    )
    if decomposition is None:
        _, decomposition = treewidth(primal)
    else:
        decomposition.validate(primal)

    bags = {bag_id: decomposition.bag(bag_id) for bag_id in decomposition}
    for scope, _ in tables:
        if scope and not any(set(scope) <= bag for bag in bags.values()):
            raise ReproError(
                f"no bag covers constraint scope {scope!r}; "
                "the decomposition does not decompose the primal graph"
            )

    covered = decomposition.vertices()
    uncovered = [v for v in variables if v not in covered]
    order = decomposition.rooted_order()
    children = decomposition.children()

    # messages[bag_id]: (separator columns, projection-row -> weight)
    messages: dict[int, tuple[tuple, dict[tuple, int]]] = {}
    total = 0
    for bag_id, parent in order:
        bag = bags[bag_id]
        local = [
            (scope, rows) for scope, rows in tables if scope and set(scope) <= bag
        ]
        incoming = [messages.pop(child) for child in children[bag_id]]
        separator = (
            tuple(sorted((v for v in bag & bags[parent]), key=repr))
            if parent is not None
            else ()
        )
        needed: set[VariableName] = set(separator)
        for scope, _ in local:
            needed.update(scope)
        for cols, _ in incoming:
            needed.update(cols)

        table_cols: tuple[VariableName, ...] = ()
        table_rows: dict[tuple[Value, ...], int] = {(): 1}
        for scope, rows in local:
            table_cols, table_rows = _weighted_join(
                table_cols, table_rows, scope, dict.fromkeys(rows, 1)
            )
            if not table_rows:
                break
        if table_rows:
            for cols, weights in incoming:
                table_cols, table_rows = _weighted_join(
                    table_cols, table_rows, cols, weights
                )
                if not table_rows:
                    break
        if not table_rows:
            # An empty bag table empties every message on the path to
            # the root, so the total is 0; bail out early.
            return 0

        # Needed-but-unjoined variables (separator vars no local table
        # or message mentions) range freely; expand them explicitly so
        # the projection below sees them.
        budget = current_budget()
        for variable in sorted(needed, key=repr):
            if variable not in table_cols:
                if budget is not None:
                    budget.charge(len(table_rows) * domain_size)
                table_cols = table_cols + (variable,)
                table_rows = {
                    row + (value,): weight
                    for row, weight in table_rows.items()
                    for value in range(domain_size)
                }
        # Bag variables outside `needed` are unconstrained here and in
        # every neighbor: multiply instead of expanding.
        free = sum(1 for v in bag if v not in needed)
        factor = domain_size**free
        if parent is None:
            total = sum(table_rows.values()) * factor
        else:
            positions = [table_cols.index(v) for v in separator]
            projected: dict[tuple[Value, ...], int] = {}
            for row, weight in table_rows.items():
                key = tuple(row[i] for i in positions)
                projected[key] = projected.get(key, 0) + weight * factor
            messages[bag_id] = (separator, projected)

    return total * (domain_size ** len(uncovered))


def count_solutions(
    instance: CSPInstance,
    decomposition: TreeDecomposition | None = None,
    strategy: str = "auto",
) -> int:
    """Count satisfying assignments of a constraint network.

    ``strategy`` is ``"auto"`` (default), ``"backtracking"`` or
    ``"decomposition"``.  ``auto`` uses the decomposition-based counter
    whenever the instance has more than a couple of variables.
    """
    if strategy == "backtracking":
        return count_solutions_backtracking(instance)
    if strategy == "decomposition":
        return count_solutions_decomposition(instance, decomposition)
    if strategy != "auto":
        raise ReproError(f"unknown strategy {strategy!r}")
    if len(instance.variables) <= 3 or not instance.constraints:
        return count_solutions_backtracking(instance)
    return count_solutions_decomposition(instance, decomposition)
