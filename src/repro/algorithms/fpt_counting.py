"""The FPT counting algorithm for tractable pp-formula classes.

Theorem 2.11 of the paper (imported from Chen & Mengel, ICDT 2015)
states that counting answers is fixed-parameter tractable for classes of
prenex pp-formulas satisfying the *tractability condition*: the cores
and the contract graphs of the formulas have bounded treewidth.  This
module implements both the structural notions and the algorithm:

* :func:`exists_components` -- the ``∃-components`` of a formula: the
  connected components of the core's quantified part, each together
  with its liberal-variable boundary.
* :func:`contract_graph` -- the graph on the liberal variables obtained
  by adding a clique on the boundary of every ∃-component to the
  liberal part of the core's Gaifman graph (Section 2.4).
* :func:`count_pp_answers_fpt` -- the counting algorithm:

  1. replace the formula by its core (logically equivalent, so the
     answer count is unchanged);
  2. eliminate each ∃-component by computing the relation over its
     boundary consisting of the boundary assignments that extend to a
     homomorphism of the component into the data structure;
  3. count the assignments of the liberal variables that satisfy the
     remaining quantifier-free atoms plus the new boundary relations,
     by dynamic programming over a tree decomposition of the contract
     graph.

  Step 2 costs ``|B|^(boundary)`` per component and step 3 costs
  ``|B|^(width+1)`` per bag; since every boundary is a clique of the
  contract graph, both are bounded by the contract graph's treewidth
  plus one, giving the FPT (indeed polynomial, for a fixed class)
  running time of Theorem 2.11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

import networkx as nx

from repro.algorithms.csp import (
    Constraint,
    CSPInstance,
    count_solutions,
    count_solutions_tables,
    table_from_scope,
)
from repro.algorithms.decomposition import TreeDecomposition
from repro.algorithms.treewidth import treewidth
from repro.logic.pp import PPFormula
from repro.logic.terms import Variable
from repro.structures.structure import Element, Structure

if TYPE_CHECKING:  # pragma: no cover - type-only import (the engine
    # imports this module; the runtime import below is deferred)
    from repro.engine.context import ExecutionContext


@dataclass(frozen=True)
class ExistsComponent:
    """One ∃-component of a pp-formula.

    ``interior`` are the quantified variables of the component,
    ``boundary`` the liberal variables adjacent to it, and ``structure``
    the induced substructure of the core on ``interior ∪ boundary``
    restricted to the atoms that touch the interior.
    """

    interior: frozenset[Variable]
    boundary: frozenset[Variable]
    structure: Structure

    @property
    def vertices(self) -> frozenset[Variable]:
        return self.interior | self.boundary

    # The two orderings below are recomputed on every elimination /
    # plan execution on the hot path; caching them on the (immutable)
    # component hoists the sorts to compile time.  cached_property
    # writes into __dict__ directly, which bypasses the frozen
    # dataclass __setattr__ -- safe because the derived values are
    # pure functions of the frozen fields.
    @cached_property
    def boundary_order(self) -> tuple[Variable, ...]:
        """The boundary in the fixed column order (sorted by name)."""
        return tuple(sorted(self.boundary, key=lambda v: v.name))

    @cached_property
    def atom_scopes(self) -> tuple[tuple[str, tuple[Variable, ...]], ...]:
        """The component's atoms as repr-sorted ``(relation, scope)``
        pairs -- the canonical order the semijoin sweep consumes."""
        return tuple(
            sorted(
                (
                    (name, t)
                    for name, tuples in self.structure.relations.items()
                    for t in tuples
                ),
                key=repr,
            )
        )


def _core_or_self(formula: PPFormula, use_core: bool) -> PPFormula:
    return formula.core() if use_core else formula


def exists_components(formula: PPFormula, use_core: bool = True) -> list[ExistsComponent]:
    """The ∃-components of (the core of) ``formula`` (Section 2.4).

    Each component corresponds to a connected component of the graph of
    the core restricted to the quantified variables; its boundary is the
    set of liberal variables with an edge into that component.
    """
    base = _core_or_self(formula, use_core)
    graph = base.graph()
    liberal = base.liberal
    quantified_graph = graph.subgraph([v for v in graph.nodes if v not in liberal])
    components: list[ExistsComponent] = []
    for component in nx.connected_components(quantified_graph):
        interior = frozenset(component)
        boundary: set[Variable] = set()
        for vertex in interior:
            for neighbor in graph.neighbors(vertex):
                if neighbor in liberal:
                    boundary.add(neighbor)
        # Atoms that touch the interior.
        relations = {
            name: [t for t in tuples if set(t) & interior]
            for name, tuples in base.structure.relations.items()
        }
        structure = Structure(
            base.signature, interior | frozenset(boundary), relations
        )
        components.append(
            ExistsComponent(interior=interior, boundary=frozenset(boundary), structure=structure)
        )
    return sorted(components, key=lambda c: min(repr(v) for v in c.vertices))


def contract_graph(formula: PPFormula, use_core: bool = True) -> nx.Graph:
    """The contract graph of ``formula`` (Definition in Section 2.4).

    Vertices are the liberal variables; edges are the edges of the
    core's Gaifman graph between liberal variables, plus a clique on the
    boundary of every ∃-component.
    """
    base = _core_or_self(formula, use_core)
    graph = base.graph()
    liberal = base.liberal
    contract = nx.Graph()
    contract.add_nodes_from(liberal)
    for left, right in graph.edges:
        if left in liberal and right in liberal:
            contract.add_edge(left, right)
    for component in exists_components(base, use_core=False):
        boundary = sorted(component.boundary, key=lambda v: v.name)
        for i, left in enumerate(boundary):
            for right in boundary[i + 1 :]:
                contract.add_edge(left, right)
    return contract


@dataclass(frozen=True)
class StructuralReport:
    """Structural parameters of a pp-formula relevant to the trichotomy."""

    core_treewidth: int
    contract_treewidth: int
    liberal_count: int
    quantified_count: int
    max_arity: int


def structural_report(formula: PPFormula) -> StructuralReport:
    """Compute the structural parameters that the classification inspects."""
    core = formula.core()
    core_width, _ = treewidth(core.graph())
    contract_width, _ = treewidth(contract_graph(core, use_core=False))
    return StructuralReport(
        core_treewidth=core_width,
        contract_treewidth=contract_width,
        liberal_count=len(formula.liberal),
        quantified_count=len(core.quantified_variables),
        max_arity=formula.max_arity(),
    )


@dataclass(frozen=True)
class PPCountingPlan:
    """The structure-independent compilation of one pp-formula.

    Everything the Theorem 2.11 algorithm derives from the *query* alone
    is computed once and stored here, so the plan can be executed against
    many data structures without repeating the query-side work:

    ``formula``
        The original formula (kept for bookkeeping and empty-structure
        semantics).
    ``base``
        The core of the formula (or the formula itself when compiled
        with ``use_core=False``); execution works on this.
    ``liberal_order``
        The liberal variables in the fixed order the CSP uses.
    ``liberal_atom_scopes``
        The ``(relation, scope)`` pairs of atoms entirely over liberal
        variables; at execution time each becomes a table constraint
        filled from the data structure's relation.
    ``components``
        The ∃-components of the base, each eliminated at execution time
        by a homomorphism search into the data structure.
    ``decomposition`` / ``width``
        A tree decomposition of the contract graph and its width.  The
        CSP built at execution time has the contract graph as its primal
        graph (boundaries are cliques, liberal atoms are cliques), so
        this decomposition drives the junction-tree count directly.
    """

    formula: PPFormula
    base: PPFormula
    liberal_order: tuple[Variable, ...]
    liberal_atom_scopes: tuple[tuple[str, tuple[Variable, ...]], ...]
    components: tuple[ExistsComponent, ...]
    decomposition: TreeDecomposition
    width: int


def compile_pp_plan(formula: PPFormula, use_core: bool = True) -> PPCountingPlan:
    """Compile a pp-formula into a reusable :class:`PPCountingPlan`.

    This is the query-side half of :func:`count_pp_answers_fpt`: core
    computation, ∃-component extraction, contract-graph construction and
    tree decomposition.  None of it depends on the data structure.
    """
    base = _core_or_self(formula, use_core)
    liberal = tuple(sorted(base.liberal, key=lambda v: v.name))
    scopes: list[tuple[str, tuple[Variable, ...]]] = []
    for name, tuples in base.structure.relations.items():
        for t in tuples:
            if all(v in base.liberal for v in t):
                scopes.append((name, tuple(t)))
    components = tuple(exists_components(base, use_core=False))
    width, decomposition = treewidth(contract_graph(base, use_core=False))
    return PPCountingPlan(
        formula=formula,
        base=base,
        liberal_order=liberal,
        liberal_atom_scopes=tuple(scopes),
        components=components,
        decomposition=decomposition,
        width=width,
    )


def execute_pp_plan(
    plan: PPCountingPlan,
    structure: Structure,
    context: "ExecutionContext | None" = None,
) -> int:
    """Count the answers of a compiled pp-plan on one data structure.

    This is the data-side half of :func:`count_pp_answers_fpt`: fill the
    liberal-atom table constraints from the structure, eliminate each
    ∃-component through the :class:`~repro.engine.context.
    ExecutionContext` (memoized semijoin reduction when the component is
    acyclic with a small boundary, backtracking otherwise), and run the
    junction-tree count over the precomputed decomposition.  ``context``
    shares the positional index and the boundary-relation memo across
    plans, terms, and calls; a throwaway context is created when none is
    given.
    """
    if structure.is_empty():
        return 0 if plan.formula.variables else 1
    if context is None:
        from repro.engine.context import ExecutionContext

        context = ExecutionContext(structure)
    if context.encoding_active:
        return _execute_pp_plan_encoded(plan, context)

    constraints: list[Constraint] = []
    for name, scope in plan.liberal_atom_scopes:
        # Structure relations are already frozensets, and .relation()
        # raises SignatureError for unknown names exactly like the
        # pre-plan code path did.
        constraints.append(Constraint(scope, structure.relation(name)))

    # Each ∃-component is replaced by the relation over its boundary of
    # assignments that extend into the component.
    for component in plan.components:
        boundary = component.boundary_order
        if not boundary:
            # A pp-sentence part: it contributes a factor 1 if satisfiable
            # on the structure and 0 otherwise.
            if not context.component_satisfiable(component):
                return 0
            continue
        allowed = context.boundary_relation(component)
        constraints.append(Constraint(boundary, allowed))

    instance = CSPInstance.build(plan.liberal_order, list(context.domain), constraints)
    return count_solutions(instance, decomposition=plan.decomposition, strategy="auto")


def _execute_pp_plan_encoded(plan: PPCountingPlan, context: "ExecutionContext") -> int:
    """The encoded execution of a pp-plan: tables of dense-int rows
    end to end, no decoding anywhere.

    Liberal-atom tables come from the context's columnar relations
    (repeated scope variables collapse to equality-filtered distinct
    columns), ∃-component boundary tables from
    :meth:`~repro.engine.context.ExecutionContext.
    boundary_relation_encoded`, and the final count runs through the
    join-driven junction-tree DP :func:`count_solutions_tables` over
    the plan's precomputed decomposition.  Because the encoding is a
    bijection between the universe and ``range(n)``, the count equals
    the object-path count exactly.
    """
    encoded = context.encoded
    tables: list[tuple[tuple[Variable, ...], frozenset]] = []
    for name, scope in plan.liberal_atom_scopes:
        # relation_rows raises SignatureError for unknown names exactly
        # like Structure.relation on the object path.
        tables.append(table_from_scope(scope, encoded.relation_rows(name)))
    for component in plan.components:
        boundary = component.boundary_order
        if not boundary:
            if not context.component_satisfiable(component):
                return 0
            continue
        tables.append((boundary, context.boundary_relation_encoded(component)))
    return count_solutions_tables(
        plan.liberal_order,
        encoded.size,
        tables,
        decomposition=plan.decomposition,
    )


def count_pp_answers_fpt(
    formula: PPFormula,
    structure: Structure,
    use_core: bool = True,
    decomposition: TreeDecomposition | None = None,
) -> int:
    """Count the answers of a pp-formula via the Theorem 2.11 algorithm.

    The algorithm is correct for *every* pp-formula; it is fixed-
    parameter tractable (polynomial in ``|structure|`` for a fixed
    formula class) precisely when the class satisfies the tractability
    condition, because the exponents are bounded by the treewidth of
    cores and contract graphs.

    One-shot convenience wrapper around :func:`compile_pp_plan` +
    :func:`execute_pp_plan`; callers counting the same formula on many
    structures should compile once and execute repeatedly (or use
    :class:`repro.engine.Engine`, which also caches the plans).
    """
    if structure.is_empty():
        return 0 if formula.variables else 1
    plan = compile_pp_plan(formula, use_core=use_core)
    if decomposition is not None:
        # dataclasses.replace keeps the reconstruction honest as fields
        # are added to PPCountingPlan; the width is always taken from
        # the override so the plan never reports a stale width.
        plan = replace(plan, decomposition=decomposition, width=decomposition.width)
    return execute_pp_plan(plan, structure)
