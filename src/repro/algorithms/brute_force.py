"""Brute-force counting of query answers.

These are the reference implementations every other algorithm is tested
against.  They are exponential in the number of variables of the query
(and, for the fully naive variant, enumerate all ``|B|^|V|``
assignments), but they implement the semantics directly from the
definitions, with no clever rewriting, which makes them trustworthy
baselines for both tests and benchmarks.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Iterable, Mapping

from repro.exceptions import FormulaError
from repro.logic.ep import EPFormula
from repro.logic.formulas import AtomicFormula, And, Exists, Formula, Or, Truth
from repro.logic.pp import PPFormula
from repro.logic.terms import Variable
from repro.structures.homomorphism import (
    count_extendable_assignments,
    find_homomorphism,
    has_homomorphism,
)
from repro.structures.structure import Element, Structure


def satisfies(
    structure: Structure,
    assignment: Mapping[Variable, Element],
    formula: Formula,
) -> bool:
    """Model checking: does ``structure, assignment |= formula``?

    ``assignment`` must cover the free variables of ``formula``.  The
    evaluation follows the semantics of existential positive first-order
    logic directly; existential quantifiers are evaluated by trying
    every universe element.
    """
    if isinstance(formula, Truth):
        return True
    if isinstance(formula, AtomicFormula):
        atom = formula.atom
        try:
            image = tuple(assignment[v] for v in atom.arguments)
        except KeyError as missing:
            raise FormulaError(
                f"assignment does not cover variable {missing.args[0]!r}"
            ) from None
        if atom.relation not in structure.signature:
            return False
        return image in structure.relation(atom.relation)
    if isinstance(formula, And):
        return all(satisfies(structure, assignment, child) for child in formula.operands)
    if isinstance(formula, Or):
        return any(satisfies(structure, assignment, child) for child in formula.operands)
    if isinstance(formula, Exists):
        variables = formula.variables
        elements = sorted(structure.universe, key=repr)
        base = dict(assignment)
        for values in iter_product(elements, repeat=len(variables)):
            base.update(zip(variables, values))
            if satisfies(structure, base, formula.body):
                return True
        return False
    raise FormulaError(f"unsupported formula node {formula!r}")


def enumerate_answers_naive(query: EPFormula, structure: Structure) -> Iterable[dict[Variable, Element]]:
    """Enumerate the answers of an EP query by trying every assignment.

    An answer is an assignment of the *liberal* variables; the iteration
    order is deterministic (lexicographic in the sorted variable names
    and sorted universe elements).
    """
    variables = sorted(query.liberal, key=lambda v: v.name)
    elements = sorted(structure.universe, key=repr)
    for values in iter_product(elements, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if satisfies(structure, assignment, query.ast):
            yield assignment


def count_answers_naive(query: EPFormula, structure: Structure) -> int:
    """Count answers of an EP query by exhaustive enumeration.

    This is the most direct -- and slowest -- implementation of
    ``|phi(B)|``; it enumerates all ``|B|^|liberal|`` assignments.
    """
    return sum(1 for _ in enumerate_answers_naive(query, structure))


def count_pp_answers_brute_force(formula: PPFormula, structure: Structure) -> int:
    """Count answers to a prenex pp-formula by component-wise search.

    Uses the fact (Section 2.1) that the answer count of a pp-formula is
    the product of the answer counts of its components:

    * a component with no liberal variables contributes ``1`` if it is
      satisfiable on the structure and ``0`` otherwise;
    * a component whose liberal variables occur in no atom contributes
      ``|B|`` per such variable;
    * any other component is counted by enumerating the extendable
      assignments of its liberal variables (backtracking search).
    """
    total = 1
    for component in formula.components():
        if total == 0:
            return 0
        if not component.is_liberal():
            if component.atom_count == 0:
                # An empty non-liberal component: purely quantified
                # variables with no atoms; satisfiable iff the universe
                # is non-empty (or there are no variables at all).
                if component.variables and structure.is_empty():
                    return 0
                continue
            if not has_homomorphism(component.structure, structure):
                return 0
            continue
        if component.atom_count == 0:
            # Isolated liberal variables: |B| choices each, but a
            # quantified variable in the same component (impossible:
            # no atoms means each variable is its own component) -- so
            # the component is a single liberal variable.
            total *= len(structure.universe) ** len(component.liberal)
            continue
        total *= count_extendable_assignments(
            component.structure, structure, component.liberal
        )
    return total


def count_ep_answers_by_disjuncts(query: EPFormula, structure: Structure) -> int:
    """Count answers to an EP query by unioning the disjuncts' answer sets.

    Materializes the union of the answer sets of the pp-disjuncts (a
    set of assignment tuples), so memory is proportional to the answer
    count.  Faster than :func:`count_answers_naive` when answers are
    sparse; used as a second, independently-implemented baseline.
    """
    liberal = sorted(query.liberal, key=lambda v: v.name)
    seen: set[tuple[Element, ...]] = set()
    elements = sorted(structure.universe, key=repr)
    for disjunct in query.disjuncts():
        constrained = [v for v in liberal if v in disjunct.free_variables]
        unconstrained = [v for v in liberal if v not in disjunct.free_variables]
        # Enumerate extendable assignments of the constrained variables,
        # then pad with every combination of the unconstrained ones.
        from repro.structures.homomorphism import enumerate_extendable_assignments

        satisfiable_sentences = all(
            has_homomorphism(component.structure, structure)
            for component in disjunct.components()
            if not component.is_liberal() and component.atom_count > 0
        )
        if not satisfiable_sentences:
            continue
        if structure.is_empty() and disjunct.variables:
            continue
        core_part = disjunct.hat()
        for partial in enumerate_extendable_assignments(
            core_part.structure, structure, constrained
        ):
            if unconstrained:
                for values in iter_product(elements, repeat=len(unconstrained)):
                    full = dict(partial)
                    full.update(zip(unconstrained, values))
                    seen.add(tuple(full[v] for v in liberal))
            else:
                seen.add(tuple(partial[v] for v in liberal))
    return len(seen)
