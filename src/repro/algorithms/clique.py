"""Cliques: the hard side of the trichotomy.

The intractable cases of the classification are calibrated against the
(parameterized) clique problem and its counting version:

* case (2) formula classes are interreducible with ``p-Clique``
  (W[1]-complete), and
* case (3) classes are at least as hard as ``p-#Clique``
  (#W[1]-complete).

This module provides the clique and #clique baselines themselves
(decision and counting by enumeration over vertex subsets, with degree
pruning) and the canonical hard query families used by the benchmarks:
the *clique queries*, whose contract graphs are complete graphs and
which therefore fall outside every bounded-treewidth class.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

from repro.exceptions import WorkloadError
from repro.logic.builder import pp_from_atom_specs
from repro.logic.pp import PPFormula
from repro.structures.structure import Element, Structure


def _adjacency(graph: Structure, relation: str, symmetric: bool) -> dict[Element, set[Element]]:
    adjacency: dict[Element, set[Element]] = {v: set() for v in graph.universe}
    for source, target in graph.relation(relation):
        if source == target:
            continue
        adjacency[source].add(target)
        if symmetric:
            adjacency[target].add(source)
    return adjacency


def enumerate_cliques(
    graph: Structure, k: int, relation: str = "E", directed_as_undirected: bool = True
) -> Iterator[frozenset[Element]]:
    """Enumerate the ``k``-cliques of a graph structure.

    A ``k``-clique is a set of ``k`` vertices that are pairwise adjacent.
    When ``directed_as_undirected`` is true (default) an edge in either
    direction counts as adjacency; otherwise both directions are
    required.
    """
    if k < 0:
        raise WorkloadError("k must be non-negative")
    if k == 0:
        yield frozenset()
        return
    adjacency = _adjacency(graph, relation, symmetric=directed_as_undirected)
    if not directed_as_undirected:
        both = {v: {u for u in adjacency[v] if v in adjacency.get(u, set())} for v in adjacency}
        adjacency = both
    vertices = sorted(adjacency, key=repr)

    def extend(clique: list[Element], candidates: list[Element]) -> Iterator[frozenset[Element]]:
        if len(clique) == k:
            yield frozenset(clique)
            return
        needed = k - len(clique)
        for index, vertex in enumerate(candidates):
            if len(candidates) - index < needed:
                return
            remaining = [u for u in candidates[index + 1 :] if u in adjacency[vertex]]
            yield from extend(clique + [vertex], remaining)

    yield from extend([], vertices)


def count_cliques(graph: Structure, k: int, relation: str = "E") -> int:
    """Count the ``k``-cliques of a graph structure (the #Clique baseline)."""
    return sum(1 for _ in enumerate_cliques(graph, k, relation))


def has_clique(graph: Structure, k: int, relation: str = "E") -> bool:
    """Decide whether a graph structure contains a ``k``-clique."""
    return next(enumerate_cliques(graph, k, relation), None) is not None


def clique_query(k: int, relation: str = "E", liberal: bool = True) -> PPFormula:
    """The ``k``-clique query as a pp-formula.

    Variables ``x1, ..., xk``; atoms ``E(xi, xj)`` for every ordered pair
    ``i != j`` (so it matches cliques of directed graphs with edges in
    both directions, and of symmetric structures).  With
    ``liberal=True`` (default) all variables are liberal, so the answer
    count on a graph with a symmetric edge relation is ``k! *``
    (number of k-cliques).  With ``liberal=False`` the query is a
    sentence (pure clique existence).
    """
    if k < 1:
        raise WorkloadError("k must be at least 1")
    variables = [f"x{i}" for i in range(1, k + 1)]
    specs = [
        (relation, (variables[i], variables[j]))
        for i in range(k)
        for j in range(k)
        if i != j
    ]
    if k == 1:
        # A single vertex: no edge atoms; use a self-loop-free convention
        # by constraining nothing (every vertex is a 1-clique).
        formula = PPFormula.from_atoms([], liberal=variables if liberal else [])
        return formula if liberal else formula
    if liberal:
        return pp_from_atom_specs(specs, liberal=variables)
    return pp_from_atom_specs(specs, quantified=variables).with_liberal([])


def clique_query_family(max_k: int, relation: str = "E") -> list[PPFormula]:
    """The family of clique queries for ``k = 2 .. max_k``.

    This family violates the contraction condition's boundedness (its
    contract graphs are the complete graphs), so it lands in the hard
    cases of the trichotomy; it is the canonical witness used by the
    hardness benchmarks.
    """
    if max_k < 2:
        raise WorkloadError("max_k must be at least 2")
    return [clique_query(k, relation) for k in range(2, max_k + 1)]


def answers_to_clique_count(answer_count: int, k: int) -> int:
    """Convert the answer count of the liberal clique query into #k-cliques.

    On a symmetric graph, every k-clique contributes ``k!`` answers (one
    per ordering of the variables), so the number of cliques is the
    answer count divided by ``k!``.
    """
    import math

    factorial = math.factorial(k)
    if answer_count % factorial:
        raise WorkloadError(
            "answer count is not divisible by k!; was the graph symmetric and loop-free?"
        )
    return answer_count // factorial
