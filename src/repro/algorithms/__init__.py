"""Algorithms substrate: counting, decompositions, treewidth, cliques."""

from repro.algorithms.decomposition import (
    TreeDecomposition,
    decomposition_from_elimination_ordering,
    trivial_decomposition,
)
from repro.algorithms.treewidth import (
    min_degree_ordering,
    min_fill_ordering,
    treewidth,
    treewidth_exact,
    treewidth_upper_bound,
    width_of_ordering,
)
from repro.algorithms.csp import (
    Constraint,
    CSPInstance,
    count_solutions,
    count_solutions_backtracking,
    count_solutions_decomposition,
)
from repro.algorithms.brute_force import (
    count_answers_naive,
    count_ep_answers_by_disjuncts,
    count_pp_answers_brute_force,
    enumerate_answers_naive,
    satisfies,
)
from repro.algorithms.homomorphism_counting import (
    count_extensions,
    count_homomorphisms_decomposed,
)
from repro.algorithms.fpt_counting import (
    ExistsComponent,
    StructuralReport,
    contract_graph,
    count_pp_answers_fpt,
    exists_components,
    structural_report,
)
from repro.algorithms.clique import (
    answers_to_clique_count,
    clique_query,
    clique_query_family,
    count_cliques,
    enumerate_cliques,
    has_clique,
)

__all__ = [
    "TreeDecomposition",
    "decomposition_from_elimination_ordering",
    "trivial_decomposition",
    "min_degree_ordering",
    "min_fill_ordering",
    "treewidth",
    "treewidth_exact",
    "treewidth_upper_bound",
    "width_of_ordering",
    "Constraint",
    "CSPInstance",
    "count_solutions",
    "count_solutions_backtracking",
    "count_solutions_decomposition",
    "count_answers_naive",
    "count_ep_answers_by_disjuncts",
    "count_pp_answers_brute_force",
    "enumerate_answers_naive",
    "satisfies",
    "count_extensions",
    "count_homomorphisms_decomposed",
    "ExistsComponent",
    "StructuralReport",
    "contract_graph",
    "count_pp_answers_fpt",
    "exists_components",
    "structural_report",
    "answers_to_clique_count",
    "clique_query",
    "clique_query_family",
    "count_cliques",
    "enumerate_cliques",
    "has_clique",
]
