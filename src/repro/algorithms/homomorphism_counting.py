"""Counting homomorphisms with treewidth-aware dynamic programming.

Counting homomorphisms from ``A`` to ``B`` is the special case of the
answer-counting problem where the query is quantifier-free and every
variable is liberal (the setting of Dalmau and Jonsson's dichotomy,
which the paper's trichotomy generalizes).  The count is computed by
translating to a constraint network -- one variable per element of
``A``, one table constraint per tuple of ``A`` whose table is the
corresponding relation of ``B`` -- and invoking the junction-tree
counter of :mod:`repro.algorithms.csp`.
"""

from __future__ import annotations

from typing import Mapping

from repro.algorithms.csp import Constraint, CSPInstance, count_solutions
from repro.algorithms.decomposition import TreeDecomposition
from repro.exceptions import SignatureError
from repro.structures.structure import Element, Structure


def _instance_for_homomorphisms(
    source: Structure,
    target: Structure,
    fixed: Mapping[Element, Element] | None = None,
) -> CSPInstance:
    """The constraint network whose solutions are the homomorphisms."""
    if not source.signature.is_subsignature_of(target.signature):
        raise SignatureError(
            "source signature must be a subsignature of the target signature"
        )
    constraints: list[Constraint] = []
    for name, tuples in source.relations.items():
        table = frozenset(target.relation(name))
        for t in tuples:
            constraints.append(Constraint(tuple(t), table))
    if fixed:
        for element, value in fixed.items():
            constraints.append(Constraint((element,), frozenset({(value,)})))
    return CSPInstance.build(
        sorted(source.universe, key=repr), sorted(target.universe, key=repr), constraints
    )


def count_homomorphisms_decomposed(
    source: Structure,
    target: Structure,
    decomposition: TreeDecomposition | None = None,
    fixed: Mapping[Element, Element] | None = None,
    strategy: str = "auto",
) -> int:
    """Count homomorphisms from ``source`` to ``target``.

    Runs in time exponential only in the treewidth of the source's
    Gaifman graph (plus polynomial factors), so it is polynomial for
    bounded-treewidth sources -- the workhorse behind the FPT cases of
    the classification.

    Parameters
    ----------
    decomposition:
        Optional pre-computed tree decomposition of the source's primal
        graph; computed on demand otherwise.
    fixed:
        Optionally pin the images of some source elements (used to count
        extensions of a partial map).
    strategy:
        Passed through to :func:`repro.algorithms.csp.count_solutions`.
    """
    instance = _instance_for_homomorphisms(source, target, fixed)
    return count_solutions(instance, decomposition=decomposition, strategy=strategy)


def count_extensions(
    source: Structure,
    target: Structure,
    partial: Mapping[Element, Element],
) -> int:
    """Count homomorphisms extending the partial map ``partial``."""
    return count_homomorphisms_decomposed(source, target, fixed=partial)
