"""Disk-backed persistence of compiled counting plans.

Compiled :class:`~repro.engine.plan.CountingPlan` objects are plain
picklable values, and compiling them (cores, tree decompositions,
cancelled inclusion-exclusion) is the expensive half of a count.  A
:class:`PlanStore` pickles plans under a cache directory so a *fresh
process* starts warm: the first ``Engine(persistent_cache_dir=...)`` to
compile a query writes the plan through to disk, and every later engine
pointed at the same directory loads it instead of recompiling.

Design points, all load-bearing for serving:

* **Versioned layout** -- plans live under
  ``<directory>/<repro.__version__>/``, so bumping the library version
  invalidates every persisted plan at once (stale plan shapes are never
  unpickled into new code).  Pass ``version=`` to override.
* **Stable filenames** -- the plan-cache key (canonical query form +
  strategy + max_disjuncts) is digested through a *canonical* byte
  encoding that sorts set-typed containers, because ``repr`` of a
  ``frozenset`` (and ``pickle`` of one) depends on the per-process
  string-hash salt.  The digest is therefore identical across
  processes, which is the whole point of a shared on-disk store.
* **Atomic writes** -- plans are written to a temp file in the store
  directory and ``os.replace``-d into place, so a concurrent reader (or
  a crash) never observes a half-written file.
* **Corruption tolerance** -- any unreadable, unpicklable, truncated,
  or key-mismatched file is a cache *miss*, never an error; serving
  must not fall over because a cache file rotted.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Iterator

from repro.structures.structure import Structure

#: Suffix of persisted plan files.
PLAN_FILE_SUFFIX = ".plan.pkl"


# ----------------------------------------------------------------------
# Canonical, process-stable key digests
# ----------------------------------------------------------------------
def _canonical_bytes(obj) -> bytes:
    """A process-stable byte encoding of a plan-cache key.

    Sorts unordered containers (whose iteration order follows the
    per-process hash salt) and falls back to ``repr`` for leaves, which
    is content-based and stable for every type that appears in a key
    (strings, ints, ``Variable``, ``RelationSymbol``).
    """
    if isinstance(obj, Structure):
        return _canonical_bytes(
            (
                "structure",
                tuple(sorted((s.name, s.arity) for s in obj.signature)),
                tuple(sorted(map(repr, obj.universe))),
                tuple(
                    (name, tuple(sorted(map(repr, tuples))))
                    for name, tuples in sorted(obj.relations.items())
                ),
            )
        )
    if isinstance(obj, (frozenset, set)):
        return b"{" + b",".join(sorted(_canonical_bytes(x) for x in obj)) + b"}"
    if isinstance(obj, (tuple, list)):
        return b"(" + b",".join(_canonical_bytes(x) for x in obj) + b")"
    if isinstance(obj, dict):
        return (
            b"<"
            + b",".join(
                sorted(
                    _canonical_bytes(k) + b":" + _canonical_bytes(v)
                    for k, v in obj.items()
                )
            )
            + b">"
        )
    return repr(obj).encode("utf-8", "backslashreplace")


def key_digest(key) -> str:
    """The hex digest naming a plan-cache key's file on disk."""
    import hashlib

    return hashlib.blake2b(_canonical_bytes(key), digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class PlanStore:
    """A versioned on-disk store of compiled plans.

    Parameters
    ----------
    directory:
        Root cache directory; created on first write.  Plans are kept
        in a per-version subdirectory.
    version:
        Cache version (default: ``repro.__version__``).  Plans written
        under a different version are invisible -- a clean miss.
    """

    def __init__(self, directory: str | os.PathLike, version: str | None = None):
        if version is None:
            from repro import __version__ as version
        self.directory = Path(directory)
        self.version = str(version)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def _version_dir(self) -> Path:
        # Version strings are dotted numbers; guard path separators from
        # a caller-supplied override all the same.
        return self.directory / self.version.replace(os.sep, "_")

    def _path(self, key) -> Path:
        return self._version_dir / f"{key_digest(key)}{PLAN_FILE_SUFFIX}"

    # ------------------------------------------------------------------
    def load(self, key):
        """The persisted plan for ``key``, or ``None`` on a miss.

        A missing, corrupt, or mismatched file is a miss, never an
        error; mismatched files (a digest collision) are left in place.
        """
        path = self._path(key)
        try:
            payload = path.read_bytes()
            stored_key, plan = pickle.loads(payload)
        except Exception:
            with self._lock:
                self.misses += 1
            return None
        if stored_key != key:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return plan

    def save(self, key, plan) -> None:
        """Persist ``plan`` under ``key``, atomically.

        The ``(key, plan)`` pair is written together so :meth:`load`
        can verify the key and :meth:`load_all` can rebuild in-memory
        caches without re-deriving keys.
        """
        self._version_dir.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps((key, plan), protocol=pickle.HIGHEST_PROTOCOL)
        fd, temp_path = tempfile.mkstemp(
            dir=self._version_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self.stores += 1

    # ------------------------------------------------------------------
    def stats_snapshot(self) -> tuple[int, int, int]:
        """``(hits, misses, stores)`` read in one lock acquisition."""
        with self._lock:
            return self.hits, self.misses, self.stores

    def reset_stats(self) -> None:
        """Zero the hit/miss/store counters under the store lock."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.stores = 0

    def load_all(self) -> Iterator[tuple]:
        """Iterate ``(key, plan)`` pairs persisted under this version.

        Unreadable files are skipped silently (corruption tolerance),
        so warming from a partially rotted store yields every plan that
        survived.
        """
        if not self._version_dir.is_dir():
            return
        for path in sorted(self._version_dir.glob(f"*{PLAN_FILE_SUFFIX}")):
            try:
                stored_key, plan = pickle.loads(path.read_bytes())
            except Exception:
                continue
            yield stored_key, plan

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """The number of plan files persisted under this version."""
        if not self._version_dir.is_dir():
            return 0
        return sum(1 for _ in self._version_dir.glob(f"*{PLAN_FILE_SUFFIX}"))

    def __contains__(self, key) -> bool:
        return self._path(key).is_file()

    def clear(self) -> None:
        """Delete every plan persisted under this version."""
        if not self._version_dir.is_dir():
            return
        for path in self._version_dir.glob(f"*{PLAN_FILE_SUFFIX}"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanStore({str(self._version_dir)!r}, plans={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
