"""Caches backing the counting engine.

Two caches make plan reuse pay off:

* :class:`PlanCache` -- an LRU of compiled :class:`~repro.engine.plan.
  CountingPlan` objects keyed by a canonical form of the query plus the
  requested strategy.  Query texts are additionally memoized through a
  parse cache so serving the same SQL-ish string twice never re-parses.
* :class:`ExecutionContextCache` -- an LRU of
  :class:`~repro.engine.context.ExecutionContext` objects, one per data
  structure.  This generalizes the original per-structure
  positional-index cache: a context carries the index *and* the sorted
  domain, the memoized ∃-component boundary relations, and cached shard
  partitions, so everything data-derived is shared between executions.

Both are thin wrappers over :class:`LRUCache`, which tracks hit/miss
statistics the :class:`~repro.engine.api.Engine` surfaces.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

from repro.core.inclusion_exclusion import DEFAULT_MAX_DISJUNCTS
from repro.engine.context import ContextStats, ExecutionContext
from repro.engine.plan import CountingPlan, Query, as_ep, compile_plan
from repro.exceptions import ReproError
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula
from repro.structures.structure import Structure

Key = TypeVar("Key", bound=Hashable)
Value = TypeVar("Value")

#: Default capacity of the plan cache.
DEFAULT_PLAN_CACHE_SIZE = 256
#: Default capacity of the execution-context cache.
DEFAULT_CONTEXT_CACHE_SIZE = 32
#: Backwards-compatible alias (the context cache subsumed the old
#: per-structure index cache).
DEFAULT_INDEX_CACHE_SIZE = DEFAULT_CONTEXT_CACHE_SIZE
#: Default capacity of the query-text parse cache.
DEFAULT_PARSE_CACHE_SIZE = 1024


class _InFlight:
    """Single-flight bookkeeping for one key being computed."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class LRUCache(Generic[Key, Value]):
    """A small thread-safe LRU cache with hit/miss counters.

    Misses are *single-flight*: concurrent ``get_or_compute`` calls on
    the same absent key elect one leader to run ``compute`` (still
    outside the lock -- compilation can be slow and reentrant) while the
    others wait for its result, so one compilation serves them all and
    the miss counter reflects exactly one computation per key.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ReproError("cache capacity must be at least 1")
        self.capacity = capacity
        self._data: OrderedDict[Key, Value] = OrderedDict()
        self._inflight: dict[Key, _InFlight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key: Key, compute: Callable[[], Value]) -> Value:
        """Return the cached value for ``key``, computing and storing on miss."""
        with self._lock:
            if key in self._data:
                self.hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _InFlight()
                self.misses += 1
                leader = True
            else:
                leader = False
        if not leader:
            # Another thread is computing this key: wait for it.  Its
            # failure propagates (computing again would fail the same
            # way for deterministic compiles, and hiding it is worse).
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.hits += 1
            return flight.value  # type: ignore[return-value]
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.value = value
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
            self._inflight.pop(key, None)
        flight.event.set()
        return value

    def pop(self, key: Key) -> Value | None:
        """Remove and return the entry for ``key`` (``None`` if absent).

        Statistics are untouched: an invalidation is neither a hit nor
        a miss.  Used when derived state goes stale -- above all when a
        registered structure is replaced under the same name.
        """
        with self._lock:
            return self._data.pop(key, None)

    def put(self, key: Key, value: Value) -> None:
        """Insert ``value`` directly (used when warming from disk)."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def items(self) -> list[tuple[Key, Value]]:
        """A snapshot of the cached entries, least recent first."""
        with self._lock:
            return list(self._data.items())

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, or 0.0 before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_snapshot(self) -> tuple[int, int]:
        """``(hits, misses)`` read together under the cache lock.

        Reading the two attributes separately can observe a hit and its
        preceding miss from different moments (or race a concurrent
        :meth:`reset_stats`); stats reporting goes through this.
        """
        with self._lock:
            return self.hits, self.misses

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0


# ----------------------------------------------------------------------
# Canonical query keys
# ----------------------------------------------------------------------
PlanKey = tuple  # (canonical query form, strategy, max_disjuncts)


#: Reserved prefix for canonically renamed quantified variables; no
#: parsed query can contain a NUL byte in a variable name.
_CANONICAL_PREFIX = "\x00q"


def _canonical_pp_form(formula: PPFormula) -> Hashable:
    """The (structure, liberal) pair with quantified variables renamed
    canonically, so alpha-equivalent pp-formulas (same bound-variable
    order under name sorting) key identically."""
    quantified = sorted(formula.quantified_variables, key=lambda v: v.name)
    if quantified:
        from repro.logic.terms import Variable

        mapping = {
            v: Variable(f"{_CANONICAL_PREFIX}{i}") for i, v in enumerate(quantified)
        }
        formula = formula.rename(mapping)
    return (formula.structure, formula.liberal)


def canonical_query_form(query: Query) -> Hashable:
    """A hashable canonical form of a query, stable across call styles.

    Strings are parsed; quantified variables are renamed canonically per
    disjunct, so a pp-formula, the EP formula wrapping it, and the
    parsed text of either all key identically -- ``count(pp, B)`` after
    ``count(EPFormula.from_pp(pp), B)`` is a cache hit.  The form is
    syntactic beyond that (atom ordering is already normalized by the
    set-based structures) -- logically equivalent but syntactically
    different queries compile separately, which is sound, merely
    conservative.
    """
    if isinstance(query, PPFormula):
        return ("pp", _canonical_pp_form(query))
    ep = as_ep(query)
    if ep.is_primitive_positive():
        return ("pp", _canonical_pp_form(ep.to_pp()))
    return ("ep", tuple(_canonical_pp_form(d) for d in ep.disjuncts()), ep.liberal)


def plan_key(query: Query, strategy: str, max_disjuncts: int) -> PlanKey:
    """The full plan-cache key."""
    return (canonical_query_form(query), strategy, max_disjuncts)


class PlanCache:
    """An LRU cache of compiled plans keyed by canonical query form."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE):
        self._cache: LRUCache[PlanKey, CountingPlan] = LRUCache(capacity)
        self._parse_cache: LRUCache[str, EPFormula] = LRUCache(DEFAULT_PARSE_CACHE_SIZE)

    def resolve(self, query: Query) -> EPFormula | PPFormula:
        """Resolve a query to a formula, memoizing string parses."""
        if isinstance(query, str):
            return self._parse_cache.get_or_compute(query, lambda: as_ep(query))
        return query

    def get(
        self, query: Query, strategy: str, max_disjuncts: int, store=None
    ) -> CountingPlan:
        """The compiled plan for the query, compiling at most once.

        With a :class:`~repro.engine.persist.PlanStore`, an in-memory
        miss first consults the store (a persisted plan skips
        compilation entirely) and a fresh compilation is written through
        to disk, so later processes start warm.
        """
        resolved = self.resolve(query)
        key = plan_key(resolved, strategy, max_disjuncts)

        def compute() -> CountingPlan:
            if store is not None:
                persisted = store.load(key)
                if persisted is not None:
                    return persisted
            plan = compile_plan(resolved, strategy, max_disjuncts)
            if store is not None:
                store.save(key, plan)
            return plan

        return self._cache.get_or_compute(key, compute)

    def seed(self, key: PlanKey, plan: CountingPlan) -> None:
        """Insert an already-compiled plan (warming from disk)."""
        self._cache.put(key, plan)

    def items(self) -> list[tuple[PlanKey, CountingPlan]]:
        """A snapshot of the cached ``(key, plan)`` entries."""
        return self._cache.items()

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    def stats_snapshot(self) -> tuple[int, int]:
        """``(hits, misses)`` of the plan cache, read coherently."""
        return self._cache.stats_snapshot()

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, query: object) -> bool:
        """Membership by query (over all strategies is *not* checked).

        ``query in cache`` answers "is the auto-strategy plan cached?",
        the common case the tests and examples care about.
        """
        try:
            key = plan_key(query, "auto", DEFAULT_MAX_DISJUNCTS)  # type: ignore[arg-type]
        except ReproError:
            return False
        return key in self._cache

    def contains(
        self, query: Query, strategy: str, max_disjuncts: int
    ) -> bool:
        """Whether the exact ``(query, strategy, max_disjuncts)`` plan
        is cached.  A pure probe: no statistics are touched and nothing
        is compiled -- the tracing layer uses it to annotate
        ``plan.compile`` spans with hit/miss before the real lookup."""
        try:
            key = plan_key(self.resolve(query), strategy, max_disjuncts)
        except ReproError:
            return False
        return key in self._cache

    def clear(self) -> None:
        self._cache.clear()
        self._parse_cache.clear()

    def reset_stats(self) -> None:
        self._cache.reset_stats()
        self._parse_cache.reset_stats()


class ExecutionContextCache:
    """An LRU cache of execution contexts, one per data structure.

    Keyed by the structure itself (structures are immutable and
    hashable); the first lookup creates the context, every later
    execution against the same structure shares its positional index,
    boundary-relation memo, and shard partitions.  All contexts created
    by one cache share a single :class:`~repro.engine.context.
    ContextStats` sink so the engine can report aggregate counters.

    ``encoding`` selects the execution backend every created context
    uses (see :func:`repro.structures.encoding.resolve_backend`); it is
    resolved once here so cached contexts are homogeneous.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CONTEXT_CACHE_SIZE,
        encoding: str | None = None,
    ):
        from repro.structures.encoding import resolve_backend

        self._cache: LRUCache[Structure, ExecutionContext] = LRUCache(capacity)
        self.context_stats = ContextStats()
        self.encoding = resolve_backend(encoding)

    def get(self, structure: Structure) -> ExecutionContext:
        return self._cache.get_or_compute(
            structure,
            lambda: ExecutionContext(
                structure, stats=self.context_stats, encoding=self.encoding
            ),
        )

    def encoded_bytes(self) -> int:
        """Total approximate resident bytes of built encodings across
        the cached contexts (0 with encoding off or nothing built)."""
        return sum(
            context.encoded_nbytes for _, context in self._cache.items()
        )

    def invalidate(self, structure: Structure) -> bool:
        """Drop the cached context for ``structure``, if any.

        The registry calls this when a name is unregistered or
        re-registered with different data, so the parent-side context
        (index, boundary memos, cached shard partitions) of the retired
        structure stops occupying cache capacity.  Every actual drop is
        counted in the shared sink's ``context_invalidations``.
        """
        dropped = self._cache.pop(structure) is not None
        if dropped:
            self.context_stats.bump("context_invalidations")
        return dropped

    def apply_delta(
        self, old_structure: Structure, delta, new_structure: Structure
    ) -> ExecutionContext:
        """Migrate the cached context across a delta instead of dropping it.

        Pops the context keyed by the pre-delta structure and re-keys its
        :meth:`~repro.engine.context.ExecutionContext.apply_delta`
        migration (surviving memos, incrementally updated encoding)
        under the post-delta structure.  When no pre-delta context was
        cached this degrades to a plain :meth:`get` of the new version.
        Returns the post-delta context either way.
        """
        old = self._cache.pop(old_structure)
        if old is None:
            return self.get(new_structure)
        migrated = old.apply_delta(delta, new_structure)
        self._cache.put(new_structure, migrated)
        return migrated

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        return self._cache.hit_rate

    def stats_snapshot(self) -> tuple[int, int, ContextStats]:
        """``(hits, misses, context_stats)`` read coherently.

        The hit/miss pair comes from one acquisition of the cache lock
        and the context counters from one acquisition of the shared
        sink's lock, so a concurrent ``reset_stats`` never yields a
        half-zeroed view of either.
        """
        hits, misses = self._cache.stats_snapshot()
        return hits, misses, self.context_stats.snapshot()

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def reset_stats(self) -> None:
        self._cache.reset_stats()
        # Zero in place: cached contexts hold a reference to this sink.
        self.context_stats.reset()
