"""Compiling queries into reusable, structure-independent counting plans.

A :class:`CountingPlan` captures *everything* the paper's pipeline
derives from the query alone: the resolved strategy, the computed cores,
the eliminated ∃-components with their tree-decomposition schedules
(:class:`~repro.algorithms.fpt_counting.PPCountingPlan` per pp-formula),
the sentence disjuncts, and the cancelled inclusion-exclusion terms with
their coefficients.  Compiling is the expensive half of a
``count_answers`` call; executing a compiled plan against a structure
(:mod:`repro.engine.executor`) touches only the data-dependent half.

The strategy resolution mirrors :func:`repro.core.counting.count_answers`
exactly, so a plan executed on any structure returns the same count the
one-shot API would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Union

from repro.algorithms.fpt_counting import PPCountingPlan, compile_pp_plan
from repro.core.ep_to_pp import PlusDecomposition, plus_decomposition
from repro.core.inclusion_exclusion import DEFAULT_MAX_DISJUNCTS
from repro.exceptions import ReproError
from repro.logic.ep import EPFormula
from repro.logic.parser import parse_query
from repro.logic.pp import PPFormula

Query = Union[EPFormula, PPFormula, str]

#: The kinds of compiled plans (the *resolved* strategy).
PLAN_KINDS = ("pp-fpt", "ep-plus", "naive", "disjuncts")


def as_ep(query: Query) -> EPFormula:
    """Interpret strings / pp-formulas / EP formulas uniformly as EP."""
    if isinstance(query, str):
        return parse_query(query)
    if isinstance(query, PPFormula):
        return EPFormula.from_pp(query)
    if isinstance(query, EPFormula):
        return query
    raise ReproError(f"cannot interpret {query!r} as a query")


@dataclass(frozen=True)
class WeightedPPPlan:
    """One inclusion-exclusion term: ``coefficient * |plan.formula(B)|``."""

    coefficient: int
    plan: PPCountingPlan


@dataclass(frozen=True)
class CountingPlan:
    """A fully compiled, structure-independent counting plan.

    Attributes
    ----------
    query:
        The query as an EP formula (exactly as the caller posed it).
    strategy:
        The *requested* strategy (``"auto"``, ``"fpt"``, ...).
    kind:
        The *resolved* execution kind, one of :data:`PLAN_KINDS`:

        * ``"pp-fpt"`` -- a single compiled Theorem 2.11 plan;
        * ``"ep-plus"`` -- sentence checks plus the cancelled
          inclusion-exclusion combination of compiled pp-plans;
        * ``"naive"`` / ``"disjuncts"`` -- the baselines (no query-side
          work to cache beyond normal parsing).
    pp:
        The compiled pp-plan (``kind == "pp-fpt"``).
    decomposition:
        The Section 5.4 ``phi+`` decomposition (``kind == "ep-plus"``).
    sentence_disjuncts:
        The pp-sentence disjuncts checked before the combination
        (``kind == "ep-plus"``).
    terms:
        The surviving (``phi-_af``) inclusion-exclusion terms, each with
        its coefficient and compiled pp-plan (``kind == "ep-plus"``).
    liberal_count:
        ``|V|``: the exponent of the ``|B| ** |V|`` shortcut.
    compile_seconds:
        Wall-clock time spent compiling the plan.
    """

    query: EPFormula
    strategy: str
    kind: str
    pp: PPCountingPlan | None = None
    decomposition: PlusDecomposition | None = None
    sentence_disjuncts: tuple[PPFormula, ...] = ()
    terms: tuple[WeightedPPPlan, ...] = ()
    liberal_count: int = 0
    compile_seconds: float = field(default=0.0, compare=False)

    @property
    def max_width(self) -> int:
        """The largest contract-graph width among the compiled pp-plans."""
        widths = [t.plan.width for t in self.terms]
        if self.pp is not None:
            widths.append(self.pp.width)
        return max(widths, default=-1)

    def describe(self) -> str:
        """A short human-readable summary of the plan."""
        if self.kind == "pp-fpt":
            detail = f"width={self.pp.width}" if self.pp else ""
        elif self.kind == "ep-plus":
            detail = (
                f"{len(self.sentence_disjuncts)} sentences, "
                f"{len(self.terms)} terms, max width={self.max_width}"
            )
        else:
            detail = "baseline"
        return f"CountingPlan(kind={self.kind}, {detail})"


@lru_cache(maxsize=256)
def _component_plans_for(base: PPFormula) -> tuple[
    tuple[PPCountingPlan, ...], tuple[PPFormula, ...]
]:
    liberal_plans: list[PPCountingPlan] = []
    sentences: list[PPFormula] = []
    for component in base.components():
        if component.is_liberal():
            # The base is already cored; recomputing cores per component
            # would only repeat work, so compile the piece as-is.
            liberal_plans.append(compile_pp_plan(component, use_core=False))
        else:
            sentences.append(component)
    return tuple(liberal_plans), tuple(sentences)


def component_pp_plans(
    plan: PPCountingPlan,
) -> tuple[tuple[PPCountingPlan, ...], tuple[PPFormula, ...]]:
    """Split a compiled pp-plan along the query's connected components.

    Returns ``(liberal_plans, sentence_components)``: one compiled
    sub-plan per connected component of the plan's base formula that
    contains a liberal variable, plus the pp-sentence components.  Answer
    counts multiply over query components (Section 2.1), which is what
    lets the sharded executor sum each connected piece over
    disjoint-universe shards independently.  Memoized on the base
    formula, so the split is compiled once per plan however many shards
    or structures it runs against.
    """
    return _component_plans_for(plan.base)


def compile_plan(
    query: Query,
    strategy: str = "auto",
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> CountingPlan:
    """Compile ``query`` into a :class:`CountingPlan`.

    Raises the same errors :func:`repro.core.counting.count_answers`
    would raise for the same inputs (unknown strategy, ``"fpt"`` on a
    union, ...), so rerouting the one-shot API through plans is
    transparent to callers.
    """
    from repro.core.counting import STRATEGIES

    if strategy not in STRATEGIES:
        raise ReproError(f"unknown strategy {strategy!r}; choose one of {STRATEGIES}")
    started = time.perf_counter()
    ep = as_ep(query)
    liberal_count = len(ep.liberal)

    if strategy == "naive":
        return CountingPlan(
            query=ep,
            strategy=strategy,
            kind="naive",
            liberal_count=liberal_count,
            compile_seconds=time.perf_counter() - started,
        )
    if strategy == "disjuncts":
        return CountingPlan(
            query=ep,
            strategy=strategy,
            kind="disjuncts",
            liberal_count=liberal_count,
            compile_seconds=time.perf_counter() - started,
        )

    if strategy == "fpt" and not ep.is_primitive_positive():
        raise ReproError(
            "strategy 'fpt' applies to primitive positive queries only; "
            "use 'auto' or 'inclusion-exclusion' for unions"
        )

    if isinstance(query, PPFormula):
        pp = query
    elif ep.is_primitive_positive():
        pp = ep.to_pp()
    else:
        pp = None

    if pp is not None:
        return CountingPlan(
            query=ep,
            strategy=strategy,
            kind="pp-fpt",
            pp=compile_pp_plan(pp),
            liberal_count=liberal_count,
            compile_seconds=time.perf_counter() - started,
        )

    # General EP query: the Section 5.4 construction, with every
    # surviving term compiled down to a Theorem 2.11 plan.
    decomposition = plus_decomposition(ep, max_disjuncts=max_disjuncts)
    minus = set(decomposition.minus)
    terms = tuple(
        WeightedPPPlan(term.coefficient, compile_pp_plan(term.formula))
        for term in decomposition.star.terms
        if term.formula in minus
    )
    return CountingPlan(
        query=ep,
        strategy=strategy,
        kind="ep-plus",
        decomposition=decomposition,
        sentence_disjuncts=decomposition.sentence_disjuncts,
        terms=terms,
        liberal_count=len(decomposition.query.liberal),
        compile_seconds=time.perf_counter() - started,
    )
