"""Compiling queries into reusable, structure-independent counting plans.

A :class:`CountingPlan` captures *everything* the paper's pipeline
derives from the query alone: the resolved strategy, the computed cores,
the eliminated ∃-components with their tree-decomposition schedules
(:class:`~repro.algorithms.fpt_counting.PPCountingPlan` per pp-formula),
the sentence disjuncts, and the cancelled inclusion-exclusion terms with
their coefficients.  Compiling is the expensive half of a
``count_answers`` call; executing a compiled plan against a structure
(:mod:`repro.engine.executor`) touches only the data-dependent half.

The strategy resolution mirrors :func:`repro.core.counting.count_answers`
exactly, so a plan executed on any structure returns the same count the
one-shot API would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Union

from repro.algorithms.fpt_counting import PPCountingPlan, compile_pp_plan
from repro.obs import trace as _trace
from repro.core.ep_to_pp import PlusDecomposition, plus_decomposition
from repro.core.inclusion_exclusion import DEFAULT_MAX_DISJUNCTS
from repro.exceptions import ReproError
from repro.logic.ep import EPFormula
from repro.logic.parser import parse_query
from repro.logic.pp import PPFormula

Query = Union[EPFormula, PPFormula, str]

#: The kinds of compiled plans (the *resolved* strategy).
PLAN_KINDS = ("pp-fpt", "ep-plus", "naive", "disjuncts")

#: Vertex-count cutoff above which plan profiling uses the greedy
#: elimination-ordering treewidth upper bound instead of the exact
#: exponential algorithm, so profiling never costs more than it saves.
PROFILE_EXACT_THRESHOLD = 10

#: The treewidth bound the trichotomy verdict is taken against when the
#: caller does not supply one (paths/trees are in, cliques are out).
DEFAULT_TREEWIDTH_BOUND = 2


@dataclass(frozen=True)
class PlanProfile:
    """The complexity profile of a compiled plan.

    Computed once per cached plan at compile time (the plan cache and
    on-disk plan store round-trip it with the plan), so routing a
    request by its verdict is a field read, never a classification.

    Attributes
    ----------
    case:
        The trichotomy verdict (:class:`repro.core.classification.Case`)
        of the plan's pp-formulas against ``treewidth_bound``.
    treewidth_bound:
        The bound the verdict was taken against.
    contract_treewidth / core_treewidth:
        The largest contract-graph / core treewidth among the measured
        pp-formulas.  Upper bounds when ``exact`` is false.
    component_count:
        The largest number of ∃-components among the compiled pp-plans
        (0 for baseline plans, which compile no pp-plans).
    pp_formula_count:
        How many pp-formulas were measured (disjuncts for baselines,
        the surviving inclusion-exclusion terms for ``ep-plus``).
    arity:
        The number of liberal variables -- the answer arity.
    exact:
        True when every measured graph was small enough for the exact
        treewidth algorithm; false when the greedy upper bound stood in
        (measures are then upper bounds, still sound for routing since
        the verdict can only harden).
    classify_seconds:
        Wall-clock time profiling cost (included in the plan's
        ``compile_seconds``).
    """

    case: "Case"
    treewidth_bound: int
    contract_treewidth: int
    core_treewidth: int
    component_count: int
    pp_formula_count: int
    arity: int
    exact: bool
    classify_seconds: float = field(default=0.0, compare=False)

    def case_for(self, treewidth_bound: int) -> "Case":
        """Re-derive the verdict against a different treewidth bound.

        The stored measures make this a pair of comparisons, so a
        per-request policy with its own bound never re-classifies.
        """
        from repro.core.classification import Case

        if treewidth_bound == self.treewidth_bound:
            return self.case
        if self.contract_treewidth <= treewidth_bound:
            if self.core_treewidth <= treewidth_bound:
                return Case.FPT
            return Case.CLIQUE_EQUIVALENT
        return Case.SHARP_CLIQUE_HARD

    def estimated_cost(self, universe_size: int) -> float:
        """A structure-size-parameterized cost estimate.

        The junction-tree DP over a width-``w`` decomposition costs
        ``O(n ** (w + 1))`` per pp-formula; the estimate is that,
        summed over the measured formulas:
        ``pp_formula_count * universe_size ** (contract_treewidth + 1)``.
        A relative measure for routing and budgeting, not a promise of
        wall-clock seconds.
        """
        n = max(2, int(universe_size))
        width = max(0, self.contract_treewidth)
        return float(max(1, self.pp_formula_count)) * float(n) ** (width + 1)

    def estimate_count(self, universe_size: int) -> int:
        """The degraded-path estimator: ``universe_size ** arity``.

        **Estimator contract** (relied on by the ``degrade`` policy and
        its tests): the value is a deterministic upper bound on the
        exact answer count -- every answer assigns the ``arity``
        liberal variables values from the universe, so there are at
        most ``universe_size ** arity`` of them.  For FPT-verdict plans
        the degraded path never engages (execution completes within
        budget), so degraded responses equal exact counts there.
        """
        return int(universe_size) ** max(0, self.arity)

    def as_dict(self) -> dict:
        """The wire form used by ``POST /classify`` and 422 bodies."""
        return {
            "case": self.case.name,
            "verdict": self.case.value,
            "treewidth_bound": self.treewidth_bound,
            "contract_treewidth": self.contract_treewidth,
            "core_treewidth": self.core_treewidth,
            "component_count": self.component_count,
            "pp_formula_count": self.pp_formula_count,
            "arity": self.arity,
            "exact": self.exact,
        }


def as_ep(query: Query) -> EPFormula:
    """Interpret strings / pp-formulas / EP formulas uniformly as EP."""
    if isinstance(query, str):
        return parse_query(query)
    if isinstance(query, PPFormula):
        return EPFormula.from_pp(query)
    if isinstance(query, EPFormula):
        return query
    raise ReproError(f"cannot interpret {query!r} as a query")


@dataclass(frozen=True)
class WeightedPPPlan:
    """One inclusion-exclusion term: ``coefficient * |plan.formula(B)|``."""

    coefficient: int
    plan: PPCountingPlan


@dataclass(frozen=True)
class CountingPlan:
    """A fully compiled, structure-independent counting plan.

    Attributes
    ----------
    query:
        The query as an EP formula (exactly as the caller posed it).
    strategy:
        The *requested* strategy (``"auto"``, ``"fpt"``, ...).
    kind:
        The *resolved* execution kind, one of :data:`PLAN_KINDS`:

        * ``"pp-fpt"`` -- a single compiled Theorem 2.11 plan;
        * ``"ep-plus"`` -- sentence checks plus the cancelled
          inclusion-exclusion combination of compiled pp-plans;
        * ``"naive"`` / ``"disjuncts"`` -- the baselines (no query-side
          work to cache beyond normal parsing).
    pp:
        The compiled pp-plan (``kind == "pp-fpt"``).
    decomposition:
        The Section 5.4 ``phi+`` decomposition (``kind == "ep-plus"``).
    sentence_disjuncts:
        The pp-sentence disjuncts checked before the combination
        (``kind == "ep-plus"``).
    terms:
        The surviving (``phi-_af``) inclusion-exclusion terms, each with
        its coefficient and compiled pp-plan (``kind == "ep-plus"``).
    liberal_count:
        ``|V|``: the exponent of the ``|B| ** |V|`` shortcut.
    profile:
        The memoized :class:`PlanProfile` -- trichotomy verdict,
        structural measures, cost estimate -- attached at compile time
        and round-tripped by the plan cache and plan store.
    compile_seconds:
        Wall-clock time spent compiling the plan (profiling included).
    """

    query: EPFormula
    strategy: str
    kind: str
    pp: PPCountingPlan | None = None
    decomposition: PlusDecomposition | None = None
    sentence_disjuncts: tuple[PPFormula, ...] = ()
    terms: tuple[WeightedPPPlan, ...] = ()
    liberal_count: int = 0
    profile: PlanProfile | None = field(default=None, compare=False)
    compile_seconds: float = field(default=0.0, compare=False)

    @property
    def max_width(self) -> int:
        """The largest contract-graph width among the compiled pp-plans."""
        widths = [t.plan.width for t in self.terms]
        if self.pp is not None:
            widths.append(self.pp.width)
        return max(widths, default=-1)

    def describe(self) -> str:
        """A short human-readable summary of the plan."""
        if self.kind == "pp-fpt":
            detail = f"width={self.pp.width}" if self.pp else ""
        elif self.kind == "ep-plus":
            detail = (
                f"{len(self.sentence_disjuncts)} sentences, "
                f"{len(self.terms)} terms, max width={self.max_width}"
            )
        else:
            detail = "baseline"
        return f"CountingPlan(kind={self.kind}, {detail})"


@lru_cache(maxsize=256)
def _component_plans_for(base: PPFormula) -> tuple[
    tuple[PPCountingPlan, ...], tuple[PPFormula, ...]
]:
    liberal_plans: list[PPCountingPlan] = []
    sentences: list[PPFormula] = []
    for component in base.components():
        if component.is_liberal():
            # The base is already cored; recomputing cores per component
            # would only repeat work, so compile the piece as-is.
            liberal_plans.append(compile_pp_plan(component, use_core=False))
        else:
            sentences.append(component)
    return tuple(liberal_plans), tuple(sentences)


def component_pp_plans(
    plan: PPCountingPlan,
) -> tuple[tuple[PPCountingPlan, ...], tuple[PPFormula, ...]]:
    """Split a compiled pp-plan along the query's connected components.

    Returns ``(liberal_plans, sentence_components)``: one compiled
    sub-plan per connected component of the plan's base formula that
    contains a liberal variable, plus the pp-sentence components.  Answer
    counts multiply over query components (Section 2.1), which is what
    lets the sharded executor sum each connected piece over
    disjoint-universe shards independently.  Memoized on the base
    formula, so the split is compiled once per plan however many shards
    or structures it runs against.
    """
    return _component_plans_for(plan.base)


def compile_plan(
    query: Query,
    strategy: str = "auto",
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> CountingPlan:
    """Compile ``query`` into a :class:`CountingPlan`.

    Raises the same errors :func:`repro.core.counting.count_answers`
    would raise for the same inputs (unknown strategy, ``"fpt"`` on a
    union, ...), so rerouting the one-shot API through plans is
    transparent to callers.
    """
    from repro.core.counting import STRATEGIES

    if strategy not in STRATEGIES:
        raise ReproError(f"unknown strategy {strategy!r}; choose one of {STRATEGIES}")
    started = time.perf_counter()
    ep = as_ep(query)
    liberal_count = len(ep.liberal)

    if strategy == "naive":
        plan = CountingPlan(
            query=ep,
            strategy=strategy,
            kind="naive",
            liberal_count=liberal_count,
        )
    elif strategy == "disjuncts":
        plan = CountingPlan(
            query=ep,
            strategy=strategy,
            kind="disjuncts",
            liberal_count=liberal_count,
        )
    else:
        if strategy == "fpt" and not ep.is_primitive_positive():
            raise ReproError(
                "strategy 'fpt' applies to primitive positive queries only; "
                "use 'auto' or 'inclusion-exclusion' for unions"
            )

        if isinstance(query, PPFormula):
            pp = query
        elif ep.is_primitive_positive():
            pp = ep.to_pp()
        else:
            pp = None

        if pp is not None:
            plan = CountingPlan(
                query=ep,
                strategy=strategy,
                kind="pp-fpt",
                pp=compile_pp_plan(pp),
                liberal_count=liberal_count,
            )
        else:
            # General EP query: the Section 5.4 construction, with every
            # surviving term compiled down to a Theorem 2.11 plan.
            decomposition = plus_decomposition(ep, max_disjuncts=max_disjuncts)
            minus = set(decomposition.minus)
            terms = tuple(
                WeightedPPPlan(term.coefficient, compile_pp_plan(term.formula))
                for term in decomposition.star.terms
                if term.formula in minus
            )
            plan = CountingPlan(
                query=ep,
                strategy=strategy,
                kind="ep-plus",
                decomposition=decomposition,
                sentence_disjuncts=decomposition.sentence_disjuncts,
                terms=terms,
                liberal_count=len(decomposition.query.liberal),
            )

    profile = profile_plan(plan)
    return replace(
        plan,
        profile=profile,
        compile_seconds=time.perf_counter() - started,
    )


def profile_plan(
    plan: CountingPlan,
    treewidth_bound: int = DEFAULT_TREEWIDTH_BOUND,
    exact_threshold: int = PROFILE_EXACT_THRESHOLD,
) -> PlanProfile:
    """Compute the :class:`PlanProfile` of a compiled plan.

    The measured pp-formulas are the ones the plan will actually
    execute: the single pp-formula of a ``pp-fpt`` plan, the surviving
    inclusion-exclusion terms of an ``ep-plus`` plan, and the query's
    disjuncts for the baseline kinds.  Graphs with more than
    ``exact_threshold`` vertices are measured with the greedy
    elimination-ordering upper bound instead of the exact exponential
    algorithm, so profiling stays cheap on adversarially large queries.
    """
    from repro.core.classification import Case, measure_pp_class

    started = time.perf_counter()
    with _trace.span("plan.classify", kind=plan.kind) as span:
        if plan.kind == "pp-fpt" and plan.pp is not None:
            formulas = [plan.pp.formula]
        elif plan.kind == "ep-plus":
            formulas = [t.plan.formula for t in plan.terms]
        else:
            formulas = list(plan.query.disjuncts())

        component_counts = [len(t.plan.components) for t in plan.terms]
        if plan.pp is not None:
            component_counts.append(len(plan.pp.components))

        if not formulas:
            # Degenerate (e.g. every term cancelled): trivially FPT.
            profile = PlanProfile(
                case=Case.FPT,
                treewidth_bound=treewidth_bound,
                contract_treewidth=-1,
                core_treewidth=-1,
                component_count=max(component_counts, default=0),
                pp_formula_count=0,
                arity=plan.liberal_count,
                exact=True,
                classify_seconds=time.perf_counter() - started,
            )
            span.set("verdict", profile.case.name)
            return profile

        measures = measure_pp_class(formulas, exact_threshold=exact_threshold)
        max_core = max(m.core_treewidth for m in measures)
        max_contract = max(m.contract_treewidth for m in measures)
        if max_contract <= treewidth_bound and max_core <= treewidth_bound:
            case = Case.FPT
        elif max_contract <= treewidth_bound:
            case = Case.CLIQUE_EQUIVALENT
        else:
            case = Case.SHARP_CLIQUE_HARD
        exact = all(
            len(formula.variables) <= exact_threshold for formula in formulas
        )
        profile = PlanProfile(
            case=case,
            treewidth_bound=treewidth_bound,
            contract_treewidth=max_contract,
            core_treewidth=max_core,
            component_count=max(component_counts, default=0),
            pp_formula_count=len(formulas),
            arity=plan.liberal_count,
            exact=exact,
            classify_seconds=time.perf_counter() - started,
        )
        span.set("verdict", profile.case.name)
        span.set("contract_treewidth", profile.contract_treewidth)
        span.set("core_treewidth", profile.core_treewidth)
        return profile
