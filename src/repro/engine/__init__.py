"""The compiled-plan counting engine.

Separates the query-side work of the Chen--Mengel pipeline (parsing,
cores, ∃-component elimination, tree decomposition, cancelled
inclusion-exclusion) from per-structure execution, so plans are built
once, cached, and run many times over many structures:

* :mod:`repro.engine.plan` -- :func:`compile_plan` /
  :class:`CountingPlan`: the structure-independent compilation, plus
  :func:`component_pp_plans`, the query-component split the sharded
  path executes;
* :mod:`repro.engine.context` -- :class:`ExecutionContext`: the
  per-structure execution state (lazy positional index, sorted domain,
  memoized semijoin ∃-component boundary relations, cached shard
  partitions);
* :mod:`repro.engine.cache` -- LRU plan cache keyed by canonical query
  form, plus the per-structure execution-context cache;
* :mod:`repro.engine.executor` -- :func:`execute`, the batch
  :func:`count_many` with a multiprocessing path, and the sharded
  :func:`execute_sharded` scale-out path;
* :mod:`repro.engine.pool` -- :class:`WorkerPool`, the long-lived
  process pool whose workers keep execution contexts resident across
  calls, keyed by structure fingerprint;
* :mod:`repro.engine.persist` -- :class:`PlanStore`, the versioned
  on-disk plan store that lets fresh processes start warm;
* :mod:`repro.engine.registry` -- :class:`StructureRegistry`, named
  resident structures with pinning and LRU eviction, so requests can
  count against a *reference* instead of shipping data;
* :mod:`repro.engine.policy` -- :class:`ExecutionPolicy`, the
  classification-driven routing policy (allow / reject / budget /
  degrade) applied to each plan's :class:`PlanProfile` verdict before
  execution;
* :mod:`repro.engine.api` -- the :class:`Engine` facade with hit-rate
  and timing statistics, and the process-wide default engine behind
  :func:`repro.core.counting.count_answers`.
"""

from repro.engine.api import (
    Engine,
    EngineStats,
    StructureRef,
    default_engine,
    reset_default_engine,
    set_default_engine,
)
from repro.engine.cache import (
    ExecutionContextCache,
    LRUCache,
    PlanCache,
    canonical_query_form,
    plan_key,
)
from repro.engine.context import ContextStats, ExecutionContext
from repro.engine.executor import count_many, execute, execute_sharded
from repro.engine.persist import PlanStore
from repro.engine.pool import WorkerPool, WorkerTaskError, default_process_count
from repro.engine.registry import (
    RegistryEntry,
    RegistryFull,
    StructureRegistry,
    UnknownStructureError,
    VersionConflict,
)
from repro.engine.plan import (
    PLAN_KINDS,
    CountingPlan,
    PlanProfile,
    WeightedPPPlan,
    compile_plan,
    component_pp_plans,
    profile_plan,
)
from repro.engine.policy import ALLOW, POLICY_MODES, ExecutionPolicy

__all__ = [
    "Engine",
    "EngineStats",
    "StructureRef",
    "StructureRegistry",
    "RegistryEntry",
    "RegistryFull",
    "UnknownStructureError",
    "VersionConflict",
    "default_engine",
    "reset_default_engine",
    "set_default_engine",
    "LRUCache",
    "PlanCache",
    "ExecutionContextCache",
    "ContextStats",
    "ExecutionContext",
    "canonical_query_form",
    "plan_key",
    "count_many",
    "execute",
    "execute_sharded",
    "PlanStore",
    "WorkerPool",
    "WorkerTaskError",
    "default_process_count",
    "PLAN_KINDS",
    "CountingPlan",
    "PlanProfile",
    "WeightedPPPlan",
    "compile_plan",
    "component_pp_plans",
    "profile_plan",
    "ALLOW",
    "POLICY_MODES",
    "ExecutionPolicy",
]
