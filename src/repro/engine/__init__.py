"""The compiled-plan counting engine.

Separates the query-side work of the Chen--Mengel pipeline (parsing,
cores, ∃-component elimination, tree decomposition, cancelled
inclusion-exclusion) from per-structure execution, so plans are built
once, cached, and run many times over many structures:

* :mod:`repro.engine.plan` -- :func:`compile_plan` /
  :class:`CountingPlan`: the structure-independent compilation;
* :mod:`repro.engine.cache` -- LRU plan cache keyed by canonical query
  form, plus per-structure positional-index cache;
* :mod:`repro.engine.executor` -- :func:`execute` and the batch
  :func:`count_many` with a multiprocessing path;
* :mod:`repro.engine.api` -- the :class:`Engine` facade with hit-rate
  and timing statistics, and the process-wide default engine behind
  :func:`repro.core.counting.count_answers`.
"""

from repro.engine.api import (
    Engine,
    EngineStats,
    default_engine,
    reset_default_engine,
    set_default_engine,
)
from repro.engine.cache import (
    LRUCache,
    PlanCache,
    StructureIndexCache,
    canonical_query_form,
    plan_key,
)
from repro.engine.executor import count_many, execute
from repro.engine.plan import (
    PLAN_KINDS,
    CountingPlan,
    WeightedPPPlan,
    compile_plan,
)

__all__ = [
    "Engine",
    "EngineStats",
    "default_engine",
    "reset_default_engine",
    "set_default_engine",
    "LRUCache",
    "PlanCache",
    "StructureIndexCache",
    "canonical_query_form",
    "plan_key",
    "count_many",
    "execute",
    "PLAN_KINDS",
    "CountingPlan",
    "WeightedPPPlan",
    "compile_plan",
]
