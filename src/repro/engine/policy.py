"""Execution policies: classification-driven admission control.

The trichotomy (Chen & Mengel, PODS 2016) is the complexity theory of
this whole stack; an :class:`ExecutionPolicy` makes it load-bearing.
Every compiled plan carries a memoized
:class:`~repro.engine.plan.PlanProfile` (verdict + structural
measures); a policy decides, *at plan time*, what happens when a
request's plan falls on the wrong side of the tractability frontier:

``allow``
    Run everything unconditionally (the default -- the pre-policy
    behavior).
``reject``
    Refuse plans whose verdict is in ``reject_cases`` (by default the
    p-#Clique-hard case) with
    :class:`~repro.exceptions.PolicyRejection`, carrying the verdict
    and measures.  The query never executes; the HTTP layer maps this
    to 422.
``budget``
    Run everything, but under a cooperative
    :class:`~repro.budget.CostBudget` (step counter + deadline), so a
    count that exceeds it aborts *inside* the workers -- the HTTP layer
    maps the abort to 504 with partial-progress stats.
``degrade``
    Like ``budget``, but a budget abort returns the profile's
    documented estimator value
    (:meth:`~repro.engine.plan.PlanProfile.estimate_count`: the sound
    upper bound ``universe_size ** arity``) instead of failing.

Policies resolve per engine (``Engine(policy=...)``) with a
per-request override; requests carry either a bare mode string or the
object form ``{"mode": ..., "max_steps": ..., "max_seconds": ...,
"treewidth_bound": ...}`` (see :meth:`ExecutionPolicy.from_request`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.budget import CostBudget
from repro.exceptions import PolicyRejection, ReproError

#: The policy modes, in increasing order of interference.
POLICY_MODES = ("allow", "reject", "budget", "degrade")

#: Default step allowance for ``budget``/``degrade`` policies that do
#: not set one: generous enough that any FPT-verdict plan on serving-
#: scale data finishes untouched, small enough that a treewidth
#: explosion aborts in well under a second.
DEFAULT_MAX_STEPS = 20_000_000

#: Verdict names accepted in requests (``Case.name`` spellings).
_CASE_NAMES = ("FPT", "CLIQUE_EQUIVALENT", "SHARP_CLIQUE_HARD")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the engine routes plans by their complexity verdict.

    ``treewidth_bound`` is the bound the verdict is taken against
    (plans profiled at the default bound re-derive their verdict from
    the stored measures -- two integer comparisons).  ``reject_cases``
    names the :class:`~repro.core.classification.Case` members (by
    ``.name``) the ``reject`` mode refuses.  ``max_steps`` /
    ``max_seconds`` parameterize the budget of the ``budget`` and
    ``degrade`` modes.
    """

    mode: str = "allow"
    treewidth_bound: int = 2
    reject_cases: tuple[str, ...] = ("SHARP_CLIQUE_HARD",)
    max_steps: int | None = None
    max_seconds: float | None = None

    def __post_init__(self):
        if self.mode not in POLICY_MODES:
            raise ReproError(
                f"unknown policy mode {self.mode!r}; "
                f"choose one of {POLICY_MODES}"
            )
        for name in self.reject_cases:
            if name not in _CASE_NAMES:
                raise ReproError(
                    f"unknown verdict {name!r} in reject_cases; "
                    f"choose from {_CASE_NAMES}"
                )
        if self.treewidth_bound < 0:
            raise ReproError("treewidth_bound must be non-negative")

    # -- request parsing ------------------------------------------------
    @classmethod
    def from_request(cls, value) -> "ExecutionPolicy":
        """Build a policy from a request field.

        Accepts a bare mode string (``"reject"``), an
        :class:`ExecutionPolicy` (passed through), or an object form::

            {"mode": "budget", "max_steps": 1000000,
             "max_seconds": 2.5, "treewidth_bound": 2,
             "reject_cases": ["SHARP_CLIQUE_HARD", "CLIQUE_EQUIVALENT"]}
        """
        if isinstance(value, ExecutionPolicy):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        if not isinstance(value, dict):
            raise ReproError(
                "policy must be a mode string or an object with a 'mode'"
            )
        known = {
            "mode", "treewidth_bound", "reject_cases",
            "max_steps", "max_seconds",
        }
        unknown = set(value) - known
        if unknown:
            raise ReproError(
                f"unknown policy field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs: dict = {"mode": value.get("mode", "allow")}
        if not isinstance(kwargs["mode"], str):
            raise ReproError("policy 'mode' must be a string")
        if "treewidth_bound" in value:
            bound = value["treewidth_bound"]
            if not isinstance(bound, int) or isinstance(bound, bool):
                raise ReproError("policy 'treewidth_bound' must be an int")
            kwargs["treewidth_bound"] = bound
        if "reject_cases" in value:
            cases = value["reject_cases"]
            if not isinstance(cases, (list, tuple)) or not all(
                isinstance(c, str) for c in cases
            ):
                raise ReproError(
                    "policy 'reject_cases' must be a list of verdict names"
                )
            kwargs["reject_cases"] = tuple(cases)
        if "max_steps" in value and value["max_steps"] is not None:
            steps = value["max_steps"]
            if not isinstance(steps, int) or isinstance(steps, bool) or steps <= 0:
                raise ReproError("policy 'max_steps' must be a positive int")
            kwargs["max_steps"] = steps
        if "max_seconds" in value and value["max_seconds"] is not None:
            seconds = value["max_seconds"]
            if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or seconds <= 0:
                raise ReproError("policy 'max_seconds' must be a positive number")
            kwargs["max_seconds"] = float(seconds)
        return cls(**kwargs)

    # -- plan-time decisions --------------------------------------------
    def admit(self, profile) -> None:
        """Raise :class:`PolicyRejection` if ``profile`` is refused.

        Only the ``reject`` mode refuses; the other modes admit every
        plan (``budget``/``degrade`` interfere at execution time
        instead).  Plans with no profile (legacy plan-store entries)
        are admitted -- rejection requires a verdict to cite.
        """
        if self.mode != "reject" or profile is None:
            return
        case = profile.case_for(self.treewidth_bound)
        if case.name in self.reject_cases:
            raise PolicyRejection(
                f"query rejected by policy: verdict is {case.value!r} "
                f"at treewidth bound {self.treewidth_bound}",
                verdict=case.name,
                measures=profile.as_dict(),
                policy=self.mode,
            )

    def make_budget(self) -> CostBudget | None:
        """The cooperative budget this policy imposes, if any."""
        if self.mode not in ("budget", "degrade"):
            return None
        max_steps = self.max_steps
        if max_steps is None and self.max_seconds is None:
            max_steps = DEFAULT_MAX_STEPS
        return CostBudget(max_steps=max_steps, max_seconds=self.max_seconds)

    @property
    def degrades(self) -> bool:
        return self.mode == "degrade"

    def as_dict(self) -> dict:
        out: dict = {"mode": self.mode, "treewidth_bound": self.treewidth_bound}
        if self.mode == "reject":
            out["reject_cases"] = list(self.reject_cases)
        if self.mode in ("budget", "degrade"):
            out["max_steps"] = self.max_steps
            out["max_seconds"] = self.max_seconds
        return out


#: The engine's default policy when none is configured.
ALLOW = ExecutionPolicy(mode="allow")
