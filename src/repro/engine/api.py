"""The user-facing counting engine.

:class:`Engine` ties the pieces together: it compiles queries into
:class:`~repro.engine.plan.CountingPlan` objects through an LRU plan
cache, serves data structures through an LRU cache of
:class:`~repro.engine.context.ExecutionContext` objects (positional
index + sorted domain + memoized ∃-component boundary relations + shard
partitions), executes plans sequentially, over a process pool, or
sharded, and keeps hit-rate and timing statistics.

A module-level default engine backs
:func:`repro.core.counting.count_answers`, so every existing caller of
the one-shot API transparently benefits from plan caching::

    >>> from repro import Structure
    >>> from repro.engine import Engine
    >>> engine = Engine()
    >>> graph = Structure.from_relations({"E": [(1, 2), (2, 3), (3, 1)]})
    >>> engine.count("exists z. (E(x, z) & E(z, y))", graph)
    3
    >>> engine.count("exists z. (E(x, z) & E(z, y))", graph)  # cache hit
    3
    >>> engine.stats().plan_hits
    1
"""

from __future__ import annotations

import atexit
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

from repro.budget import budget_scope
from repro.core.inclusion_exclusion import DEFAULT_MAX_DISJUNCTS
from repro.engine.cache import (
    DEFAULT_CONTEXT_CACHE_SIZE,
    DEFAULT_PLAN_CACHE_SIZE,
    ExecutionContextCache,
    PlanCache,
)
from repro.engine.executor import _CONTEXT_KINDS
from repro.engine.executor import count_many as _count_many
from repro.engine.executor import (
    default_process_count,
    execute,
    execute_sharded,
)
from repro.engine.persist import PlanStore
from repro.engine.plan import CountingPlan, PlanProfile, Query
from repro.engine.policy import ALLOW, ExecutionPolicy
from repro.engine.pool import DEFAULT_WORKER_CONTEXT_CAPACITY, WorkerPool
from repro.engine.registry import (
    DEFAULT_REGISTRY_MAX_BYTES,
    DEFAULT_REGISTRY_MAX_ENTRIES,
    RegistryEntry,
    StructureRegistry,
    UnknownStructureError,
    VersionConflict,
)
from repro.exceptions import BudgetExceeded, PolicyRejection, ReproError
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.obs.trace import NOOP_SPAN
from repro.structures.structure import Structure

_log = get_logger("engine.api")

#: Anywhere the engine takes a structure it also takes the *name* of a
#: registered one (see :class:`~repro.engine.registry.StructureRegistry`).
StructureRef = Structure | str


@dataclass
class EngineStats:
    """Counters and timings accumulated by an :class:`Engine`.

    ``plan_hits`` / ``plan_misses`` count plan-cache lookups (a miss
    compiles); ``context_hits`` / ``context_misses`` count
    execution-context lookups (a miss creates a context; its positional
    index is still built lazily, counted by ``index_builds``).
    ``boundary_memo_hits`` / ``boundary_memo_misses`` count memoized
    ∃-component boundary-relation lookups, and ``semijoin_eliminations``
    / ``backtracking_eliminations`` say which evaluator served each
    miss.  ``worker_context_hits`` / ``worker_context_misses`` count
    lookups of the worker-resident context caches inside the engine's
    long-lived pool (a hit means a pool job reused a built index and
    boundary memo instead of rebuilding).  ``persist_hits`` /
    ``persist_misses`` / ``persist_stores`` count on-disk plan-store
    traffic when ``persistent_cache_dir`` is configured.
    ``registry_hits`` / ``registry_misses`` count name resolutions
    against the structure registry (a miss raised
    :class:`~repro.engine.registry.UnknownStructureError`);
    ``registry_registrations`` / ``registry_evictions`` count
    ``register_structure`` calls and capacity evictions.
    ``encoded_eliminations`` counts ∃-component eliminations served
    over the dense-int encoding (zero unless ``Engine(encoding=...)``
    or ``REPRO_ENCODING`` enabled it), and ``encoded_resident_bytes``
    is the approximate resident size of the encodings held by the
    parent-side context cache.  ``delta_applies`` counts successful
    :meth:`Engine.apply_delta` calls, ``memo_evictions`` the memo
    entries dropped by their relation-scoped invalidation, and
    ``context_invalidations`` the whole contexts dropped from the
    parent cache (unregister, re-registration with different data).
    ``compile_seconds`` is time spent compiling plans,
    ``execute_seconds`` time spent executing them.

    ``classifications`` counts trichotomy classifications run at
    compile time -- once per plan-cache miss, zero on hits, which is
    the memoization contract of
    :class:`~repro.engine.plan.PlanProfile`; ``verdicts`` breaks them
    down by :class:`~repro.core.classification.Case` name.
    ``policy_rejections`` counts plans refused at plan time by a
    ``reject`` policy and ``budget_aborts`` counts executions stopped
    by a cooperative :class:`~repro.budget.CostBudget` (including the
    ones the ``degrade`` mode turned into estimates).
    """

    count_calls: int = 0
    batch_calls: int = 0
    sharded_calls: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    context_hits: int = 0
    context_misses: int = 0
    index_builds: int = 0
    boundary_memo_hits: int = 0
    boundary_memo_misses: int = 0
    semijoin_eliminations: int = 0
    backtracking_eliminations: int = 0
    worker_context_hits: int = 0
    worker_context_misses: int = 0
    persist_hits: int = 0
    persist_misses: int = 0
    persist_stores: int = 0
    registry_hits: int = 0
    registry_misses: int = 0
    registry_registrations: int = 0
    registry_evictions: int = 0
    encoded_eliminations: int = 0
    encoded_resident_bytes: int = 0
    delta_applies: int = 0
    memo_evictions: int = 0
    context_invalidations: int = 0
    classifications: int = 0
    policy_rejections: int = 0
    budget_aborts: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    strategies: dict[str, int] = field(default_factory=dict)
    verdicts: dict[str, int] = field(default_factory=dict)

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    @property
    def context_hit_rate(self) -> float:
        total = self.context_hits + self.context_misses
        return self.context_hits / total if total else 0.0

    # Backwards-compatible aliases from the index-cache era.
    @property
    def index_hits(self) -> int:
        return self.context_hits

    @property
    def index_misses(self) -> int:
        return self.context_misses

    @property
    def index_hit_rate(self) -> float:
        return self.context_hit_rate

    def as_dict(self) -> dict:
        """A JSON-friendly snapshot (used by the benchmark harness)."""
        return {
            "count_calls": self.count_calls,
            "batch_calls": self.batch_calls,
            "sharded_calls": self.sharded_calls,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": self.plan_hit_rate,
            "context_hits": self.context_hits,
            "context_misses": self.context_misses,
            "context_hit_rate": self.context_hit_rate,
            "index_builds": self.index_builds,
            "boundary_memo_hits": self.boundary_memo_hits,
            "boundary_memo_misses": self.boundary_memo_misses,
            "semijoin_eliminations": self.semijoin_eliminations,
            "backtracking_eliminations": self.backtracking_eliminations,
            "worker_context_hits": self.worker_context_hits,
            "worker_context_misses": self.worker_context_misses,
            "persist_hits": self.persist_hits,
            "persist_misses": self.persist_misses,
            "persist_stores": self.persist_stores,
            "registry_hits": self.registry_hits,
            "registry_misses": self.registry_misses,
            "registry_registrations": self.registry_registrations,
            "registry_evictions": self.registry_evictions,
            "encoded_eliminations": self.encoded_eliminations,
            "encoded_resident_bytes": self.encoded_resident_bytes,
            "delta_applies": self.delta_applies,
            "memo_evictions": self.memo_evictions,
            "context_invalidations": self.context_invalidations,
            "classifications": self.classifications,
            "policy_rejections": self.policy_rejections,
            "budget_aborts": self.budget_aborts,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "strategies": dict(self.strategies),
            "verdicts": dict(self.verdicts),
        }


class Engine:
    """A compiled-plan counting engine with plan and context caches.

    Parameters
    ----------
    plan_cache_size:
        Capacity of the LRU cache of compiled plans.
    context_cache_size:
        Capacity of the LRU cache of per-structure execution contexts.
    max_disjuncts:
        Safety limit forwarded to the inclusion-exclusion expansion.
    persistent_cache_dir:
        When given, compiled plans are written through to (and misses
        first consult) a :class:`~repro.engine.persist.PlanStore`
        under this directory, keyed by library version -- fresh
        processes pointed at the same directory start warm.
    processes:
        Size of the engine's long-lived worker pool (default: one per
        CPU).  The pool itself starts lazily on the first parallel
        call and then stays resident for the engine's lifetime.
    worker_context_cache_size:
        How many execution contexts each pool worker keeps resident
        (keyed by structure fingerprint).
    registry:
        The :class:`~repro.engine.registry.StructureRegistry` holding
        named resident structures; when omitted the engine creates one
        with the two capacity knobs below.  Structures registered
        through :meth:`register_structure` can then be *named* -- a
        ``str`` -- anywhere ``count`` / ``count_many`` /
        ``count_sharded`` accept a structure.
    registry_max_entries / registry_max_bytes:
        Capacity of the engine-created registry (ignored when
        ``registry`` is given).
    encoding:
        The execution backend (see
        :func:`repro.structures.encoding.resolve_backend`):
        ``"object"`` (default) keeps the object-tuple evaluators;
        ``"array"`` / ``"numpy"`` / ``"auto"`` intern every served
        structure's universe to dense ints and run the semijoin
        pipeline and pp-plan DP over the encoding (bit-for-bit exact).
        ``None`` consults the ``REPRO_ENCODING`` environment variable.
        Resolved once here and threaded through the context cache, the
        worker pool (pinned and LRU-resident worker contexts), and the
        sequential sharded path.
    policy:
        The engine's default :class:`~repro.engine.policy.
        ExecutionPolicy` (also accepts a mode string or the request
        dict form).  Every count call resolves it -- or a per-call
        ``policy=`` override -- against the compiled plan's memoized
        :class:`~repro.engine.plan.PlanProfile`: ``reject`` refuses
        hard-verdict plans at plan time, ``budget``/``degrade`` run
        the execution under a cooperative cost budget.  ``None``
        means ``allow`` (the pre-policy behavior).
    """

    def __init__(
        self,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        context_cache_size: int = DEFAULT_CONTEXT_CACHE_SIZE,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        persistent_cache_dir: str | None = None,
        processes: int | None = None,
        worker_context_cache_size: int = DEFAULT_WORKER_CONTEXT_CAPACITY,
        registry: StructureRegistry | None = None,
        registry_max_entries: int = DEFAULT_REGISTRY_MAX_ENTRIES,
        registry_max_bytes: int = DEFAULT_REGISTRY_MAX_BYTES,
        encoding: str | None = None,
        policy: ExecutionPolicy | str | dict | None = None,
    ):
        from repro.structures.encoding import resolve_backend

        self.encoding = resolve_backend(encoding)
        self.policy = (
            ALLOW if policy is None else ExecutionPolicy.from_request(policy)
        )
        self.plans = PlanCache(plan_cache_size)
        self.contexts = ExecutionContextCache(
            context_cache_size, encoding=self.encoding
        )
        self.max_disjuncts = max_disjuncts
        self.store = (
            PlanStore(persistent_cache_dir)
            if persistent_cache_dir is not None
            else None
        )
        self.registry = registry or StructureRegistry(
            max_entries=registry_max_entries, max_bytes=registry_max_bytes
        )
        self.pool = WorkerPool(
            processes=processes,
            context_capacity=worker_context_cache_size,
            encoding=self.encoding,
        )
        #: An attached ClusterCoordinator, or None for single-host mode.
        self.cluster = None
        self._lock = threading.Lock()
        self._delta_lock = threading.Lock()
        self._compile_seconds = 0.0
        self._execute_seconds = 0.0
        self._count_calls = 0
        self._batch_calls = 0
        self._sharded_calls = 0
        self._delta_applies = 0
        self._classifications = 0
        self._policy_rejections = 0
        self._budget_aborts = 0
        self._strategies: dict[str, int] = {}
        self._verdicts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def compile(self, query: Query, strategy: str = "auto") -> CountingPlan:
        """The compiled plan for ``query`` (cached, persisted if configured)."""
        before = time.perf_counter()
        # Probe before the real lookup (pure, touches no counters): the
        # span wants hit/miss, and classification accounting must run
        # once per miss -- a cache hit reuses the memoized profile.
        hit = self.plans.contains(query, strategy, self.max_disjuncts)
        with _trace.span("plan.compile", strategy=strategy) as span:
            if span is not NOOP_SPAN:
                span.set("cache", "hit" if hit else "miss")
            plan = self.plans.get(
                query, strategy, self.max_disjuncts, store=self.store
            )
            span.set("kind", plan.kind)
        with self._lock:
            self._compile_seconds += time.perf_counter() - before
            if not hit and plan.profile is not None:
                self._classifications += 1
                verdict = plan.profile.case.name
                self._verdicts[verdict] = self._verdicts.get(verdict, 0) + 1
        return plan

    def classify(self, query: Query, strategy: str = "auto") -> PlanProfile:
        """The memoized complexity profile of ``query``'s compiled plan.

        The dry-run half of policy routing: compiles (through the plan
        cache) and returns the :class:`~repro.engine.plan.PlanProfile`
        -- verdict, structural measures, cost estimator -- without
        executing anything.  The HTTP layer's ``POST /classify`` is a
        thin wrapper over this.
        """
        plan = self.compile(query, strategy)
        if plan.profile is not None:
            return plan.profile
        # Legacy plan-store entries predate profiling; profile in place.
        from repro.engine.plan import profile_plan

        return profile_plan(plan)

    # -- policy plumbing ------------------------------------------------
    def _resolve_policy(self, policy) -> ExecutionPolicy:
        """The engine default, or a validated per-call override."""
        if policy is None:
            return self.policy
        return ExecutionPolicy.from_request(policy)

    def _admit(self, policy: ExecutionPolicy, plan: CountingPlan) -> None:
        """Plan-time admission; counts and re-raises rejections."""
        try:
            policy.admit(plan.profile)
        except PolicyRejection:
            with self._lock:
                self._policy_rejections += 1
            raise

    def _budget_aborted(
        self,
        policy: ExecutionPolicy,
        exc: BudgetExceeded,
    ) -> None:
        """Account a cooperative budget abort (span + counter)."""
        with self._lock:
            self._budget_aborts += 1
        with _trace.span("budget.abort", degraded=policy.degrades) as span:
            for key, value in exc.progress.items():
                span.set(key, value)

    # ------------------------------------------------------------------
    # Warm-start: the persistent plan store
    # ------------------------------------------------------------------
    def warm_from_disk(self) -> int:
        """Load every persisted plan into the in-memory plan cache.

        Returns the number of plans loaded.  Requires
        ``persistent_cache_dir``; corrupt files are skipped (they are
        misses, never errors).
        """
        if self.store is None:
            raise ReproError(
                "warm_from_disk() needs Engine(persistent_cache_dir=...)"
            )
        loaded = 0
        for key, plan in self.store.load_all():
            self.plans.seed(key, plan)
            loaded += 1
        return loaded

    def flush_to_disk(self) -> int:
        """Persist every cached plan; returns the number written."""
        if self.store is None:
            raise ReproError(
                "flush_to_disk() needs Engine(persistent_cache_dir=...)"
            )
        written = 0
        for key, plan in self.plans.items():
            self.store.save(key, plan)
            written += 1
        return written

    # ------------------------------------------------------------------
    # Named resident structures: the registry
    # ------------------------------------------------------------------
    def attach_cluster(self, cluster) -> None:
        """Attach a :class:`~repro.cluster.coordinator.ClusterCoordinator`.

        Sharded counts on registered refs route their shard units to
        cluster workers holding the shards from now on, degrading to
        the local :class:`~repro.engine.pool.WorkerPool` whenever the
        cluster cannot take the work.  Every *currently* registered
        pinned entry's shards are placed immediately, so attachment
        mirrors what registration would have done had the cluster been
        there first; entries registered later place as part of
        :meth:`register_structure`.
        """
        self.cluster = cluster
        for name in self.registry.names():
            entry = self.registry.peek(name)
            if entry is None or not entry.pinned or entry.sharded is None:
                continue
            entry.placements = self._cluster_place(
                entry.sharded.non_empty_shards()
            )

    def detach_cluster(self):
        """Detach (and return) the cluster; counts go local again."""
        cluster, self.cluster = self.cluster, None
        return cluster

    def _cluster_place(self, shards) -> dict:
        """Best-effort placement; a degraded cluster never fails a call.

        Returns ``{worker_id: shards placed}`` (empty when nothing was
        placed) -- recorded on the registry entry for observability.
        """
        if self.cluster is None or not shards:
            return {}
        from repro.cluster.coordinator import ClusterUnavailable

        try:
            return self.cluster.place_structures(shards)
        except ClusterUnavailable as exc:
            _log.warning(
                "cluster placement skipped",
                extra={"error": str(exc)},
            )
            return {}

    def _cluster_unplace(self, fingerprints) -> None:
        if self.cluster is None or not fingerprints:
            return
        from repro.cluster.coordinator import ClusterUnavailable

        try:
            self.cluster.unplace(fingerprints)
        except ClusterUnavailable:
            pass  # nothing live to notify; placement state died with it

    def register_structure(
        self,
        name: str,
        structure: Structure,
        pin: bool = True,
        shard_count: int | None = None,
    ) -> RegistryEntry:
        """Make ``structure`` resident under ``name``.

        Registration is where the one-time costs are paid, off the
        request path: the parent-side execution context is built and
        materialized, the shard plan is computed (``shard_count``
        defaults to one shard per CPU) with every fingerprint
        precomputed, and -- with ``pin=True`` -- the structure *and its
        shards* are broadcast into every pool worker's pinned context
        cache, where they are exempt from LRU eviction and survive pool
        restarts.  Later calls may pass ``name`` wherever a structure
        is accepted; ``count_sharded`` on the name reuses the
        registration-time shard plan instead of re-partitioning.

        Re-registering an existing name with *different* data
        invalidates the retired structure's derived state everywhere:
        the parent context cache drops it and the workers unpin (and
        LRU-evict) its fingerprints.  Entries evicted under capacity
        pressure are cleaned up the same way.  Raises
        :class:`~repro.engine.registry.RegistryFull` when the capacity
        cannot be met by evicting unpinned entries.
        """
        if not isinstance(structure, Structure):
            raise ReproError(
                "register_structure() needs a Structure, not a reference"
            )
        resolved_count = (
            default_process_count() if shard_count is None else shard_count
        )
        if resolved_count < 1:
            raise ReproError("shard_count must be at least 1")
        context = self.contexts.get(structure).materialize()
        sharded = context.sharded(resolved_count).precompute_fingerprints()
        entry, previous, evicted = self.registry.register(
            name,
            structure,
            pin=pin,
            shard_count=resolved_count,
            sharded=sharded,
        )
        stale = list(evicted)
        if previous is not None and previous.fingerprint != entry.fingerprint:
            stale.append(previous)
        # Collect every fingerprint that must leave the workers into ONE
        # unpin broadcast -- each broadcast barrier-synchronizes the
        # whole pool, so K evictions must not cost K stalls.
        drop: dict = {}  # ordered fingerprint set
        for retired in stale:
            for fingerprint in self._entry_fingerprints(retired):
                drop[fingerprint] = True
            self.contexts.invalidate(retired.structure)
        keep = {entry.fingerprint}
        keep.update(s.fingerprint() for s in sharded.non_empty_shards())
        if previous is not None and previous.fingerprint == entry.fingerprint:
            if previous.sharded is not None:
                # Same data re-registered with a different shard plan:
                # the old plan's shard contexts would otherwise stay
                # pinned (and be rebuilt on pool restarts) forever.
                for fingerprint in self._entry_fingerprints(previous):
                    if fingerprint not in keep:
                        drop[fingerprint] = True
            if previous.pinned and not pin:
                # Dropping the pin on the same data: release the
                # workers' guarantee (the LRU may still keep it warm).
                for fingerprint in keep:
                    drop[fingerprint] = True
        drop = {f: True for f in drop if not (pin and f in keep)}
        if drop:
            self.pool.unpin_structures(tuple(drop))
            self._cluster_unplace(tuple(drop))
        if pin:
            self.pool.pin_structures(
                (structure,) + sharded.non_empty_shards()
            )
            # The cluster-wide generalization of the pin broadcast:
            # each shard becomes resident on `replication` workers, and
            # count_sharded on this ref routes to those holders.
            entry.placements = self._cluster_place(
                sharded.non_empty_shards()
            )
        return entry

    def apply_delta(
        self, name: str, delta, expect_version: int | None = None
    ) -> RegistryEntry:
        """Apply a :class:`~repro.structures.delta.StructureDelta` to the
        registered structure ``name``, advancing it to a new version.

        This is the live-update path that replaces "re-register the
        whole structure": the registry entry moves to ``version + 1``
        with a chained fingerprint, and every caching layer migrates
        incrementally instead of being dropped --

        * the parent-side execution context keeps each memo whose
          read-set the delta cannot have touched
          (:meth:`~repro.engine.context.ExecutionContext.apply_delta`);
        * the shard plan routes each delta tuple to the shard owning
          its component; a component *merge* falls back to re-sharding
          the post-delta structure;
        * pinned worker contexts receive an ``O(|delta|)`` fan-out
          broadcast and migrate in place (index, memos, and encoding
          kept) instead of being unpinned and rebuilt.

        ``expect_version`` enables optimistic concurrency: when given
        and not equal to the live entry's version the delta is rejected
        with :class:`~repro.engine.registry.VersionConflict` (HTTP maps
        it to 409).  Applies to one name are serialized; in-flight
        counts keep executing against the pre-delta version (nothing is
        mutated in place) and later requests observe the post-delta
        one -- never a torn mix.  Raises
        :class:`~repro.engine.registry.UnknownStructureError` for
        unregistered names and
        :class:`~repro.exceptions.DeltaError` when the delta does not
        apply to the current data.
        """
        from repro.exceptions import DeltaRoutingError
        from repro.structures.delta import StructureDelta
        from repro.structures.sharding import ShardedStructure, shard_structure

        if not isinstance(delta, StructureDelta):
            raise ReproError("apply_delta() needs a StructureDelta")
        with self._delta_lock:
            entry = self.registry.peek(name)
            if entry is None:
                raise UnknownStructureError(name, self.registry.names())
            if expect_version is not None and entry.version != expect_version:
                raise VersionConflict(name, expect_version, entry.version)
            if delta.is_empty:
                return entry
            with _trace.span(
                "structure.apply_delta",
                structure=name,
                tuples=delta.tuple_count,
                version=entry.version,
            ) as span:
                routed = None
                resharded = False
                if entry.sharded is not None:
                    try:
                        routed = entry.sharded.route_delta(delta)
                    except DeltaRoutingError:
                        resharded = True
                new_structure = entry.structure.apply_delta(delta)
                new_structure.fingerprint()
                sharded = None
                if routed is not None:
                    sharded = ShardedStructure(
                        new_structure,
                        tuple(
                            shard if sub is None else shard.apply_delta(sub)
                            for shard, sub in zip(entry.sharded.shards, routed)
                        ),
                        entry.sharded.strategy,
                    ).precompute_fingerprints()
                elif resharded:
                    # A component merge: the old partition is no longer
                    # component-aligned, so the exact combine rules need
                    # a fresh one.
                    sharded = shard_structure(
                        new_structure,
                        len(entry.sharded.shards),
                        entry.sharded.strategy,
                    ).precompute_fingerprints()
                span.set("resharded", resharded)
                new_entry = self.registry.advance(
                    name,
                    entry,
                    new_structure,
                    sharded=sharded,
                    expect_version=expect_version,
                    delta=delta,
                )
                self.contexts.apply_delta(entry.structure, delta, new_structure)
                self._fan_out_delta(entry, new_entry, delta, routed)
            with self._lock:
                self._delta_applies += 1
        return new_entry

    def _fan_out_delta(
        self,
        entry: RegistryEntry,
        new_entry: RegistryEntry,
        delta,
        routed,
    ) -> None:
        """Reconcile the worker pool's resident contexts across a delta.

        On the routed path the whole structure and every touched
        non-empty shard migrate via one ``O(|delta|)`` broadcast;
        shards going from empty to non-empty are pinned fresh (there is
        nothing resident to migrate).  On the re-shard fallback only
        the whole structure migrates -- the old partition's shard
        fingerprints are unpinned and the new partition's shards pinned
        like a registration.  Universe growth means no shard ever goes
        back to empty, so the routed path never unpins.
        """
        updates = [(entry.fingerprint, delta, new_entry.structure)]
        fresh_pins: list[Structure] = []
        stale_fingerprints: list[tuple] = []
        if routed is not None:
            for old_shard, sub, new_shard in zip(
                entry.sharded.shards, routed, new_entry.sharded.shards
            ):
                if sub is None:
                    continue
                if old_shard.is_empty():
                    fresh_pins.append(new_shard)
                else:
                    updates.append((old_shard.fingerprint(), sub, new_shard))
        elif new_entry.sharded is not None:
            stale_fingerprints.extend(
                shard.fingerprint()
                for shard in entry.sharded.non_empty_shards()
            )
            fresh_pins.extend(new_entry.sharded.non_empty_shards())
        self.pool.apply_delta(updates)
        if stale_fingerprints:
            self.pool.unpin_structures(stale_fingerprints)
        if entry.pinned and fresh_pins:
            self.pool.pin_structures(fresh_pins)
        if self.cluster is not None:
            from repro.cluster.coordinator import ClusterUnavailable

            # Mirror the fan-out cluster-wide: placed shards migrate in
            # O(|delta|) (their placements re-key to the post-delta
            # fingerprints), the re-shard fallback re-places, and fresh
            # non-empty shards place like a registration.  The whole-
            # structure update is pool-only -- the cluster holds shards.
            try:
                self.cluster.apply_delta(updates[1:])
                if stale_fingerprints:
                    self.cluster.unplace(stale_fingerprints)
                if entry.pinned and fresh_pins:
                    self.cluster.place_structures(fresh_pins)
            except ClusterUnavailable as exc:
                _log.warning(
                    "cluster delta fan-out skipped",
                    extra={"error": str(exc)},
                )

    def unregister_structure(self, name: str) -> bool:
        """Drop the registered structure ``name``; ``False`` if unknown.

        Unpins its fingerprints (whole structure and shards) from every
        worker and invalidates the parent-side context, so nothing
        keeps the retired data resident.
        """
        entry = self.registry.unregister(name)
        if entry is None:
            return False
        self._forget_entry(entry)
        return True

    def resolve_structure(self, structure: StructureRef) -> Structure:
        """``structure`` itself, or the registered structure it names."""
        if isinstance(structure, str):
            return self.registry.resolve(structure)
        return structure

    @staticmethod
    def _entry_fingerprints(entry: RegistryEntry) -> list[tuple]:
        """Every fingerprint a registry entry put into the workers."""
        fingerprints = [entry.fingerprint]
        if entry.sharded is not None:
            fingerprints.extend(
                shard.fingerprint()
                for shard in entry.sharded.non_empty_shards()
            )
        return fingerprints

    def _forget_entry(self, entry: RegistryEntry) -> None:
        """Invalidate every trace of a retired registry entry."""
        self.pool.unpin_structures(self._entry_fingerprints(entry))
        self._cluster_unplace(self._entry_fingerprints(entry))
        self.contexts.invalidate(entry.structure)

    def _context_for(self, plan: CountingPlan, structure: Structure):
        # The baseline kinds never consult a context; don't build (or
        # pin in the LRU) one for them.
        if plan.kind in _CONTEXT_KINDS:
            return self.contexts.get(structure)
        return None

    def count(
        self,
        query: Query,
        structure: StructureRef,
        strategy: str = "auto",
        policy: ExecutionPolicy | str | dict | None = None,
    ) -> int:
        """Count ``|query(structure)|`` through the plan cache.

        ``structure`` may be the *name* of a registered structure; the
        request then carries no data at all and executes against the
        resident entry.

        ``policy`` overrides the engine's default
        :class:`~repro.engine.policy.ExecutionPolicy` for this call: a
        ``reject`` policy raises
        :class:`~repro.exceptions.PolicyRejection` at plan time when
        the plan's verdict is refused; ``budget``/``degrade`` run the
        execution under a cooperative cost budget, aborting with
        :class:`~repro.exceptions.BudgetExceeded` (or, for ``degrade``,
        returning the profile's documented sound over-estimate
        ``universe_size ** arity``) when it runs out.
        """
        resolved = self._resolve_policy(policy)
        with _trace.span_or_trace("engine.count", strategy=strategy):
            structure = self.resolve_structure(structure)
            plan = self.compile(query, strategy)
            self._admit(resolved, plan)
            context = self._context_for(plan, structure)
            budget = resolved.make_budget()
            scope = budget_scope(budget) if budget is not None else nullcontext()
            before = time.perf_counter()
            try:
                with scope:
                    result = execute(plan, structure, context)
            except BudgetExceeded as exc:
                self._budget_aborted(resolved, exc)
                if not resolved.degrades or plan.profile is None:
                    raise
                result = plan.profile.estimate_count(len(structure.universe))
        with self._lock:
            self._execute_seconds += time.perf_counter() - before
            self._count_calls += 1
            self._strategies[strategy] = self._strategies.get(strategy, 0) + 1
        return result

    def count_sharded(
        self,
        query: Query,
        structure: StructureRef,
        shard_count: int | None = None,
        strategy: str = "auto",
        shard_strategy: str = "hash",
        parallel: bool | None = None,
        processes: int | None = None,
        policy: ExecutionPolicy | str | dict | None = None,
    ) -> int:
        """Count ``|query(structure)|`` by sharded data-side execution.

        The structure is partitioned into ``shard_count``
        disjoint-universe shards (default: one per CPU; the partition is
        cached on the structure's execution context), every connected
        query component runs against every shard -- over the engine's
        long-lived worker pool when ``parallel`` allows, whose workers
        keep per-shard contexts resident across calls -- and the
        per-shard results are combined exactly.  Returns precisely what
        :meth:`count` returns.

        ``structure`` may be a registered structure's *name*: the call
        then ships no data, defaults ``shard_count`` to the
        registration-time value, and reuses the shard plan computed at
        registration -- no partitioning happens on the request path at
        all (for pinned entries the per-shard contexts are already
        resident in every worker, too).

        ``shard_count`` below one is an error (it used to silently fall
        back to the CPU default), and ``sharded_calls`` counts only
        genuinely sharded executions: the baseline plan kinds run
        whole-structure and are plain ``count_calls``.

        ``policy`` routes exactly as in :meth:`count`; a budget ships
        by value into every shard job, so aborts happen inside the
        pool workers.
        """
        if shard_count is not None and shard_count < 1:
            raise ReproError("shard_count must be at least 1")
        resolved = self._resolve_policy(policy)
        with _trace.span_or_trace(
            "engine.count_sharded", strategy=strategy
        ) as root:
            entry = None
            if isinstance(structure, str):
                entry = self.registry.entry(structure)
                structure = entry.structure
                if shard_count is None:
                    shard_count = entry.shard_count
            plan = self.compile(query, strategy)
            self._admit(resolved, plan)
            budget = resolved.make_budget()
            scope = budget_scope(budget) if budget is not None else nullcontext()
            before = time.perf_counter()
            sharded_execution = plan.kind in _CONTEXT_KINDS
            if sharded_execution:
                # Reuse the registration-time plan only after validating
                # it against the entry's *current* state: the plan must
                # partition exactly this structure (identity, so any
                # fingerprint change -- re-registration or applied delta
                # -- falls through) into exactly the requested number of
                # shards (the plan's own count, not the recorded
                # metadata, so a drifted entry can never serve counts
                # from a stale partition).
                if (
                    entry is not None
                    and entry.sharded is not None
                    and entry.sharded.structure is structure
                    and shard_count == entry.sharded.shard_count
                    and shard_strategy == entry.sharded.strategy
                ):
                    sharded = entry.sharded
                else:
                    context = self.contexts.get(structure)
                    sharded = context.sharded(
                        default_process_count()
                        if shard_count is None
                        else shard_count,
                        shard_strategy,
                    )
                root.set("shards", sharded.shard_count)
                try:
                    with scope:
                        result = execute_sharded(
                            plan,
                            sharded,
                            parallel=parallel,
                            processes=processes,
                            pool=self.pool,
                            encoding=self.encoding,
                            # Cluster routing needs resident holders;
                            # only a registered ref's shards are placed.
                            cluster=(
                                self.cluster if entry is not None else None
                            ),
                        )
                except BudgetExceeded as exc:
                    self._budget_aborted(resolved, exc)
                    if not resolved.degrades or plan.profile is None:
                        raise
                    result = plan.profile.estimate_count(
                        len(structure.universe)
                    )
            else:
                try:
                    with scope:
                        result = execute(plan, structure, None)
                except BudgetExceeded as exc:
                    self._budget_aborted(resolved, exc)
                    if not resolved.degrades or plan.profile is None:
                        raise
                    result = plan.profile.estimate_count(
                        len(structure.universe)
                    )
        with self._lock:
            self._execute_seconds += time.perf_counter() - before
            self._count_calls += 1
            if sharded_execution:
                self._sharded_calls += 1
            self._strategies[strategy] = self._strategies.get(strategy, 0) + 1
        return result

    def count_many(
        self,
        queries: Sequence[Query],
        structures: Sequence[StructureRef],
        strategy: str = "auto",
        parallel: bool | None = None,
        processes: int | None = None,
        policy: ExecutionPolicy | str | dict | None = None,
    ) -> list[list[int]]:
        """Count every query on every structure: ``result[i][j] = |q_i(B_j)|``.

        Plans come from (and warm) the engine's plan cache; the parallel
        path ships the compiled plans to a process pool in
        structure-major blocks, the sequential path shares the engine's
        execution contexts.  Any item of ``structures`` may be the name
        of a registered structure.

        ``policy`` routes as in :meth:`count`, applied to the whole
        grid: a ``reject`` policy refuses the batch if *any* plan's
        verdict is refused (before anything executes); one budget
        governs all cells (shipped into every pool job), and the
        ``degrade`` fallback fills the whole grid with the profiles'
        documented over-estimates.
        """
        resolved = self._resolve_policy(policy)
        with _trace.span_or_trace(
            "engine.count_many",
            strategy=strategy,
            queries=len(queries),
            structures=len(structures),
        ):
            structures = [self.resolve_structure(s) for s in structures]
            plans = [self.compile(q, strategy) for q in queries]
            for plan in plans:
                self._admit(resolved, plan)
            budget = resolved.make_budget()
            scope = budget_scope(budget) if budget is not None else nullcontext()
            before = time.perf_counter()
            try:
                with scope:
                    result = _count_many(
                        plans,
                        structures,
                        strategy=strategy,
                        parallel=parallel,
                        processes=processes,
                        context_cache=self.contexts,
                        pool=self.pool,
                    )
            except BudgetExceeded as exc:
                self._budget_aborted(resolved, exc)
                if not resolved.degrades or any(
                    plan.profile is None for plan in plans
                ):
                    raise
                result = [
                    [
                        plan.profile.estimate_count(len(s.universe))
                        for s in structures
                    ]
                    for plan in plans
                ]
        with self._lock:
            self._execute_seconds += time.perf_counter() - before
            self._batch_calls += 1
            self._count_calls += len(plans) * len(structures)
            self._strategies[strategy] = (
                self._strategies.get(strategy, 0) + len(plans) * len(structures)
            )
        return result

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """A snapshot of the engine's counters.

        Every component is snapshotted under its own lock (the plan
        cache, the context cache and its shared
        :class:`~repro.engine.context.ContextStats` sink, the worker
        pool, the plan store), so a snapshot taken while other threads
        count never pairs a hit count with a miss count from a
        different moment, and never observes a concurrent
        :meth:`reset_stats` halfway through.
        """
        plan_hits, plan_misses = self.plans.stats_snapshot()
        context_hits, context_misses, context_stats = (
            self.contexts.stats_snapshot()
        )
        worker_hits, worker_misses = self.pool.stats_snapshot()
        persist_hits, persist_misses, persist_stores = (
            self.store.stats_snapshot() if self.store else (0, 0, 0)
        )
        registry_hits, registry_misses, registrations, evictions = (
            self.registry.stats_snapshot()
        )
        with self._lock:
            return EngineStats(
                count_calls=self._count_calls,
                batch_calls=self._batch_calls,
                sharded_calls=self._sharded_calls,
                plan_hits=plan_hits,
                plan_misses=plan_misses,
                context_hits=context_hits,
                context_misses=context_misses,
                index_builds=context_stats.index_builds,
                boundary_memo_hits=context_stats.boundary_hits,
                boundary_memo_misses=context_stats.boundary_misses,
                semijoin_eliminations=context_stats.semijoin_eliminations,
                backtracking_eliminations=context_stats.backtracking_eliminations,
                worker_context_hits=worker_hits,
                worker_context_misses=worker_misses,
                persist_hits=persist_hits,
                persist_misses=persist_misses,
                persist_stores=persist_stores,
                registry_hits=registry_hits,
                registry_misses=registry_misses,
                registry_registrations=registrations,
                registry_evictions=evictions,
                encoded_eliminations=context_stats.encoded_eliminations,
                encoded_resident_bytes=self.contexts.encoded_bytes(),
                delta_applies=self._delta_applies,
                memo_evictions=context_stats.memo_evictions,
                context_invalidations=context_stats.context_invalidations,
                classifications=self._classifications,
                policy_rejections=self._policy_rejections,
                budget_aborts=self._budget_aborts,
                compile_seconds=self._compile_seconds,
                execute_seconds=self._execute_seconds,
                strategies=dict(self._strategies),
                verdicts=dict(self._verdicts),
            )

    def clear_caches(self) -> None:
        """Drop all cached plans and contexts (a "cold" engine again).

        The persistent plan store (if any) is left untouched; use
        ``engine.store.clear()`` to wipe it too.  The structure
        registry also survives: registered entries are *state*, not
        cache -- their names keep resolving, their pinned worker
        contexts stay resident, and their shard plans remain on the
        entries (only the parent-side contexts are rebuilt lazily).
        Use :meth:`unregister_structure` to actually drop one.
        """
        self.plans.clear()
        self.contexts.clear()

    def close(self, terminate: bool = False) -> None:
        """Shut down the engine's worker pool (caches stay usable).

        Waits for in-flight pool jobs to finish and joins the worker
        processes, so after ``close()`` returns the engine has no live
        children; ``terminate=True`` kills them instead of waiting.
        The engine itself stays usable -- a later parallel call forks a
        fresh (cold) pool -- which is what lets serving layers release
        process resources without tearing the caches down.
        """
        if terminate:
            self.pool.terminate()
        else:
            self.pool.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset_stats(self) -> None:
        """Zero all counters and timings.

        Each component is zeroed under its own lock, so a reset racing
        live traffic loses at most the increments that landed after its
        lock was released -- never a torn read or a lost later update.
        """
        self.plans.reset_stats()
        self.contexts.reset_stats()
        self.pool.reset_stats()
        self.registry.reset_stats()
        if self.store is not None:
            self.store.reset_stats()
        with self._lock:
            self._compile_seconds = 0.0
            self._execute_seconds = 0.0
            self._count_calls = 0
            self._batch_calls = 0
            self._sharded_calls = 0
            self._delta_applies = 0
            self._classifications = 0
            self._policy_rejections = 0
            self._budget_aborts = 0
            self._strategies = {}
            self._verdicts = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(plans={len(self.plans)}, contexts={len(self.contexts)}, "
            f"plan_hit_rate={self.plans.hit_rate:.2f})"
        )


# ----------------------------------------------------------------------
# The module-level default engine
# ----------------------------------------------------------------------
_default_engine: Engine | None = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide default engine (created lazily).

    :func:`repro.core.counting.count_answers` routes through this
    engine, so repeated one-shot calls with the same query hit the plan
    cache.
    """
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = Engine()
    return _default_engine


def set_default_engine(engine: Engine, close_previous: bool = True) -> Engine:
    """Replace the process-wide default engine; returns the previous one.

    By default the replaced engine's worker pool is shut down (workers
    joined) on the way out: before this, a swapped-out default engine's
    child processes lingered until its ``__del__`` GC safety net fired,
    if ever.  The returned engine stays fully usable -- its pool
    restarts lazily on the next parallel call -- so callers that swap a
    previous engine back in (the test pattern) lose nothing but cold
    workers.  Pass ``close_previous=False`` to keep the replaced
    engine's workers alive, e.g. when it keeps serving elsewhere.
    """
    global _default_engine
    with _default_lock:
        previous = _default_engine
        _default_engine = engine
    if close_previous and previous is not None and previous is not engine:
        previous.close()
    return previous if previous is not None else engine


def reset_default_engine(close: bool = True) -> None:
    """Drop the default engine (a fresh one is created on next use).

    ``close`` (the default) shuts the dropped engine's worker pool down
    instead of leaving the child processes to the GC safety net; pass
    ``close=False`` only when another owner still uses that engine.
    """
    global _default_engine
    with _default_lock:
        previous, _default_engine = _default_engine, None
    if close and previous is not None:
        previous.close()


def _close_default_engine_at_exit() -> None:  # pragma: no cover - exit path
    """Join the default engine's workers before the interpreter dies.

    Without this, a process that used the default engine's parallel
    paths leaves pool teardown to ``__del__`` during interpreter
    shutdown, where multiprocessing machinery may already be torn down.
    """
    with _default_lock:
        engine = _default_engine
    if engine is not None:
        try:
            engine.close()
        except Exception:
            pass


atexit.register(_close_default_engine_at_exit)
