"""The user-facing counting engine.

:class:`Engine` ties the pieces together: it compiles queries into
:class:`~repro.engine.plan.CountingPlan` objects through an LRU plan
cache, indexes data structures through an LRU
:class:`~repro.structures.indexes.PositionalIndex` cache, executes plans
sequentially or over a process pool, and keeps hit-rate and timing
statistics.

A module-level default engine backs
:func:`repro.core.counting.count_answers`, so every existing caller of
the one-shot API transparently benefits from plan caching::

    >>> from repro import Structure
    >>> from repro.engine import Engine
    >>> engine = Engine()
    >>> graph = Structure.from_relations({"E": [(1, 2), (2, 3), (3, 1)]})
    >>> engine.count("exists z. (E(x, z) & E(z, y))", graph)
    3
    >>> engine.count("exists z. (E(x, z) & E(z, y))", graph)  # cache hit
    3
    >>> engine.stats().plan_hits
    1
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.inclusion_exclusion import DEFAULT_MAX_DISJUNCTS
from repro.engine.cache import (
    DEFAULT_INDEX_CACHE_SIZE,
    DEFAULT_PLAN_CACHE_SIZE,
    PlanCache,
    StructureIndexCache,
)
from repro.engine.executor import count_many as _count_many
from repro.engine.executor import execute
from repro.engine.plan import CountingPlan, Query
from repro.structures.structure import Structure


@dataclass
class EngineStats:
    """Counters and timings accumulated by an :class:`Engine`.

    ``plan_hits`` / ``plan_misses`` count plan-cache lookups (a miss
    compiles); ``index_hits`` / ``index_misses`` count structure-index
    lookups.  ``compile_seconds`` is time spent compiling plans,
    ``execute_seconds`` time spent executing them.
    """

    count_calls: int = 0
    batch_calls: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    index_hits: int = 0
    index_misses: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    strategies: dict[str, int] = field(default_factory=dict)

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0

    @property
    def index_hit_rate(self) -> float:
        total = self.index_hits + self.index_misses
        return self.index_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """A JSON-friendly snapshot (used by the benchmark harness)."""
        return {
            "count_calls": self.count_calls,
            "batch_calls": self.batch_calls,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": self.plan_hit_rate,
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "index_hit_rate": self.index_hit_rate,
            "compile_seconds": self.compile_seconds,
            "execute_seconds": self.execute_seconds,
            "strategies": dict(self.strategies),
        }


class Engine:
    """A compiled-plan counting engine with plan and structure caches.

    Parameters
    ----------
    plan_cache_size:
        Capacity of the LRU cache of compiled plans.
    index_cache_size:
        Capacity of the LRU cache of per-structure positional indexes.
    max_disjuncts:
        Safety limit forwarded to the inclusion-exclusion expansion.
    """

    def __init__(
        self,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        index_cache_size: int = DEFAULT_INDEX_CACHE_SIZE,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    ):
        self.plans = PlanCache(plan_cache_size)
        self.indexes = StructureIndexCache(index_cache_size)
        self.max_disjuncts = max_disjuncts
        self._lock = threading.Lock()
        self._compile_seconds = 0.0
        self._execute_seconds = 0.0
        self._count_calls = 0
        self._batch_calls = 0
        self._strategies: dict[str, int] = {}

    # ------------------------------------------------------------------
    def compile(self, query: Query, strategy: str = "auto") -> CountingPlan:
        """The compiled plan for ``query`` (cached)."""
        before = time.perf_counter()
        plan = self.plans.get(query, strategy, self.max_disjuncts)
        with self._lock:
            self._compile_seconds += time.perf_counter() - before
        return plan

    def count(self, query: Query, structure: Structure, strategy: str = "auto") -> int:
        """Count ``|query(structure)|`` through the plan cache."""
        plan = self.compile(query, strategy)
        # The baseline kinds never consult an index; don't build (or pin
        # in the LRU) one for them.
        index = (
            self.indexes.get(structure)
            if plan.kind in ("pp-fpt", "ep-plus")
            else None
        )
        before = time.perf_counter()
        result = execute(plan, structure, index)
        with self._lock:
            self._execute_seconds += time.perf_counter() - before
            self._count_calls += 1
            self._strategies[strategy] = self._strategies.get(strategy, 0) + 1
        return result

    def count_many(
        self,
        queries: Sequence[Query],
        structures: Sequence[Structure],
        strategy: str = "auto",
        parallel: bool | None = None,
        processes: int | None = None,
    ) -> list[list[int]]:
        """Count every query on every structure: ``result[i][j] = |q_i(B_j)|``.

        Plans come from (and warm) the engine's plan cache; the parallel
        path ships the compiled plans to a process pool, the sequential
        path shares the engine's structure indexes.
        """
        plans = [self.compile(q, strategy) for q in queries]
        before = time.perf_counter()
        result = _count_many(
            plans,
            structures,
            strategy=strategy,
            parallel=parallel,
            processes=processes,
            index_cache=self.indexes,
        )
        with self._lock:
            self._execute_seconds += time.perf_counter() - before
            self._batch_calls += 1
            self._count_calls += len(plans) * len(structures)
            self._strategies[strategy] = (
                self._strategies.get(strategy, 0) + len(plans) * len(structures)
            )
        return result

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """A snapshot of the engine's counters."""
        with self._lock:
            return EngineStats(
                count_calls=self._count_calls,
                batch_calls=self._batch_calls,
                plan_hits=self.plans.hits,
                plan_misses=self.plans.misses,
                index_hits=self.indexes.hits,
                index_misses=self.indexes.misses,
                compile_seconds=self._compile_seconds,
                execute_seconds=self._execute_seconds,
                strategies=dict(self._strategies),
            )

    def clear_caches(self) -> None:
        """Drop all cached plans and indexes (a "cold" engine again)."""
        self.plans.clear()
        self.indexes.clear()

    def reset_stats(self) -> None:
        """Zero all counters and timings."""
        self.plans.reset_stats()
        self.indexes.reset_stats()
        with self._lock:
            self._compile_seconds = 0.0
            self._execute_seconds = 0.0
            self._count_calls = 0
            self._batch_calls = 0
            self._strategies = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(plans={len(self.plans)}, indexes={len(self.indexes)}, "
            f"plan_hit_rate={self.plans.hit_rate:.2f})"
        )


# ----------------------------------------------------------------------
# The module-level default engine
# ----------------------------------------------------------------------
_default_engine: Engine | None = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide default engine (created lazily).

    :func:`repro.core.counting.count_answers` routes through this
    engine, so repeated one-shot calls with the same query hit the plan
    cache.
    """
    global _default_engine
    if _default_engine is None:
        with _default_lock:
            if _default_engine is None:
                _default_engine = Engine()
    return _default_engine


def set_default_engine(engine: Engine) -> Engine:
    """Replace the process-wide default engine; returns the previous one."""
    global _default_engine
    with _default_lock:
        previous = _default_engine
        _default_engine = engine
    return previous if previous is not None else engine


def reset_default_engine() -> None:
    """Drop the default engine (a fresh one is created on next use)."""
    global _default_engine
    with _default_lock:
        _default_engine = None
