"""Executing compiled counting plans against data structures.

:func:`execute` runs one :class:`~repro.engine.plan.CountingPlan` on one
structure through an :class:`~repro.engine.context.ExecutionContext`;
it is the data-dependent half of a ``count_answers`` call and touches
none of the query-side machinery (parsing, cores, tree decompositions,
inclusion-exclusion) the plan already contains.

:func:`count_many` is the batch API: every query is compiled once and
executed against every structure.  When ``parallel`` is enabled the
(plan, structure) grid is fanned out over a
:class:`~repro.engine.pool.WorkerPool` as structure-major blocks, so
each worker serves **one** execution context per structure it touches
(resident across calls when the pool is long-lived) instead of one
index per grid cell.  Failure handling is two-sided: failing to *set
up* the pool (no subprocess support, unpicklable jobs) falls back to
the sequential path, while an exception raised *inside* a worker task
propagates to the caller -- a genuine counting bug is never masked by
a silent sequential re-run.

:func:`execute_sharded` is the scale-out path: it splits the plan along
the query's connected components
(:func:`~repro.engine.plan.component_pp_plans`), runs every component
against every shard of a component-aligned
:class:`~repro.structures.sharding.ShardedStructure` partition (one
pool job per shard, all components of a shard sharing one context and
its boundary-relation memo), and combines with
:func:`~repro.structures.sharding.combine_shard_counts`: shard counts
sum, query components multiply, sentence components OR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.brute_force import (
    count_answers_naive,
    count_ep_answers_by_disjuncts,
)
from repro.budget import current_budget
from repro.algorithms.fpt_counting import PPCountingPlan, execute_pp_plan
from repro.core.ep_to_pp import sentence_holds
from repro.engine.cache import ExecutionContextCache
from repro.engine.context import ExecutionContext
from repro.engine.plan import (
    CountingPlan,
    Query,
    compile_plan,
    component_pp_plans,
)
from repro.engine.pool import (
    WorkerPool,
    WorkerTaskError,
    count_block_task,
    default_process_count,
    shard_task,
)
from repro.exceptions import ReproError
from repro.logic.pp import PPFormula
from repro.obs import trace as _trace
from repro.structures.sharding import (
    ShardedStructure,
    combine_shard_counts,
    shard_structure,
)
from repro.structures.structure import Structure

#: Plan kinds whose execution consults an execution context (the
#: baselines re-derive everything per call by design).
_CONTEXT_KINDS = ("pp-fpt", "ep-plus")


def _pool_fallback_errors() -> tuple[type[BaseException], ...]:
    """Pool-*setup* errors that demote parallel paths to sequential.

    Only errors raised while creating the pool or pickling jobs into it
    belong here (``TypeError`` / ``AttributeError`` are how unpicklable
    objects actually fail to serialize).  Exceptions raised *inside* a
    worker task never reach this set: they arrive parent-side wrapped
    in :class:`~repro.engine.pool.WorkerTaskError` and are re-raised to
    the caller.
    """
    import pickle

    return (
        ImportError,
        OSError,
        pickle.PicklingError,
        AttributeError,
        TypeError,
    )


def execute(
    plan: CountingPlan,
    structure: Structure,
    context: ExecutionContext | None = None,
) -> int:
    """Count the answers of a compiled plan on one structure.

    ``context`` carries the structure's positional index, sorted domain
    and memoized ∃-component boundary relations; when ``None`` a
    throwaway context is created for the plan kinds that use one, so the
    memo is still shared across all inclusion-exclusion terms of a
    single ``ep-plus`` execution.

    Counting runs through :meth:`ExecutionContext.count_plan`, whose
    per-(plan, structure) memo makes a *repeated* identical execution
    against a long-lived context (the engine's context cache, and above
    all the worker-resident contexts of pinned registered structures) a
    dictionary lookup -- the same warm-start the shard path has had
    since the worker pool, now on the plain path too.  ``ep-plus``
    plans memoize per *term*, so terms shared between plans reuse each
    other's counts.
    """
    if plan.kind == "naive":
        return count_answers_naive(plan.query, structure)
    if plan.kind == "disjuncts":
        return count_ep_answers_by_disjuncts(plan.query, structure)
    if context is None:
        context = ExecutionContext(structure)
    elif context.structure is not structure and context.structure != structure:
        raise ReproError("execution context was built for a different structure")
    if plan.kind == "pp-fpt":
        assert plan.pp is not None
        return context.count_plan(plan.pp)
    if plan.kind == "ep-plus":
        # The forward direction of Theorem 3.1, on precompiled parts:
        # a true sentence disjunct short-circuits to |B| ** |V|; otherwise
        # the cancelled combination of the phi-_af terms is evaluated.
        for sentence in plan.sentence_disjuncts:
            if _sentence_holds(sentence, structure, context):
                return len(structure.universe) ** plan.liberal_count
        total = 0
        for term in plan.terms:
            total += term.coefficient * context.count_plan(term.plan)
        return total
    raise ReproError(f"unknown plan kind {plan.kind!r}")


def _sentence_holds(sentence, structure: Structure, context) -> bool:
    if context is None:
        return sentence_holds(sentence, structure)
    return context.sentence_holds(sentence)


def _map_jobs(
    task,
    jobs,
    processes: int | None,
    pool: WorkerPool | None,
    encoding: str | None = None,
) -> list:
    """Run ``jobs`` through ``pool``, or a throwaway pool when none given.

    A caller-supplied pool (the engine's long-lived one) is used as-is
    so its worker-resident context caches stay warm across calls --
    unless ``processes`` explicitly asks for a different pool size, in
    which case the per-call override wins and a throwaway pool of that
    size runs the jobs.  The throwaway pool is sized to the job list
    and torn down afterwards, matching the old per-call behavior.
    ``encoding`` only shapes a throwaway pool; a caller-supplied pool
    already carries its owning engine's backend.
    """
    if pool is not None and (processes is None or processes == pool.processes):
        return pool.map(task, jobs)
    workers = max(1, min(processes or default_process_count(), len(jobs)))
    with WorkerPool(processes=workers, encoding=encoding) as transient:
        return transient.map(task, jobs)


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
def count_many(
    queries: Sequence[Query | CountingPlan],
    structures: Sequence[Structure],
    strategy: str = "auto",
    parallel: bool | None = None,
    processes: int | None = None,
    context_cache: ExecutionContextCache | None = None,
    pool: WorkerPool | None = None,
) -> list[list[int]]:
    """Count every query on every structure: ``result[i][j] = |q_i(B_j)|``.

    Queries are compiled once each (items that are already
    :class:`CountingPlan` objects are used as-is).  ``parallel=None``
    (the default) picks the parallel path when the machine has more than
    one CPU and the grid is large enough to amortize pool start-up;
    ``parallel=True`` forces it, ``parallel=False`` forces the
    sequential path.  Both paths share one execution context per
    distinct structure (per worker, on the parallel path): the jobs
    shipped to the pool are structure-major blocks of plans, not
    individual grid cells, so a structure's positional index is built
    once per block instead of once per cell.  Passing the engine's
    long-lived ``pool`` additionally keeps those contexts resident
    *across* calls, keyed by structure fingerprint.
    """
    plans = [
        q if isinstance(q, CountingPlan) else compile_plan(q, strategy)
        for q in queries
    ]
    cells = len(plans) * len(structures)
    if parallel is None:
        parallel = default_process_count() > 1 and cells >= 8

    if parallel and cells > 1:
        try:
            return _count_many_parallel(plans, structures, processes, pool)
        except WorkerTaskError as failure:
            # A counting error inside a worker is a real error of this
            # grid; surface the original exception to the caller rather
            # than silently re-running everything sequentially.
            raise failure.original from failure
        except _pool_fallback_errors():
            # No subprocess support (restricted hosts) or unpicklable
            # plans/structures -- fall through to the sequential path.
            pass
    return _count_many_sequential(plans, structures, context_cache)


def _count_many_sequential(
    plans: Sequence[CountingPlan],
    structures: Sequence[Structure],
    context_cache: ExecutionContextCache | None,
) -> list[list[int]]:
    if context_cache is None:
        context_cache = ExecutionContextCache(capacity=max(1, len(structures)))
    any_contextual = any(plan.kind in _CONTEXT_KINDS for plan in plans)
    out: list[list[int]] = [[0] * len(structures) for _ in plans]
    # Iterate structure-major so each context (index, boundary memo) is
    # built once and stays hot while every plan runs against it.
    for j, structure in enumerate(structures):
        context = context_cache.get(structure) if any_contextual else None
        for i, plan in enumerate(plans):
            out[i][j] = execute(plan, structure, context)
    return out


def _count_many_parallel(
    plans: Sequence[CountingPlan],
    structures: Sequence[Structure],
    processes: int | None,
    pool: WorkerPool | None,
) -> list[list[int]]:
    if processes is not None:
        workers = processes
    elif pool is not None:
        workers = pool.processes
    else:
        workers = default_process_count()
    workers = max(1, min(workers, len(plans) * len(structures)))
    # Structure-major blocks: when there are fewer structures than
    # workers, each structure's plan list is split into several blocks
    # so the pool still saturates; otherwise one block per structure
    # keeps index builds at one per (structure, worker) touch.
    blocks_per_structure = max(
        1, min(len(plans), -(-workers * 2 // max(1, len(structures))))
    )
    chunk = -(-len(plans) // blocks_per_structure)
    # The ambient budget ships by value with every job (pickling sends
    # the *remaining* allowance) so exhaustion aborts inside the worker.
    budget = current_budget()
    jobs: list[tuple] = []
    meta: list[tuple[int, int]] = []  # (structure index, first plan index)
    for j, structure in enumerate(structures):
        for start in range(0, len(plans), chunk):
            block = tuple(plans[start : start + chunk])
            use_context = any(plan.kind in _CONTEXT_KINDS for plan in block)
            if use_context and pool is not None:
                # Ship the cached fingerprint with the pickled structure
                # so the resident workers key their caches without
                # rehashing (a throwaway pool can never hit anyway).
                structure.fingerprint()
            if budget is not None:
                jobs.append((block, structure, use_context, budget))
            else:
                jobs.append((block, structure, use_context))
            meta.append((j, start))
    block_results = _map_jobs(count_block_task, jobs, processes, pool)
    out: list[list[int]] = [[0] * len(structures) for _ in plans]
    for (j, start), counts in zip(meta, block_results):
        for offset, value in enumerate(counts):
            out[start + offset][j] = value
    return out


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardUnit:
    """One per-shard evaluation unit of a sharded plan.

    ``kind == "count"``: a compiled liberal query component, evaluated
    to an int per shard (the per-shard counts sum).  ``kind == "sat"``:
    a connected pp-sentence component, evaluated to a bool per shard
    (the per-shard bits OR).
    """

    kind: str
    plan: PPCountingPlan | None = None
    sentence: PPFormula | None = None


@dataclass(frozen=True)
class _ShardedProgram:
    """A plan lowered to shard units plus the recombination recipe."""

    units: tuple[_ShardUnit, ...]
    # Per pp-part: (coefficient, count-unit indices, sat-unit indices).
    terms: tuple[tuple[int, tuple[int, ...], tuple[int, ...]], ...]
    # Per ep sentence disjunct: the sat-unit indices of its components.
    sentence_disjuncts: tuple[tuple[int, ...], ...]
    liberal_count: int


def _lower_plan(plan: CountingPlan) -> _ShardedProgram:
    """Split a compiled plan into deduplicated shard units.

    ∃-free recombination data only; the expensive part (component
    compilation) is memoized by :func:`component_pp_plans`, and units
    shared between inclusion-exclusion terms (the common case: terms of
    an ``ep-plus`` plan are conjunctions of the same disjuncts) are
    evaluated once per shard.
    """
    units: list[_ShardUnit] = []
    unit_index: dict = {}

    def count_unit(pp: PPCountingPlan) -> int:
        key = ("count", pp.base)
        if key not in unit_index:
            unit_index[key] = len(units)
            units.append(_ShardUnit(kind="count", plan=pp))
        return unit_index[key]

    def sat_unit(sentence: PPFormula) -> int:
        key = ("sat", sentence.structure)
        if key not in unit_index:
            unit_index[key] = len(units)
            units.append(_ShardUnit(kind="sat", sentence=sentence))
        return unit_index[key]

    def pp_term(pp: PPCountingPlan) -> tuple[tuple[int, ...], tuple[int, ...]]:
        liberal_plans, sentences = component_pp_plans(pp)
        return (
            tuple(count_unit(p) for p in liberal_plans),
            tuple(sat_unit(s) for s in sentences),
        )

    if plan.kind == "pp-fpt":
        assert plan.pp is not None
        counts, sats = pp_term(plan.pp)
        return _ShardedProgram(
            units=tuple(units),
            terms=((1, counts, sats),),
            sentence_disjuncts=(),
            liberal_count=plan.liberal_count,
        )
    assert plan.kind == "ep-plus"
    disjunct_units = []
    for sentence in plan.sentence_disjuncts:
        components = [
            PPFormula(piece, ()) for piece in _sentence_pieces(sentence)
        ]
        disjunct_units.append(tuple(sat_unit(c) for c in components))
    terms = []
    for term in plan.terms:
        counts, sats = pp_term(term.plan)
        terms.append((term.coefficient, counts, sats))
    return _ShardedProgram(
        units=tuple(units),
        terms=tuple(terms),
        sentence_disjuncts=tuple(disjunct_units),
        liberal_count=plan.liberal_count,
    )


def _sentence_pieces(sentence: PPFormula) -> list[Structure]:
    """The structures of a pp-sentence's connected components."""
    from repro.structures.graphs import component_substructures

    return [sub for sub, _ in component_substructures(sentence.structure, ())]


def _run_shard(
    job: tuple[tuple[_ShardUnit, ...], Structure],
    encoding: str | None = None,
) -> list:
    """Worker: evaluate every unit on one shard through one context."""
    units, shard = job
    context = ExecutionContext(shard, encoding=encoding)
    out: list = []
    for unit in units:
        if unit.kind == "count":
            assert unit.plan is not None
            out.append(execute_pp_plan(unit.plan, shard, context))
        else:
            assert unit.sentence is not None
            out.append(context.sentence_holds(unit.sentence))
    return out


def _run_shards_sequential(
    jobs: Sequence[tuple[tuple[_ShardUnit, ...], Structure]],
    encoding: str | None = None,
) -> list[list]:
    """The sequential shard path, with the same spans the pool emits.

    Parent-side ``shard.execute[i]`` spans keep a trace's shape
    identical whether the shards ran in workers or in-process.
    """
    out: list[list] = []
    for index, job in enumerate(jobs):
        with _trace.span(f"shard.execute[{index}]", units=len(job[0])):
            out.append(_run_shard(job, encoding))
    return out


def _run_shards_cluster(
    program: _ShardedProgram,
    shards: Sequence[Structure],
    cluster,
    encoding: str | None,
) -> list[list]:
    """Route one fingerprint-only job per shard to its cluster holders.

    The jobs ship no shard data at all -- placement at registration
    time already made each shard resident on its holders -- just the
    units, the ambient budget's remaining allowance, and the encoding
    backend.  Worker-recorded spans come back in each result and are
    re-parented into the caller's trace exactly like the local pool's.
    Raises :class:`~repro.cluster.coordinator.ClusterUnavailable` when
    the cluster cannot take the work (the caller degrades to the local
    pool) and lets :class:`~repro.engine.pool.WorkerTaskError`
    propagate for genuine task failures.
    """
    budget = current_budget()
    jobs = [(program.units, shard.fingerprint()) for shard in shards]
    with _trace.span(
        "shard.fanout",
        shards=len(jobs),
        units=len(program.units),
        cluster=True,
    ):
        results = cluster.run_units(jobs, budget=budget, encoding=encoding)
        values_by_shard: list[list] = []
        for index, (values, spans) in enumerate(results):
            _trace.attach_foreign(spans, suffix=f"[{index}]")
            values_by_shard.append(values)
    return values_by_shard


def _combine_term(
    term: tuple[int, tuple[int, ...], tuple[int, ...]],
    rows: dict[int, list],
) -> int:
    coefficient, count_units, sat_units = term
    return coefficient * combine_shard_counts(
        [rows[i] for i in count_units], [rows[i] for i in sat_units]
    )


def execute_sharded(
    plan: CountingPlan,
    sharded: ShardedStructure | Structure,
    shard_count: int | None = None,
    parallel: bool | None = None,
    processes: int | None = None,
    pool: WorkerPool | None = None,
    encoding: str | None = None,
    cluster=None,
) -> int:
    """Count the answers of a compiled plan via sharded execution.

    ``sharded`` is either a prebuilt
    :class:`~repro.structures.sharding.ShardedStructure` or a plain
    structure, which is then partitioned into ``shard_count`` shards
    (default: the machine's process count; ``shard_count`` below one is
    an error, never a silent fallback).  Returns exactly the count
    :func:`execute` returns on the whole structure; the work is one job
    per non-empty shard, fanned over the worker pool when ``parallel``
    allows, with all units of a shard sharing one execution context
    (index + boundary-relation memo) -- resident across calls when the
    engine's long-lived ``pool`` is passed.

    The baseline plan kinds (``naive``, ``disjuncts``) gain nothing from
    sharding and run whole-structure.  ``encoding`` selects the
    integer-encoding backend for the per-shard contexts built on the
    sequential path and in throwaway pools; the engine's long-lived
    pool carries its own backend, set at construction.

    ``cluster`` (a :class:`~repro.cluster.coordinator.
    ClusterCoordinator`) is tried first when given: each shard's units
    are routed to a worker *holding* that shard.  A cluster that
    cannot take the work -- no live workers, an unplaced shard, a
    mid-count loss of every holder -- degrades to the local paths
    below and the count is recomputed exactly; only a genuine task
    exception propagates.
    """
    if isinstance(sharded, Structure):
        if shard_count is not None and shard_count < 1:
            raise ReproError("shard_count must be at least 1")
        sharded = shard_structure(
            sharded,
            default_process_count() if shard_count is None else shard_count,
        )
    if plan.kind not in _CONTEXT_KINDS:
        return execute(plan, sharded.structure)

    program = _lower_plan(plan)
    shards = sharded.non_empty_shards()
    values_by_shard: list[list] | None = None
    if parallel is None:
        parallel = default_process_count() > 1 and len(shards) > 1
    jobs = [(program.units, shard) for shard in shards]
    if cluster is not None and jobs and program.units:
        from repro.cluster.coordinator import ClusterUnavailable

        try:
            values_by_shard = _run_shards_cluster(
                program, shards, cluster, encoding
            )
        except ClusterUnavailable:
            # The cluster cannot take the work right now; recompute on
            # the local paths below -- exactness over placement.
            values_by_shard = None
        except WorkerTaskError as failure:
            raise failure.original from failure
    if values_by_shard is not None:
        pass
    elif parallel and len(jobs) > 1 and program.units:
        if pool is not None:
            # Computed parent-side so the cached fingerprint ships
            # inside the pickled shard and keys the worker-resident
            # context cache without being re-derived per job.
            for shard in shards:
                shard.fingerprint()
        # Ship the ambient budget (remaining allowance) inside each job
        # so a budget- or deadline-exceeded shard aborts in its worker.
        budget = current_budget()
        pool_jobs = (
            [job + (budget,) for job in jobs] if budget is not None else jobs
        )
        try:
            with _trace.span(
                "shard.fanout", shards=len(jobs), units=len(program.units)
            ):
                values_by_shard = _map_jobs(
                    shard_task, pool_jobs, processes, pool, encoding
                )
        except WorkerTaskError as failure:
            raise failure.original from failure
        except _pool_fallback_errors():
            values_by_shard = _run_shards_sequential(jobs, encoding)
    else:
        values_by_shard = _run_shards_sequential(jobs, encoding)

    with _trace.span(
        "combine", shards=len(shards), terms=len(program.terms)
    ):
        # rows[i] = the per-shard results of unit i (empty shards
        # dropped: they contribute count 0 / sat False by construction).
        rows: dict[int, list] = {
            i: [values[i] for values in values_by_shard]
            for i in range(len(program.units))
        }
        for disjunct in program.sentence_disjuncts:
            # A sentence holds on the whole structure iff each of its
            # connected components maps into some shard (components are
            # independent, so the shards may differ).
            if all(any(rows[i]) for i in disjunct):
                return sharded.universe_size ** program.liberal_count
        return sum(_combine_term(term, rows) for term in program.terms)
