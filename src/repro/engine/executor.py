"""Executing compiled counting plans against data structures.

:func:`execute` runs one :class:`~repro.engine.plan.CountingPlan` on one
structure; it is the data-dependent half of a ``count_answers`` call and
touches none of the query-side machinery (parsing, cores, tree
decompositions, inclusion-exclusion) the plan already contains.

:func:`count_many` is the batch API: every query is compiled once and
executed against every structure.  When ``parallel`` is enabled the
(plan, structure) grid is fanned out over a :mod:`multiprocessing` pool
(plans and structures are plain picklable values); any failure to set up
the pool falls back to the sequential path, so batch callers never need
to care whether the host allows subprocesses.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.algorithms.brute_force import (
    count_answers_naive,
    count_ep_answers_by_disjuncts,
)
from repro.algorithms.fpt_counting import execute_pp_plan
from repro.core.ep_to_pp import sentence_holds
from repro.engine.cache import StructureIndexCache
from repro.engine.plan import CountingPlan, Query, compile_plan
from repro.exceptions import ReproError
from repro.structures.homomorphism import has_homomorphism
from repro.structures.indexes import PositionalIndex
from repro.structures.structure import Structure


def execute(
    plan: CountingPlan,
    structure: Structure,
    target_index: PositionalIndex | None = None,
) -> int:
    """Count the answers of a compiled plan on one structure."""
    if plan.kind == "naive":
        return count_answers_naive(plan.query, structure)
    if plan.kind == "disjuncts":
        return count_ep_answers_by_disjuncts(plan.query, structure)
    if plan.kind == "pp-fpt":
        assert plan.pp is not None
        return execute_pp_plan(plan.pp, structure, target_index)
    if plan.kind == "ep-plus":
        # The forward direction of Theorem 3.1, on precompiled parts:
        # a true sentence disjunct short-circuits to |B| ** |V|; otherwise
        # the cancelled combination of the phi-_af terms is evaluated.
        for sentence in plan.sentence_disjuncts:
            if _sentence_holds(sentence, structure, target_index):
                return len(structure.universe) ** plan.liberal_count
        total = 0
        for term in plan.terms:
            total += term.coefficient * execute_pp_plan(
                term.plan, structure, target_index
            )
        return total
    raise ReproError(f"unknown plan kind {plan.kind!r}")


def _sentence_holds(sentence, structure: Structure, target_index) -> bool:
    if target_index is None:
        return sentence_holds(sentence, structure)
    if structure.is_empty():
        return not sentence.variables
    return has_homomorphism(sentence.structure, structure, target_index=target_index)


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
def _index_for(plan: CountingPlan, structure: Structure) -> PositionalIndex | None:
    """An index for the plan kinds that use one; baselines skip the build."""
    if plan.kind in ("pp-fpt", "ep-plus"):
        return PositionalIndex(structure)
    return None


def _count_cell(job: tuple[CountingPlan, Structure]) -> int:
    plan, structure = job
    return execute(plan, structure, _index_for(plan, structure))


def default_process_count() -> int:
    """The pool size used when ``processes`` is not given."""
    return max(1, (os.cpu_count() or 1))


def count_many(
    queries: Sequence[Query | CountingPlan],
    structures: Sequence[Structure],
    strategy: str = "auto",
    parallel: bool | None = None,
    processes: int | None = None,
    index_cache: StructureIndexCache | None = None,
) -> list[list[int]]:
    """Count every query on every structure: ``result[i][j] = |q_i(B_j)|``.

    Queries are compiled once each (items that are already
    :class:`CountingPlan` objects are used as-is).  ``parallel=None``
    (the default) picks the parallel path when the machine has more than
    one CPU and the grid is large enough to amortize pool start-up;
    ``parallel=True`` forces it, ``parallel=False`` forces the
    sequential path.  The sequential path shares one positional index
    per structure across all queries.
    """
    plans = [
        q if isinstance(q, CountingPlan) else compile_plan(q, strategy)
        for q in queries
    ]
    jobs = [(plan, structure) for plan in plans for structure in structures]
    if parallel is None:
        parallel = default_process_count() > 1 and len(jobs) >= 8

    if parallel and len(jobs) > 1:
        import pickle

        try:
            return _count_many_parallel(plans, structures, jobs, processes)
        except (
            ImportError,
            OSError,
            ValueError,
            pickle.PicklingError,
            AttributeError,
            TypeError,
        ):
            # No subprocess support (restricted hosts) or unpicklable
            # plans/structures -- fall through to the sequential path.
            # Genuine counting errors (SignatureError, ReproError, ...)
            # propagate from either path.
            pass
    return _count_many_sequential(plans, structures, index_cache)


def _count_many_sequential(
    plans: Sequence[CountingPlan],
    structures: Sequence[Structure],
    index_cache: StructureIndexCache | None,
) -> list[list[int]]:
    if index_cache is None:
        index_cache = StructureIndexCache(capacity=max(1, len(structures)))
    any_indexed = any(plan.kind in ("pp-fpt", "ep-plus") for plan in plans)
    out: list[list[int]] = [[0] * len(structures) for _ in plans]
    # Iterate structure-major so each positional index is built once and
    # stays hot while every plan runs against it.
    for j, structure in enumerate(structures):
        index = index_cache.get(structure) if any_indexed else None
        for i, plan in enumerate(plans):
            out[i][j] = execute(plan, structure, index)
    return out


def _count_many_parallel(
    plans: Sequence[CountingPlan],
    structures: Sequence[Structure],
    jobs: list[tuple[CountingPlan, Structure]],
    processes: int | None,
) -> list[list[int]]:
    import multiprocessing

    workers = processes or default_process_count()
    workers = max(1, min(workers, len(jobs)))
    # fork shares the already-imported library with the workers; fall
    # back to the default start method where fork is unavailable.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        context = multiprocessing.get_context()
    chunksize = max(1, len(jobs) // (workers * 4))
    with context.Pool(processes=workers) as pool:
        flat = pool.map(_count_cell, jobs, chunksize=chunksize)
    out: list[list[int]] = []
    columns = len(structures)
    for i in range(len(plans)):
        out.append(list(flat[i * columns : (i + 1) * columns]))
    return out
