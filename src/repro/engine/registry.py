"""Named resident structures: the registry behind count-by-reference.

Serving workloads look like "millions of queries against a handful of
large, slowly-changing databases".  Shipping the database JSON with
every request wastes exactly the warm-start machinery the engine has
(worker-resident execution contexts, cached shard plans): the bytes
travel, get parsed, get validated, and get hashed on every call just to
rediscover state the server already holds.

:class:`StructureRegistry` is the fix: structures are **registered
once** under a client-chosen name and later requests *refer* to them.
The registry keys entries by name, remembers each entry's
process-stable :meth:`~repro.structures.structure.Structure.fingerprint`
(so a re-registration under the same name with different data is
detectable and stale derived state can be invalidated), tracks
approximate resident bytes, and enforces capacity limits -- entry count
and total bytes -- by evicting the least recently *resolved* unpinned
entries.  Pinned entries are never evicted and never dropped by
:meth:`~repro.engine.api.Engine.clear_caches`; registering more pinned
data than the configured capacity is an error (:class:`RegistryFull`),
never a silent eviction.

The registry itself is engine-agnostic bookkeeping; the interesting
wiring lives in :class:`~repro.engine.api.Engine.register_structure`,
which additionally precomputes the shard plan and broadcasts the
structure (and its shards) into every pool worker's pinned context
cache, and in :mod:`repro.serve.httpd`, which exposes the whole thing
as ``PUT/GET/DELETE /structures/<name>`` plus the
``{"structure": {"ref": "<name>"}}`` request form.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.structures.structure import Structure

#: Default maximum number of registered structures.
DEFAULT_REGISTRY_MAX_ENTRIES = 64

#: Default cap on the summed approximate resident bytes (256 MiB).
DEFAULT_REGISTRY_MAX_BYTES = 256 * 1024 * 1024

#: Longest accepted structure name.
MAX_STRUCTURE_NAME_LENGTH = 200


class UnknownStructureError(ReproError):
    """A structure reference names nothing in the registry.

    The HTTP layer maps this to ``404 Not Found``.
    """

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        super().__init__(f"no registered structure named {name!r}")


class RegistryFull(ReproError):
    """Capacity is exhausted and every resident entry is pinned."""


class VersionConflict(ReproError):
    """A delta's ``expect_version`` does not match the live entry.

    Optimistic concurrency for live updates: a client that read version
    ``n`` submits its delta with ``expect_version = n``; if another
    writer advanced (or re-registered) the name in between, the delta is
    rejected with this error instead of being applied to data it was not
    computed against.  The HTTP layer maps it to ``409 Conflict``.
    """

    def __init__(self, name: str, expected: int | None, actual: int):
        self.name = name
        self.expected = expected
        self.actual = actual
        if expected is None:
            message = (
                f"structure {name!r} changed while the delta was being "
                f"applied (now at version {actual}); retry against the "
                "current version"
            )
        else:
            message = (
                f"structure {name!r} is at version {actual}, not the "
                f"expected version {expected}"
            )
        super().__init__(message)


def validate_structure_name(name: str) -> str:
    """A registry name: non-empty printable text without ``/``."""
    if not isinstance(name, str) or not name:
        raise ReproError("structure name must be a non-empty string")
    if len(name) > MAX_STRUCTURE_NAME_LENGTH:
        raise ReproError(
            f"structure name exceeds {MAX_STRUCTURE_NAME_LENGTH} characters"
        )
    if "/" in name or any(ord(c) < 0x20 or ord(c) == 0x7F for c in name):
        raise ReproError(
            "structure name must not contain '/' or control characters"
        )
    return name


def approximate_structure_bytes(structure: Structure) -> int:
    """A deterministic estimate of a structure's resident footprint.

    Sums ``sys.getsizeof`` over the universe, the relation containers,
    and every tuple (counting each tuple's element slots, not the
    elements themselves twice).  This is an *estimate* for capacity
    accounting, not an exact heap measurement -- shared elements and the
    derived execution-context state (positional index, boundary memos,
    shard plans) are outside it -- but it is stable across runs and
    monotone in the data size, which is what an eviction policy needs.
    """
    total = sys.getsizeof(structure.universe)
    for element in structure.universe:
        total += sys.getsizeof(element)
    for tuples in structure.relations.values():
        total += sys.getsizeof(tuples)
        for t in tuples:
            total += sys.getsizeof(t)
    return total


def approximate_delta_bytes(
    parent_bytes: int, old: Structure, new: Structure, delta
) -> int:
    """Carry a resident-bytes estimate across a delta incrementally.

    :func:`approximate_structure_bytes` is a sum of independent
    per-container terms, so only the terms the delta can have changed
    need re-measuring: the universe container plus any brand-new
    elements (the universe only grows under a delta), and the touched
    relations' containers and tuples.  A one-tuple delta costs
    O(touched relation) instead of a full sweep over the structure,
    and the result agrees exactly with a fresh
    ``approximate_structure_bytes(new)``.
    """
    total = parent_bytes
    total -= sys.getsizeof(old.universe)
    total += sys.getsizeof(new.universe)
    for element in set(delta.inserted_elements()):
        if element not in old.universe:
            total += sys.getsizeof(element)
    for name in delta.relations:
        for tuples, sign in ((old.relations[name], -1), (new.relations[name], 1)):
            term = sys.getsizeof(tuples)
            for t in tuples:
                term += sys.getsizeof(t)
            total += sign * term
    return total


@dataclass
class RegistryEntry:
    """One named resident structure plus its per-entry statistics.

    ``registrations`` counts how many times this name was (re)registered,
    ``hits`` how many times a request resolved it.  ``sharded`` is the
    shard plan precomputed at registration time (when the engine did the
    registering), so ``count_sharded`` on the name never re-partitions.

    ``version`` is the monotonic live-update counter: a fresh
    registration starts at 1 and every applied delta advances it by one
    (see :meth:`StructureRegistry.advance`), while the ``fingerprint``
    follows the chained-digest lineage of
    :meth:`~repro.structures.structure.Structure.apply_delta`.  Identity
    of a named structure is the ``(fingerprint, version)`` pair: the
    fingerprint names the content lineage, the version orders writes to
    the name.
    """

    name: str
    structure: Structure
    fingerprint: tuple
    pinned: bool
    resident_bytes: int
    shard_count: int | None = None
    sharded: object | None = None  # ShardedStructure, kept untyped to avoid a cycle
    registrations: int = 1
    hits: int = 0
    version: int = 1
    registered_at: float = field(default_factory=time.time)
    #: Cluster placement at registration time: worker id -> how many of
    #: this entry's shards it holds (empty without an attached cluster).
    placements: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON-friendly view (metadata only, never the data itself)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint[2],
            "universe_size": self.fingerprint[0],
            "relations": {
                relation: count for relation, _, count in self.fingerprint[1]
            },
            "pinned": self.pinned,
            "resident_bytes": self.resident_bytes,
            "shard_count": self.shard_count,
            "registrations": self.registrations,
            "hits": self.hits,
            "version": self.version,
            "registered_at": self.registered_at,
            "placements": dict(self.placements),
        }


class StructureRegistry:
    """Named structures with LRU eviction of unpinned entries.

    Parameters
    ----------
    max_entries:
        How many structures may be resident at once.
    max_bytes:
        Cap on the summed approximate resident bytes.

    Thread-safe; recency is bumped by :meth:`resolve` / :meth:`entry`,
    so the entries evicted under pressure are the least recently
    *used*, not the least recently registered.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_REGISTRY_MAX_ENTRIES,
        max_bytes: int = DEFAULT_REGISTRY_MAX_BYTES,
    ):
        if max_entries < 1:
            raise ReproError("registry max_entries must be at least 1")
        if max_bytes < 1:
            raise ReproError("registry max_bytes must be at least 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, RegistryEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._registrations = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        structure: Structure,
        pin: bool = True,
        shard_count: int | None = None,
        sharded: object | None = None,
    ) -> tuple[RegistryEntry, RegistryEntry | None, list[RegistryEntry]]:
        """Insert (or replace) the entry for ``name``.

        Returns ``(entry, previous, evicted)``: the live entry, the
        replaced same-name entry if any (its fingerprint tells the
        caller whether worker-resident state went stale), and the
        entries evicted to make room.  Raises :class:`RegistryFull`
        when the capacity cannot be met by evicting unpinned entries.
        """
        validate_structure_name(name)
        resident_bytes = approximate_structure_bytes(structure)
        if resident_bytes > self.max_bytes:
            raise RegistryFull(
                f"structure {name!r} (~{resident_bytes} bytes) exceeds the "
                f"registry byte capacity ({self.max_bytes})"
            )
        fingerprint = structure.fingerprint()
        with self._lock:
            previous = self._entries.pop(name, None)
            entry = RegistryEntry(
                name=name,
                structure=structure,
                fingerprint=fingerprint,
                pinned=pin,
                resident_bytes=resident_bytes,
                shard_count=shard_count,
                sharded=sharded,
                registrations=(previous.registrations + 1) if previous else 1,
                hits=previous.hits if previous else 0,
            )
            try:
                evicted = self._make_room(entry)
            except RegistryFull:
                # A failed re-registration must not lose the entry it
                # would have replaced: the old data keeps serving.
                if previous is not None:
                    self._entries[name] = previous
                raise
            self._entries[name] = entry
            self._registrations += 1
            self._evictions += len(evicted)
        return entry, previous, evicted

    def _make_room(self, incoming: RegistryEntry) -> list[RegistryEntry]:
        """Evict LRU unpinned entries until ``incoming`` fits (lock held)."""
        evicted: list[RegistryEntry] = []

        def over_capacity() -> bool:
            total = sum(e.resident_bytes for e in self._entries.values())
            return (
                len(self._entries) + 1 > self.max_entries
                or total + incoming.resident_bytes > self.max_bytes
            )

        while over_capacity():
            victim_name = next(
                (n for n, e in self._entries.items() if not e.pinned), None
            )
            if victim_name is None:
                for entry in reversed(evicted):
                    self._entries[entry.name] = entry
                    self._entries.move_to_end(entry.name, last=False)
                raise RegistryFull(
                    f"cannot register {incoming.name!r}: registry capacity "
                    f"reached ({len(self._entries)}/{self.max_entries} "
                    f"entries) and every resident entry is pinned"
                )
            evicted.append(self._entries.pop(victim_name))
        return evicted

    def advance(
        self,
        name: str,
        parent: RegistryEntry,
        structure: Structure,
        sharded: object | None = None,
        expect_version: int | None = None,
        delta: object | None = None,
    ) -> RegistryEntry:
        """Atomically replace ``name``'s entry with a post-delta version.

        The caller computed ``structure`` (and optionally ``sharded``)
        from ``parent`` *outside* the registry lock; this commits the
        result only if ``parent`` is still the live entry -- otherwise a
        concurrent re-registration or delta raced the computation and
        :class:`VersionConflict` is raised (likewise when
        ``expect_version`` names a version other than the live one).
        The new entry carries the parent's pin state, shard count, and
        cumulative statistics; ``version`` advances by one and
        ``resident_bytes`` is updated for the post-delta data --
        incrementally via :func:`approximate_delta_bytes` when the
        caller passes the ``delta``, so a one-tuple update never pays a
        full sweep over the structure.  Capacity is *not* re-enforced
        here: deltas are incremental writes to already-admitted data,
        and admission control stays at :meth:`register` time.
        """
        if delta is not None:
            resident_bytes = approximate_delta_bytes(
                parent.resident_bytes, parent.structure, structure, delta
            )
        else:
            resident_bytes = approximate_structure_bytes(structure)
        fingerprint = structure.fingerprint()
        with self._lock:
            current = self._entries.get(name)
            if current is None:
                raise UnknownStructureError(name, tuple(self._entries))
            if expect_version is not None and current.version != expect_version:
                raise VersionConflict(name, expect_version, current.version)
            if current is not parent:
                raise VersionConflict(name, expect_version, current.version)
            entry = RegistryEntry(
                name=name,
                structure=structure,
                fingerprint=fingerprint,
                pinned=current.pinned,
                resident_bytes=resident_bytes,
                shard_count=current.shard_count,
                sharded=sharded,
                registrations=current.registrations,
                hits=current.hits,
                version=current.version + 1,
                registered_at=current.registered_at,
                # Placements re-key across a delta rather than reshuffle;
                # the engine overwrites this on the re-shard fallback.
                placements=dict(current.placements),
            )
            self._entries[name] = entry
            self._entries.move_to_end(name)
        return entry

    def unregister(self, name: str) -> RegistryEntry | None:
        """Remove and return the entry for ``name`` (``None`` if absent)."""
        with self._lock:
            return self._entries.pop(name, None)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """The entry for ``name``, bumping recency and its hit count."""
        with self._lock:
            found = self._entries.get(name)
            if found is None:
                self._misses += 1
                raise UnknownStructureError(name, tuple(self._entries))
            self._entries.move_to_end(name)
            found.hits += 1
            self._hits += 1
            return found

    def resolve(self, name: str) -> Structure:
        """The structure registered under ``name`` (404-mapped on miss)."""
        return self.entry(name).structure

    def peek(self, name: str) -> RegistryEntry | None:
        """The entry for ``name`` without bumping recency or hit counts."""
        with self._lock:
            return self._entries.get(name)

    def names(self) -> tuple[str, ...]:
        """The registered names, least recently used first."""
        with self._lock:
            return tuple(self._entries)

    def entries(self) -> list[RegistryEntry]:
        """A snapshot of the entries, least recently used first."""
        with self._lock:
            return list(self._entries.values())

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """The summed approximate bytes of every resident entry."""
        with self._lock:
            return sum(e.resident_bytes for e in self._entries.values())

    def stats_snapshot(self) -> tuple[int, int, int, int]:
        """``(hits, misses, registrations, evictions)``, coherently."""
        with self._lock:
            return self._hits, self._misses, self._registrations, self._evictions

    def reset_stats(self) -> None:
        """Zero the aggregate counters (per-entry stats are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._registrations = 0
            self._evictions = 0

    def stats(self) -> dict:
        """The JSON-friendly registry block served by ``/metrics``."""
        with self._lock:
            entries = list(self._entries.values())
            return {
                "entries": len(entries),
                "max_entries": self.max_entries,
                "resident_bytes": sum(e.resident_bytes for e in entries),
                "max_bytes": self.max_bytes,
                "pinned_entries": sum(1 for e in entries if e.pinned),
                "hits": self._hits,
                "misses": self._misses,
                "registrations": self._registrations,
                "evictions": self._evictions,
                "structures": [e.as_dict() for e in entries],
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StructureRegistry({len(self)}/{self.max_entries} entries, "
            f"~{self.resident_bytes} bytes)"
        )
