"""Per-structure execution contexts: the data-side state of the engine.

An :class:`ExecutionContext` bundles everything the executor derives
from one data structure -- the lazily built
:class:`~repro.structures.indexes.PositionalIndex`, the sorted domain,
a memo of per-∃-component boundary relations, and (for the sharded
path) cached :class:`~repro.structures.sharding.ShardedStructure`
partitions -- so that every plan executed against the same structure
shares the work instead of re-deriving it per call, per term, or per
grid cell.

Besides caching, the context owns the *semijoin* ∃-component
elimination: when a component's boundary is small and its atom
hypergraph is α-acyclic (checked by GYO ear removal), the boundary
relation of the component is computed by a join-tree sweep of
semijoin/project steps over the positional index instead of the
backtracking search of
:func:`repro.structures.homomorphism.enumerate_extendable_assignments`.
Both evaluators are exact; the semijoin path is asymptotically better
on acyclic components because it never enumerates boundary assignments
that die inside the component, and its results are memoized per
(component, structure), which is what makes repeated ``ep-plus``
inclusion-exclusion terms (which share ∃-components across terms)
cheap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.budget import current_budget
from repro.structures.encoding import (
    EncodedStructure,
    NumpyTableOps,
    TableOverflow,
    resolve_backend,
)
from repro.structures.homomorphism import (
    enumerate_extendable_assignments,
    has_homomorphism,
)
from repro.obs import trace as _trace
from repro.structures.indexes import EncodedPositionalIndex, PositionalIndex
from repro.structures.structure import Element, Structure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fpt_counting
    # lazily imports this module from execute_pp_plan)
    from repro.algorithms.fpt_counting import ExistsComponent
    from repro.logic.pp import PPFormula
    from repro.logic.terms import Variable
    from repro.structures.delta import StructureDelta
    from repro.structures.sharding import ShardedStructure

#: Largest boundary for which the semijoin evaluator is attempted; wider
#: boundaries fall back to backtracking (their relations are big enough
#: that materializing join tables stops paying off).
SEMIJOIN_MAX_BOUNDARY = 3

#: Safety valve: if an intermediate join table exceeds this many rows
#: the semijoin evaluator aborts and the backtracking path takes over.
SEMIJOIN_ROW_CAP = 500_000


@dataclass
class ContextStats:
    """Counters accumulated by one or more execution contexts.

    ``index_builds`` counts positional-index constructions (the
    regression target of the context refactor: at most one per distinct
    structure on the sequential paths).  ``boundary_hits`` /
    ``boundary_misses`` count lookups of memoized ∃-component boundary
    relations; ``semijoin_eliminations`` / ``backtracking_eliminations``
    count which evaluator served each miss.  ``encoded_eliminations``
    counts the misses served over the dense-int encoding (every such
    miss is *also* attributed to semijoin or backtracking, so with
    encoding on ``encoded == semijoin + backtracking`` and with it off
    ``encoded == 0``).

    A sink is shared by every context a cache creates and may be
    updated from many threads at once, so mutation goes through
    :meth:`bump` (a locked read-modify-write; a bare ``+=`` can lose
    updates under preemption) and readers take :meth:`snapshot` for a
    coherent copy; :meth:`reset` zeroes everything under the same lock.
    """

    index_builds: int = 0
    boundary_hits: int = 0
    boundary_misses: int = 0
    semijoin_eliminations: int = 0
    backtracking_eliminations: int = 0
    encoded_eliminations: int = 0
    memo_evictions: int = 0
    context_invalidations: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, by: int = 1) -> None:
        """Atomically add ``by`` to the named counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> "ContextStats":
        """A coherent copy of the counters (its own lock, unshared)."""
        with self._lock:
            return ContextStats(
                index_builds=self.index_builds,
                boundary_hits=self.boundary_hits,
                boundary_misses=self.boundary_misses,
                semijoin_eliminations=self.semijoin_eliminations,
                backtracking_eliminations=self.backtracking_eliminations,
                encoded_eliminations=self.encoded_eliminations,
                memo_evictions=self.memo_evictions,
                context_invalidations=self.context_invalidations,
            )

    def reset(self) -> None:
        """Zero every counter, atomically."""
        with self._lock:
            self.index_builds = 0
            self.boundary_hits = 0
            self.boundary_misses = 0
            self.semijoin_eliminations = 0
            self.backtracking_eliminations = 0
            self.encoded_eliminations = 0
            self.memo_evictions = 0
            self.context_invalidations = 0

    def as_dict(self) -> dict:
        return {
            "index_builds": self.index_builds,
            "boundary_hits": self.boundary_hits,
            "boundary_misses": self.boundary_misses,
            "semijoin_eliminations": self.semijoin_eliminations,
            "backtracking_eliminations": self.backtracking_eliminations,
            "encoded_eliminations": self.encoded_eliminations,
            "memo_evictions": self.memo_evictions,
            "context_invalidations": self.context_invalidations,
        }


class _SemijoinBlowup(Exception):
    """Internal: an intermediate join table exceeded the row cap."""


def _boundary_order(component: "ExistsComponent") -> tuple["Variable", ...]:
    """The fixed column order of a component's boundary relation.

    Delegates to the cached tuple on the component, so the sort happens
    once per component rather than once per elimination.
    """
    return component.boundary_order


def _component_reads(
    component: "ExistsComponent",
) -> tuple[frozenset[str], bool]:
    """The read-set of an ∃-component memo entry.

    Returns ``(relation_names, universe_sensitive)``: the relation
    symbols the component's atoms read, and whether the memoized value
    can also depend on the *size* of the data universe.  A component
    whose variables are all covered by its atoms is evaluated purely
    against those relations; one with an atom-free variable ranges that
    variable over the whole domain, so universe growth can change its
    boundary relation even when no read relation changed.
    """
    scopes = component.atom_scopes
    names = frozenset(name for name, _ in scopes)
    covered: set = set()
    for _, scope in scopes:
        covered.update(scope)
    sensitive = not set(component.structure.universe) <= covered
    return names, sensitive


def _structure_reads(structure: Structure) -> tuple[frozenset[str], bool]:
    """The read-set of a memo keyed by a query structure (pp-formula).

    Same contract as :func:`_component_reads`, derived from the formula's
    canonical structure: the relation names with at least one atom, and
    whether any variable occurs in no atom (making the memoized value
    sensitive to the data universe's size).
    """
    names = []
    covered: set = set()
    for name, tuples in structure.relations.items():
        if tuples:
            names.append(name)
            for t in tuples:
                covered.update(t)
    sensitive = not set(structure.universe) <= covered
    return frozenset(names), sensitive


class ExecutionContext:
    """The per-structure execution state shared across plan executions.

    Parameters
    ----------
    structure:
        The data structure this context serves.
    stats:
        Counter sink; contexts created by an
        :class:`~repro.engine.cache.ExecutionContextCache` share one so
        the engine can surface aggregate numbers.
    semijoin:
        Enable the semijoin ∃-component evaluator (on by default; the
        benchmark harness disables it to measure the backtracking
        baseline).
    memoize:
        Enable the per-(component, structure) boundary-relation memo.
    encoding:
        The execution backend (see
        :func:`repro.structures.encoding.resolve_backend`): ``"object"``
        (default) runs the pre-existing object-tuple evaluators;
        ``"array"``/``"numpy"`` intern the universe to dense ints and
        run the semijoin pipeline and the pp-plan DP over the encoding,
        decoding only at result boundaries.  ``None`` consults the
        ``REPRO_ENCODING`` environment variable.
    """

    __slots__ = (
        "structure",
        "stats",
        "semijoin",
        "memoize",
        "semijoin_max_boundary",
        "encoding",
        "_index",
        "_domain",
        "_encoded",
        "_encoded_index",
        "_boundary_memo",
        "_boundary_memo_encoded",
        "_base_table_memo",
        "_satisfiable_memo",
        "_sentence_memo",
        "_sharded_memo",
        "_count_memo",
    )

    def __init__(
        self,
        structure: Structure,
        stats: ContextStats | None = None,
        semijoin: bool = True,
        memoize: bool = True,
        semijoin_max_boundary: int = SEMIJOIN_MAX_BOUNDARY,
        encoding: str | None = None,
    ):
        self.structure = structure
        self.stats = stats if stats is not None else ContextStats()
        self.semijoin = semijoin
        self.memoize = memoize
        self.semijoin_max_boundary = semijoin_max_boundary
        self.encoding = resolve_backend(encoding)
        self._index: PositionalIndex | None = None
        self._domain: tuple[Element, ...] | None = None
        self._encoded: EncodedStructure | None = None
        self._encoded_index: EncodedPositionalIndex | None = None
        self._boundary_memo: dict["ExistsComponent", frozenset] = {}
        self._boundary_memo_encoded: dict["ExistsComponent", frozenset] = {}
        self._base_table_memo: dict[tuple, tuple] = {}
        self._satisfiable_memo: dict["ExistsComponent", bool] = {}
        self._sentence_memo: dict["PPFormula", bool] = {}
        self._sharded_memo: dict[tuple[int, str], "ShardedStructure"] = {}
        self._count_memo: dict["PPFormula", int] = {}

    # ------------------------------------------------------------------
    @property
    def index(self) -> PositionalIndex:
        """The positional index of the structure (built on first use)."""
        if self._index is None:
            with _trace.span(
                "context.build", universe=len(self.structure)
            ):
                self._index = PositionalIndex(self.structure)
            self.stats.bump("index_builds")
        return self._index

    @property
    def domain(self) -> tuple[Element, ...]:
        """The universe in the deterministic order the CSP layer uses."""
        if self._domain is None:
            if self._encoded is not None:
                self._domain = self._encoded.decode
            else:
                self._domain = tuple(sorted(self.structure.universe, key=repr))
        return self._domain

    # ------------------------------------------------------------------
    # Dense-int encoding
    # ------------------------------------------------------------------
    @property
    def encoding_active(self) -> bool:
        """Does this context execute over the dense-int encoding?"""
        return self.encoding != "object"

    @property
    def encoded(self) -> EncodedStructure:
        """The dense-int columnar encoding of the structure (lazily
        built under a ``context.encode`` span)."""
        if self._encoded is None:
            with _trace.span(
                "context.encode",
                universe=len(self.structure),
                tuples=self.structure.total_tuples,
                backend=self.encoding,
            ):
                self._encoded = EncodedStructure(self.structure)
        return self._encoded

    @property
    def encoded_index(self) -> EncodedPositionalIndex:
        """The int-keyed positional index over the encoding."""
        if self._encoded_index is None:
            with _trace.span(
                "context.build", universe=len(self.structure)
            ):
                self._encoded_index = EncodedPositionalIndex(self.encoded)
            self.stats.bump("index_builds")
        return self._encoded_index

    @property
    def encoded_nbytes(self) -> int:
        """Approximate resident bytes of the encoding (0 when unbuilt)."""
        return self._encoded.nbytes if self._encoded is not None else 0

    def _table_ops(self):
        """The semijoin table backend for the active encoding."""
        if self.encoding == "numpy":
            return NumpyTableOps(
                self.encoded,
                row_cap=SEMIJOIN_ROW_CAP,
                memo=self._base_table_memo,
            )
        return _PyTableOps(self.encoded_index, memo=self._base_table_memo)

    def materialize(self) -> "ExecutionContext":
        """Build the lazy data-derived state (index, domain) eagerly.

        The lazy defaults are right for throwaway contexts, but a
        context being *pinned* (worker-resident for a registered
        structure; see :mod:`repro.engine.registry`) should pay its
        materialization at pin time, off the request path, so the first
        post-pin count is as warm as every later one.  With encoding
        active this is also where the structure pays its one-time
        interning (``context.encode`` span), so registered structures
        encode at registration, not on the request path.  Idempotent;
        returns ``self`` for chaining.
        """
        if self.encoding_active:
            self.encoded  # noqa: B018 - property access interns the universe
            self.encoded_index  # noqa: B018
        else:
            self.index  # noqa: B018 - property access builds the index
        self.domain  # noqa: B018
        return self

    # ------------------------------------------------------------------
    # ∃-component elimination
    # ------------------------------------------------------------------
    def boundary_relation(self, component: "ExistsComponent") -> frozenset:
        """The relation over the component's boundary (sorted by name):
        the boundary assignments that extend to a homomorphism of the
        component into the structure.  Memoized per component.  Always
        returns *object* tuples; with encoding active they are decoded
        from :meth:`boundary_relation_encoded` at this boundary."""
        if self.memoize and component in self._boundary_memo:
            self.stats.bump("boundary_hits")
            return self._boundary_memo[component]
        if self.encoding_active and not self.structure.is_empty():
            relation = self.encoded.decode_rows(
                self.boundary_relation_encoded(component)
            )
            if self.memoize:
                self._boundary_memo[component] = relation
            return relation
        self.stats.bump("boundary_misses")
        relation = self._eliminate(component, _boundary_order(component))
        if self.memoize:
            self._boundary_memo[component] = relation
        return relation

    def boundary_relation_encoded(self, component: "ExistsComponent") -> frozenset:
        """The boundary relation as dense-int tuples (no decoding).

        The encoded pp-plan DP consumes this directly; column order is
        the same :attr:`ExistsComponent.boundary_order` the object path
        uses.  Memoized per component like :meth:`boundary_relation`.
        """
        if self.memoize and component in self._boundary_memo_encoded:
            self.stats.bump("boundary_hits")
            return self._boundary_memo_encoded[component]
        self.stats.bump("boundary_misses")
        relation = self._eliminate_encoded(component, component.boundary_order)
        if self.memoize:
            self._boundary_memo_encoded[component] = relation
        return relation

    def component_satisfiable(self, component: "ExistsComponent") -> bool:
        """Does the (boundary-free) component map into the structure?"""
        if self.memoize and component in self._satisfiable_memo:
            self.stats.bump("boundary_hits")
            return self._satisfiable_memo[component]
        self.stats.bump("boundary_misses")
        if self.encoding_active and not self.structure.is_empty():
            satisfiable = bool(self._eliminate_encoded(component, ()))
        else:
            satisfiable = bool(self._eliminate(component, ()))
        if self.memoize:
            self._satisfiable_memo[component] = satisfiable
        return satisfiable

    def count_plan(self, plan) -> int:
        """The count of a compiled pp-plan on this structure, memoized.

        Keyed by the plan's base formula (two compilations of the same
        formula count identically by exactness), so on a long-lived
        context -- above all the worker-resident ones of
        :mod:`repro.engine.pool` -- a repeated (plan, shard) evaluation
        is a dictionary lookup instead of a junction-tree run.  The
        memo follows the context's lifetime: it is dropped by
        :meth:`clear` and bounded by the worker cache's LRU eviction.
        """
        from repro.algorithms.fpt_counting import execute_pp_plan

        if not self.memoize:
            return execute_pp_plan(plan, self.structure, self)
        key = plan.base
        if key in self._count_memo:
            return self._count_memo[key]
        result = execute_pp_plan(plan, self.structure, self)
        self._count_memo[key] = result
        return result

    def sentence_holds(self, sentence: "PPFormula") -> bool:
        """Does the pp-sentence hold on the structure?  Memoized."""
        if self.memoize and sentence in self._sentence_memo:
            return self._sentence_memo[sentence]
        if self.structure.is_empty():
            holds = not sentence.variables
        elif self.encoding_active:
            # Satisfiability is invariant under the encoding isomorphism;
            # run the search over the int structure and int-keyed index.
            holds = has_homomorphism(
                sentence.structure,
                self.encoded.int_structure(),
                target_index=self.encoded_index,
            )
        else:
            holds = has_homomorphism(
                sentence.structure, self.structure, target_index=self.index
            )
        if self.memoize:
            self._sentence_memo[sentence] = holds
        return holds

    def _eliminate(
        self, component: "ExistsComponent", boundary: tuple["Variable", ...]
    ) -> frozenset:
        """Compute a boundary relation, semijoin-first with fallback."""
        if self.structure.is_empty():
            # No assignment of anything exists on the empty structure;
            # callers short-circuit earlier, this is purely defensive.
            return frozenset()
        if (
            self.semijoin
            and len(boundary) <= self.semijoin_max_boundary
            and component.structure.signature.is_subsignature_of(
                self.structure.signature
            )
        ):
            with _trace.span(
                "context.semijoin", boundary=len(boundary)
            ) as attempt:
                try:
                    relation = _semijoin_project(
                        component.structure,
                        self.index,
                        boundary,
                        scopes=component.atom_scopes,
                        ops=_PyTableOps(self.index, memo=self._base_table_memo),
                    )
                except _SemijoinBlowup:
                    relation = None
                    attempt.set("outcome", "blowup")
                else:
                    attempt.set(
                        "outcome",
                        "cyclic" if relation is None else "eliminated",
                    )
            if relation is not None:
                self.stats.bump("semijoin_eliminations")
                return relation
        self.stats.bump("backtracking_eliminations")
        allowed = set()
        for assignment in enumerate_extendable_assignments(
            component.structure, self.structure, boundary, self.index
        ):
            allowed.add(tuple(assignment[v] for v in boundary))
        return frozenset(allowed)

    def _eliminate_encoded(
        self, component: "ExistsComponent", boundary: tuple["Variable", ...]
    ) -> frozenset:
        """Compute a boundary relation as dense-int tuples.

        Same semijoin-first-with-fallback shape as :meth:`_eliminate`,
        but every table carries encoded values: base tables come from
        the columnar relations, joins hash machine ints (or run
        vectorized under the numpy backend), and the backtracking
        fallback searches the isomorphic int structure.  Every call is
        counted in ``encoded_eliminations`` on top of the per-evaluator
        attribution.
        """
        if self.structure.is_empty():
            # Callers short-circuit earlier; purely defensive, as in
            # _eliminate.
            return frozenset()
        self.stats.bump("encoded_eliminations")
        if (
            self.semijoin
            and len(boundary) <= self.semijoin_max_boundary
            and component.structure.signature.is_subsignature_of(
                self.structure.signature
            )
        ):
            with _trace.span(
                "context.semijoin",
                boundary=len(boundary),
                backend=self.encoding,
            ) as attempt:
                try:
                    relation = _semijoin_project(
                        component.structure,
                        self.encoded_index,
                        boundary,
                        scopes=component.atom_scopes,
                        ops=self._table_ops(),
                    )
                except (_SemijoinBlowup, TableOverflow):
                    relation = None
                    attempt.set("outcome", "blowup")
                else:
                    attempt.set(
                        "outcome",
                        "cyclic" if relation is None else "eliminated",
                    )
            if relation is not None:
                self.stats.bump("semijoin_eliminations")
                return relation
        self.stats.bump("backtracking_eliminations")
        allowed = set()
        for assignment in enumerate_extendable_assignments(
            component.structure,
            self.encoded.int_structure(),
            boundary,
            self.encoded_index,
        ):
            allowed.add(tuple(assignment[v] for v in boundary))
        return frozenset(allowed)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def sharded(self, shard_count: int, strategy: str = "hash") -> "ShardedStructure":
        """A cached component-aligned partition of the structure."""
        key = (shard_count, strategy)
        if key not in self._sharded_memo:
            from repro.structures.sharding import shard_structure

            self._sharded_memo[key] = shard_structure(
                self.structure, shard_count, strategy=strategy
            )
        return self._sharded_memo[key]

    # ------------------------------------------------------------------
    # Delta application: relation-scoped invalidation
    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: "StructureDelta", new_structure: Structure | None = None
    ) -> "ExecutionContext":
        """A new context for the post-delta structure, keeping every memo
        whose read-set the delta cannot have changed.

        This replaces the all-or-nothing cache drop of re-registration:
        each memo class knows which data it read -- base tables read one
        relation, ∃-boundary and sentence memos read their component's
        atom relations, count memos read their plan's atom relations --
        and only the entries whose read-set intersects the delta's
        touched relations (or that are sensitive to universe growth,
        for deltas introducing new elements) are evicted.  By the
        paper's component factorization, a tuple update touches one data
        component, so the surviving entries are exactly the factors of
        untouched components and stay valid.

        The encoding (when built) migrates incrementally via
        :meth:`EncodedStructure.apply_delta`, and cached shard plans
        migrate via :meth:`ShardedStructure.apply_delta` (dropped on a
        component merge).  The positional indexes rebuild lazily.  The
        pre-delta context is left untouched, so in-flight executions
        against the old version stay coherent; eviction counts land in
        ``stats.memo_evictions``.
        """
        if new_structure is None:
            new_structure = self.structure.apply_delta(delta)
        if new_structure is self.structure:
            return self
        fresh = ExecutionContext(
            new_structure,
            stats=self.stats,
            semijoin=self.semijoin,
            memoize=self.memoize,
            semijoin_max_boundary=self.semijoin_max_boundary,
            encoding=self.encoding,
        )
        evicted = 0
        was_empty = self.structure.is_empty()
        touched = delta.relations
        grew = len(new_structure.universe) > len(self.structure.universe)
        if not was_empty:
            for key, table in self._base_table_memo.items():
                if key[0] in touched:
                    evicted += 1
                else:
                    fresh._base_table_memo[key] = table
            for name in (
                "_boundary_memo",
                "_boundary_memo_encoded",
                "_satisfiable_memo",
            ):
                source, target = getattr(self, name), getattr(fresh, name)
                for component, value in source.items():
                    reads, sensitive = _component_reads(component)
                    if reads & touched or (grew and sensitive):
                        evicted += 1
                    else:
                        target[component] = value
            for formula, holds in self._sentence_memo.items():
                reads, sensitive = _structure_reads(formula.structure)
                if reads & touched or (grew and sensitive):
                    evicted += 1
                else:
                    fresh._sentence_memo[formula] = holds
            for base, count in self._count_memo.items():
                reads, _ = _structure_reads(base.structure)
                # Counts scale with the domain through unconstrained
                # liberal variables, so any universe growth evicts.
                if reads & touched or grew:
                    evicted += 1
                else:
                    fresh._count_memo[base] = count
        else:
            evicted += (
                len(self._base_table_memo)
                + len(self._boundary_memo)
                + len(self._boundary_memo_encoded)
                + len(self._satisfiable_memo)
                + len(self._sentence_memo)
                + len(self._count_memo)
            )
        from repro.exceptions import DeltaRoutingError

        for key, sharded in self._sharded_memo.items():
            try:
                fresh._sharded_memo[key] = sharded.apply_delta(delta)
            except DeltaRoutingError:
                evicted += 1
        if self._encoded is not None:
            fresh._encoded = self._encoded.apply_delta(delta)
            fresh._domain = fresh._encoded.decode
        if evicted:
            self.stats.bump("memo_evictions", evicted)
        return fresh

    def clear(self) -> None:
        """Drop all memoized state (the index and the encoding stay,
        they are immutable)."""
        self._boundary_memo.clear()
        self._boundary_memo_encoded.clear()
        self._base_table_memo.clear()
        self._satisfiable_memo.clear()
        self._sentence_memo.clear()
        self._sharded_memo.clear()
        self._count_memo.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionContext(|U|={len(self.structure)}, "
            f"indexed={self._index is not None}, "
            f"boundaries={len(self._boundary_memo)})"
        )


# ----------------------------------------------------------------------
# Semijoin evaluation of acyclic components
# ----------------------------------------------------------------------
def _gyo_join_tree(
    hyperedges: Sequence[frozenset],
) -> list[tuple[int, int]] | None:
    """GYO ear removal: a join tree for an α-acyclic hypergraph.

    Returns the removal sequence as ``(ear, parent)`` index pairs (ears
    first, so every edge's children precede it), or ``None`` when the
    hypergraph is cyclic.  The edge never removed is the root.
    """
    alive = dict(enumerate(hyperedges))
    removed: list[tuple[int, int]] = []
    while len(alive) > 1:
        ear = None
        for i, e in alive.items():
            shared = {
                v for v in e if any(v in alive[j] for j in alive if j != i)
            }
            parent = next(
                (j for j in alive if j != i and shared <= alive[j]), None
            )
            if parent is not None:
                ear = (i, parent)
                break
        if ear is None:
            return None
        removed.append(ear)
        del alive[ear[0]]
    return removed


def _base_table(
    index: PositionalIndex, name: str, scope: tuple
) -> tuple[tuple, set]:
    """Materialize one atom as a (columns, rows) table.

    Repeated variables in the scope become equality filters; columns are
    the distinct variables in first-occurrence order.
    """
    columns: list = []
    for variable in scope:
        if variable not in columns:
            columns.append(variable)
    rows: set[tuple] = set()
    for t in index.tuples(name):
        values: dict = {}
        consistent = True
        for variable, value in zip(scope, t):
            if values.setdefault(variable, value) != value:
                consistent = False
                break
        if consistent:
            rows.add(tuple(values[c] for c in columns))
    return tuple(columns), rows


def _join(left: tuple[tuple, set], right: tuple[tuple, set]) -> tuple[tuple, set]:
    """Hash join of two tables on their shared columns."""
    left_cols, left_rows = left
    right_cols, right_rows = right
    shared = [c for c in right_cols if c in left_cols]
    left_positions = [left_cols.index(c) for c in shared]
    right_positions = [right_cols.index(c) for c in shared]
    extra_positions = [
        i for i, c in enumerate(right_cols) if c not in left_cols
    ]
    out_cols = left_cols + tuple(right_cols[i] for i in extra_positions)
    buckets: dict[tuple, list[tuple]] = {}
    for row in right_rows:
        key = tuple(row[i] for i in right_positions)
        buckets.setdefault(key, []).append(tuple(row[i] for i in extra_positions))
    out_rows: set[tuple] = set()
    budget = current_budget()
    for row in left_rows:
        key = tuple(row[i] for i in left_positions)
        matches = buckets.get(key, ())
        if budget is not None:
            budget.charge(1 + len(matches))
        for extra in matches:
            out_rows.add(row + extra)
            if len(out_rows) > SEMIJOIN_ROW_CAP:
                raise _SemijoinBlowup
    return out_cols, out_rows


def _project(table: tuple[tuple, set], keep: tuple) -> tuple[tuple, set]:
    columns, rows = table
    positions = [columns.index(c) for c in keep]
    return keep, {tuple(row[i] for i in positions) for row in rows}


class _PyTableOps:
    """Python set-based tables for the semijoin sweep.

    Value-agnostic (works over object tuples and encoded int tuples
    alike); an optional ``memo`` dict caches base tables per
    ``(relation_name, scope)`` -- the relations are immutable and joins
    never mutate their inputs, so cached tables are safe to share
    across components and calls.
    """

    __slots__ = ("index", "memo")

    def __init__(self, index, memo: dict | None = None):
        self.index = index
        self.memo = memo

    def base_table(self, name: str, scope: tuple) -> tuple[tuple, set]:
        key = (name, scope)
        if self.memo is not None and key in self.memo:
            return self.memo[key]
        table = _base_table(self.index, name, scope)
        if self.memo is not None:
            self.memo[key] = table
        return table

    def is_empty(self, table: tuple[tuple, set]) -> bool:
        return not table[1]

    def join(self, left, right):
        return _join(left, right)

    def project(self, table, keep):
        return _project(table, keep)

    def finalize(self, table, boundary) -> frozenset:
        return frozenset(_project(table, tuple(boundary))[1])


def _semijoin_project(
    source: Structure,
    index,
    boundary: tuple,
    scopes: tuple | None = None,
    ops=None,
) -> frozenset | None:
    """The projection onto ``boundary`` of the join of ``source``'s atoms
    against the indexed data, or ``None`` when the atom hypergraph is
    cyclic (the caller falls back to backtracking).

    This is the Yannakakis-style evaluation specialized to small
    projections: process the GYO join tree leaves-first, at each node
    joining the already-reduced child tables into the node's base table
    and projecting onto the boundary columns seen so far plus the
    separator with the parent.  For an α-acyclic hypergraph this yields
    exactly the set of boundary assignments that extend to a
    homomorphism of ``source`` into the data.  With an empty boundary
    the result is ``{()}`` or ``{}``: a satisfiability bit.

    Variables of ``source`` occurring in no atom are unconstrained and
    do not affect the projection (the data universe is non-empty on
    every path that reaches this function), matching the backtracking
    semantics.

    ``scopes`` is the component's atom list in the canonical repr-sorted
    order; callers holding a compiled component pass its cached
    :attr:`~repro.algorithms.fpt_counting.ExistsComponent.atom_scopes`
    so the sort is paid once per component instead of per call.  ``ops``
    selects the table backend (python sets by default; the encoded
    paths pass memoizing python ops or vectorized numpy ops).
    """
    if scopes is None:
        scopes = tuple(
            sorted(
                (
                    (name, t)
                    for name, tuples in source.relations.items()
                    for t in tuples
                ),
                key=repr,
            )
        )
    if not scopes:
        return None
    if ops is None:
        ops = _PyTableOps(index)
    hyperedges = [frozenset(t) for _, t in scopes]
    covered = frozenset().union(*hyperedges)
    if not frozenset(boundary) <= covered:
        # A boundary variable outside every atom never reaches the join
        # tables; leave such (degenerate) components to backtracking.
        return None
    tree = _gyo_join_tree(hyperedges)
    if tree is None:
        return None
    boundary_set = frozenset(boundary)
    tables = {
        i: ops.base_table(name, t) for i, (name, t) in enumerate(scopes)
    }
    pending: dict[int, list] = {}
    root = len(scopes) - 1
    if tree:
        removed_ids = {i for i, _ in tree}
        root = next(i for i in range(len(scopes)) if i not in removed_ids)
    for ear, parent in tree:
        table = tables.pop(ear)
        for child in pending.pop(ear, ()):
            table = ops.join(table, child)
        keep = tuple(
            c
            for c in table[0]
            if c in boundary_set or c in hyperedges[parent]
        )
        reduced = ops.project(table, keep)
        if ops.is_empty(reduced):
            return frozenset()
        pending.setdefault(parent, []).append(reduced)
    table = tables.pop(root)
    for child in pending.pop(root, ()):
        table = ops.join(table, child)
    return ops.finalize(table, boundary)
