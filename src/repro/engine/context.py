"""Per-structure execution contexts: the data-side state of the engine.

An :class:`ExecutionContext` bundles everything the executor derives
from one data structure -- the lazily built
:class:`~repro.structures.indexes.PositionalIndex`, the sorted domain,
a memo of per-∃-component boundary relations, and (for the sharded
path) cached :class:`~repro.structures.sharding.ShardedStructure`
partitions -- so that every plan executed against the same structure
shares the work instead of re-deriving it per call, per term, or per
grid cell.

Besides caching, the context owns the *semijoin* ∃-component
elimination: when a component's boundary is small and its atom
hypergraph is α-acyclic (checked by GYO ear removal), the boundary
relation of the component is computed by a join-tree sweep of
semijoin/project steps over the positional index instead of the
backtracking search of
:func:`repro.structures.homomorphism.enumerate_extendable_assignments`.
Both evaluators are exact; the semijoin path is asymptotically better
on acyclic components because it never enumerates boundary assignments
that die inside the component, and its results are memoized per
(component, structure), which is what makes repeated ``ep-plus``
inclusion-exclusion terms (which share ∃-components across terms)
cheap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.structures.homomorphism import (
    enumerate_extendable_assignments,
    has_homomorphism,
)
from repro.obs import trace as _trace
from repro.structures.indexes import PositionalIndex
from repro.structures.structure import Element, Structure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fpt_counting
    # lazily imports this module from execute_pp_plan)
    from repro.algorithms.fpt_counting import ExistsComponent
    from repro.logic.pp import PPFormula
    from repro.logic.terms import Variable
    from repro.structures.sharding import ShardedStructure

#: Largest boundary for which the semijoin evaluator is attempted; wider
#: boundaries fall back to backtracking (their relations are big enough
#: that materializing join tables stops paying off).
SEMIJOIN_MAX_BOUNDARY = 3

#: Safety valve: if an intermediate join table exceeds this many rows
#: the semijoin evaluator aborts and the backtracking path takes over.
SEMIJOIN_ROW_CAP = 500_000


@dataclass
class ContextStats:
    """Counters accumulated by one or more execution contexts.

    ``index_builds`` counts positional-index constructions (the
    regression target of the context refactor: at most one per distinct
    structure on the sequential paths).  ``boundary_hits`` /
    ``boundary_misses`` count lookups of memoized ∃-component boundary
    relations; ``semijoin_eliminations`` / ``backtracking_eliminations``
    count which evaluator served each miss.

    A sink is shared by every context a cache creates and may be
    updated from many threads at once, so mutation goes through
    :meth:`bump` (a locked read-modify-write; a bare ``+=`` can lose
    updates under preemption) and readers take :meth:`snapshot` for a
    coherent copy; :meth:`reset` zeroes everything under the same lock.
    """

    index_builds: int = 0
    boundary_hits: int = 0
    boundary_misses: int = 0
    semijoin_eliminations: int = 0
    backtracking_eliminations: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, by: int = 1) -> None:
        """Atomically add ``by`` to the named counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> "ContextStats":
        """A coherent copy of the counters (its own lock, unshared)."""
        with self._lock:
            return ContextStats(
                index_builds=self.index_builds,
                boundary_hits=self.boundary_hits,
                boundary_misses=self.boundary_misses,
                semijoin_eliminations=self.semijoin_eliminations,
                backtracking_eliminations=self.backtracking_eliminations,
            )

    def reset(self) -> None:
        """Zero every counter, atomically."""
        with self._lock:
            self.index_builds = 0
            self.boundary_hits = 0
            self.boundary_misses = 0
            self.semijoin_eliminations = 0
            self.backtracking_eliminations = 0

    def as_dict(self) -> dict:
        return {
            "index_builds": self.index_builds,
            "boundary_hits": self.boundary_hits,
            "boundary_misses": self.boundary_misses,
            "semijoin_eliminations": self.semijoin_eliminations,
            "backtracking_eliminations": self.backtracking_eliminations,
        }


class _SemijoinBlowup(Exception):
    """Internal: an intermediate join table exceeded the row cap."""


def _boundary_order(component: "ExistsComponent") -> tuple["Variable", ...]:
    """The fixed column order of a component's boundary relation."""
    return tuple(sorted(component.boundary, key=lambda v: v.name))


class ExecutionContext:
    """The per-structure execution state shared across plan executions.

    Parameters
    ----------
    structure:
        The data structure this context serves.
    stats:
        Counter sink; contexts created by an
        :class:`~repro.engine.cache.ExecutionContextCache` share one so
        the engine can surface aggregate numbers.
    semijoin:
        Enable the semijoin ∃-component evaluator (on by default; the
        benchmark harness disables it to measure the backtracking
        baseline).
    memoize:
        Enable the per-(component, structure) boundary-relation memo.
    """

    __slots__ = (
        "structure",
        "stats",
        "semijoin",
        "memoize",
        "semijoin_max_boundary",
        "_index",
        "_domain",
        "_boundary_memo",
        "_satisfiable_memo",
        "_sentence_memo",
        "_sharded_memo",
        "_count_memo",
    )

    def __init__(
        self,
        structure: Structure,
        stats: ContextStats | None = None,
        semijoin: bool = True,
        memoize: bool = True,
        semijoin_max_boundary: int = SEMIJOIN_MAX_BOUNDARY,
    ):
        self.structure = structure
        self.stats = stats if stats is not None else ContextStats()
        self.semijoin = semijoin
        self.memoize = memoize
        self.semijoin_max_boundary = semijoin_max_boundary
        self._index: PositionalIndex | None = None
        self._domain: tuple[Element, ...] | None = None
        self._boundary_memo: dict["ExistsComponent", frozenset] = {}
        self._satisfiable_memo: dict["ExistsComponent", bool] = {}
        self._sentence_memo: dict["PPFormula", bool] = {}
        self._sharded_memo: dict[tuple[int, str], "ShardedStructure"] = {}
        self._count_memo: dict["PPFormula", int] = {}

    # ------------------------------------------------------------------
    @property
    def index(self) -> PositionalIndex:
        """The positional index of the structure (built on first use)."""
        if self._index is None:
            with _trace.span(
                "context.build", universe=len(self.structure)
            ):
                self._index = PositionalIndex(self.structure)
            self.stats.bump("index_builds")
        return self._index

    @property
    def domain(self) -> tuple[Element, ...]:
        """The universe in the deterministic order the CSP layer uses."""
        if self._domain is None:
            self._domain = tuple(sorted(self.structure.universe, key=repr))
        return self._domain

    def materialize(self) -> "ExecutionContext":
        """Build the lazy data-derived state (index, domain) eagerly.

        The lazy defaults are right for throwaway contexts, but a
        context being *pinned* (worker-resident for a registered
        structure; see :mod:`repro.engine.registry`) should pay its
        materialization at pin time, off the request path, so the first
        post-pin count is as warm as every later one.  Idempotent;
        returns ``self`` for chaining.
        """
        self.index  # noqa: B018 - property access builds the index
        self.domain  # noqa: B018
        return self

    # ------------------------------------------------------------------
    # ∃-component elimination
    # ------------------------------------------------------------------
    def boundary_relation(self, component: "ExistsComponent") -> frozenset:
        """The relation over the component's boundary (sorted by name):
        the boundary assignments that extend to a homomorphism of the
        component into the structure.  Memoized per component."""
        if self.memoize and component in self._boundary_memo:
            self.stats.bump("boundary_hits")
            return self._boundary_memo[component]
        self.stats.bump("boundary_misses")
        relation = self._eliminate(component, _boundary_order(component))
        if self.memoize:
            self._boundary_memo[component] = relation
        return relation

    def component_satisfiable(self, component: "ExistsComponent") -> bool:
        """Does the (boundary-free) component map into the structure?"""
        if self.memoize and component in self._satisfiable_memo:
            self.stats.bump("boundary_hits")
            return self._satisfiable_memo[component]
        self.stats.bump("boundary_misses")
        satisfiable = bool(self._eliminate(component, ()))
        if self.memoize:
            self._satisfiable_memo[component] = satisfiable
        return satisfiable

    def count_plan(self, plan) -> int:
        """The count of a compiled pp-plan on this structure, memoized.

        Keyed by the plan's base formula (two compilations of the same
        formula count identically by exactness), so on a long-lived
        context -- above all the worker-resident ones of
        :mod:`repro.engine.pool` -- a repeated (plan, shard) evaluation
        is a dictionary lookup instead of a junction-tree run.  The
        memo follows the context's lifetime: it is dropped by
        :meth:`clear` and bounded by the worker cache's LRU eviction.
        """
        from repro.algorithms.fpt_counting import execute_pp_plan

        if not self.memoize:
            return execute_pp_plan(plan, self.structure, self)
        key = plan.base
        if key in self._count_memo:
            return self._count_memo[key]
        result = execute_pp_plan(plan, self.structure, self)
        self._count_memo[key] = result
        return result

    def sentence_holds(self, sentence: "PPFormula") -> bool:
        """Does the pp-sentence hold on the structure?  Memoized."""
        if self.memoize and sentence in self._sentence_memo:
            return self._sentence_memo[sentence]
        if self.structure.is_empty():
            holds = not sentence.variables
        else:
            holds = has_homomorphism(
                sentence.structure, self.structure, target_index=self.index
            )
        if self.memoize:
            self._sentence_memo[sentence] = holds
        return holds

    def _eliminate(
        self, component: "ExistsComponent", boundary: tuple["Variable", ...]
    ) -> frozenset:
        """Compute a boundary relation, semijoin-first with fallback."""
        if self.structure.is_empty():
            # No assignment of anything exists on the empty structure;
            # callers short-circuit earlier, this is purely defensive.
            return frozenset()
        if (
            self.semijoin
            and len(boundary) <= self.semijoin_max_boundary
            and component.structure.signature.is_subsignature_of(
                self.structure.signature
            )
        ):
            with _trace.span(
                "context.semijoin", boundary=len(boundary)
            ) as attempt:
                try:
                    relation = _semijoin_project(
                        component.structure, self.index, boundary
                    )
                except _SemijoinBlowup:
                    relation = None
                    attempt.set("outcome", "blowup")
                else:
                    attempt.set(
                        "outcome",
                        "cyclic" if relation is None else "eliminated",
                    )
            if relation is not None:
                self.stats.bump("semijoin_eliminations")
                return relation
        self.stats.bump("backtracking_eliminations")
        allowed = set()
        for assignment in enumerate_extendable_assignments(
            component.structure, self.structure, boundary, self.index
        ):
            allowed.add(tuple(assignment[v] for v in boundary))
        return frozenset(allowed)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def sharded(self, shard_count: int, strategy: str = "hash") -> "ShardedStructure":
        """A cached component-aligned partition of the structure."""
        key = (shard_count, strategy)
        if key not in self._sharded_memo:
            from repro.structures.sharding import shard_structure

            self._sharded_memo[key] = shard_structure(
                self.structure, shard_count, strategy=strategy
            )
        return self._sharded_memo[key]

    def clear(self) -> None:
        """Drop all memoized state (the index stays, it is immutable)."""
        self._boundary_memo.clear()
        self._satisfiable_memo.clear()
        self._sentence_memo.clear()
        self._sharded_memo.clear()
        self._count_memo.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionContext(|U|={len(self.structure)}, "
            f"indexed={self._index is not None}, "
            f"boundaries={len(self._boundary_memo)})"
        )


# ----------------------------------------------------------------------
# Semijoin evaluation of acyclic components
# ----------------------------------------------------------------------
def _gyo_join_tree(
    hyperedges: Sequence[frozenset],
) -> list[tuple[int, int]] | None:
    """GYO ear removal: a join tree for an α-acyclic hypergraph.

    Returns the removal sequence as ``(ear, parent)`` index pairs (ears
    first, so every edge's children precede it), or ``None`` when the
    hypergraph is cyclic.  The edge never removed is the root.
    """
    alive = dict(enumerate(hyperedges))
    removed: list[tuple[int, int]] = []
    while len(alive) > 1:
        ear = None
        for i, e in alive.items():
            shared = {
                v for v in e if any(v in alive[j] for j in alive if j != i)
            }
            parent = next(
                (j for j in alive if j != i and shared <= alive[j]), None
            )
            if parent is not None:
                ear = (i, parent)
                break
        if ear is None:
            return None
        removed.append(ear)
        del alive[ear[0]]
    return removed


def _base_table(
    index: PositionalIndex, name: str, scope: tuple
) -> tuple[tuple, set]:
    """Materialize one atom as a (columns, rows) table.

    Repeated variables in the scope become equality filters; columns are
    the distinct variables in first-occurrence order.
    """
    columns: list = []
    for variable in scope:
        if variable not in columns:
            columns.append(variable)
    rows: set[tuple] = set()
    for t in index.tuples(name):
        values: dict = {}
        consistent = True
        for variable, value in zip(scope, t):
            if values.setdefault(variable, value) != value:
                consistent = False
                break
        if consistent:
            rows.add(tuple(values[c] for c in columns))
    return tuple(columns), rows


def _join(left: tuple[tuple, set], right: tuple[tuple, set]) -> tuple[tuple, set]:
    """Hash join of two tables on their shared columns."""
    left_cols, left_rows = left
    right_cols, right_rows = right
    shared = [c for c in right_cols if c in left_cols]
    left_positions = [left_cols.index(c) for c in shared]
    right_positions = [right_cols.index(c) for c in shared]
    extra_positions = [
        i for i, c in enumerate(right_cols) if c not in left_cols
    ]
    out_cols = left_cols + tuple(right_cols[i] for i in extra_positions)
    buckets: dict[tuple, list[tuple]] = {}
    for row in right_rows:
        key = tuple(row[i] for i in right_positions)
        buckets.setdefault(key, []).append(tuple(row[i] for i in extra_positions))
    out_rows: set[tuple] = set()
    for row in left_rows:
        key = tuple(row[i] for i in left_positions)
        for extra in buckets.get(key, ()):
            out_rows.add(row + extra)
            if len(out_rows) > SEMIJOIN_ROW_CAP:
                raise _SemijoinBlowup
    return out_cols, out_rows


def _project(table: tuple[tuple, set], keep: tuple) -> tuple[tuple, set]:
    columns, rows = table
    positions = [columns.index(c) for c in keep]
    return keep, {tuple(row[i] for i in positions) for row in rows}


def _semijoin_project(
    source: Structure, index: PositionalIndex, boundary: tuple
) -> frozenset | None:
    """The projection onto ``boundary`` of the join of ``source``'s atoms
    against the indexed data, or ``None`` when the atom hypergraph is
    cyclic (the caller falls back to backtracking).

    This is the Yannakakis-style evaluation specialized to small
    projections: process the GYO join tree leaves-first, at each node
    joining the already-reduced child tables into the node's base table
    and projecting onto the boundary columns seen so far plus the
    separator with the parent.  For an α-acyclic hypergraph this yields
    exactly the set of boundary assignments that extend to a
    homomorphism of ``source`` into the data.  With an empty boundary
    the result is ``{()}`` or ``{}``: a satisfiability bit.

    Variables of ``source`` occurring in no atom are unconstrained and
    do not affect the projection (the data universe is non-empty on
    every path that reaches this function), matching the backtracking
    semantics.
    """
    scopes = sorted(
        (
            (name, t)
            for name, tuples in source.relations.items()
            for t in tuples
        ),
        key=repr,
    )
    if not scopes:
        return None
    hyperedges = [frozenset(t) for _, t in scopes]
    covered = frozenset().union(*hyperedges)
    if not frozenset(boundary) <= covered:
        # A boundary variable outside every atom never reaches the join
        # tables; leave such (degenerate) components to backtracking.
        return None
    tree = _gyo_join_tree(hyperedges)
    if tree is None:
        return None
    boundary_set = frozenset(boundary)
    tables = {
        i: _base_table(index, name, t) for i, (name, t) in enumerate(scopes)
    }
    pending: dict[int, list[tuple[tuple, set]]] = {}
    root = len(scopes) - 1
    if tree:
        removed_ids = {i for i, _ in tree}
        root = next(i for i in range(len(scopes)) if i not in removed_ids)
    for ear, parent in tree:
        table = tables.pop(ear)
        for child in pending.pop(ear, ()):
            table = _join(table, child)
        keep = tuple(
            c
            for c in table[0]
            if c in boundary_set or c in hyperedges[parent]
        )
        reduced = _project(table, keep)
        if not reduced[1]:
            return frozenset()
        pending.setdefault(parent, []).append(reduced)
    table = tables.pop(root)
    for child in pending.pop(root, ()):
        table = _join(table, child)
    return frozenset(_project(table, tuple(boundary))[1])
