"""Long-lived worker pools with worker-resident execution-context caches.

The parallel paths of :mod:`repro.engine.executor` used to create a
throwaway :mod:`multiprocessing` pool per call and rebuild every
:class:`~repro.engine.context.ExecutionContext` (positional index,
boundary-relation memos) inside every job.  :class:`WorkerPool` replaces
both halves of that waste:

* the pool is created **once** (lazily, on first use) and reused across
  calls -- an :class:`~repro.engine.api.Engine` keeps one for its whole
  lifetime, so repeated ``count_many`` / ``count_sharded`` calls pay the
  fork cost once;
* every worker process holds a small **resident cache** of execution
  contexts keyed by the cheap, process-stable
  :meth:`~repro.structures.structure.Structure.fingerprint`, so a job
  that lands on a worker that has already served the same data reuses
  the built index and the memoized ∃-component boundary relations
  instead of re-deriving them.

Jobs still carry the (picklable) structure so a cold worker can build
the context itself; the fingerprint is what turns "same data again"
into a cache hit without relying on object identity across processes.
Each task result reports whether the worker's context cache hit, which
the pool aggregates into :attr:`WorkerPool.worker_context_hits` /
``worker_context_misses`` -- the engine surfaces them as stats.

Error handling is split in two, which is what lets genuine counting
bugs propagate instead of being masked by the sequential fallback:

* exceptions raised *inside* a worker task are wrapped in a
  ``_TaskFailure`` sentinel and re-raised parent-side as
  :class:`WorkerTaskError` (carrying the original exception);
* pool-*setup* problems (no subprocess support, unpicklable jobs) raise
  their native ``ImportError`` / ``OSError`` / pickling errors from
  ``map`` itself, which the executor treats as "fall back to the
  sequential path".
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.structures.structure import Structure

#: Default number of execution contexts each worker keeps resident.
DEFAULT_WORKER_CONTEXT_CAPACITY = 8


def default_process_count() -> int:
    """The pool size used when ``processes`` is not given."""
    return max(1, (os.cpu_count() or 1))


class WorkerTaskError(ReproError):
    """An exception escaped a task running inside a pool worker.

    ``original`` is the worker's exception (unpickled parent-side); the
    executor re-raises it to the caller, so a ``ValueError`` raised in a
    worker surfaces as a ``ValueError``, never as a silent sequential
    re-run.
    """

    def __init__(self, original: BaseException):
        self.original = original
        super().__init__(
            f"pool worker raised {type(original).__name__}: {original}"
        )


@dataclass
class _TaskOk:
    """A successful worker result.

    ``context_hit`` is ``True``/``False`` when the task consulted the
    worker-resident context cache, ``None`` when it needed no context.
    """

    value: object
    context_hit: bool | None = None


@dataclass
class _TaskFailure:
    """Sentinel carrying an exception raised inside a worker task."""

    exception: BaseException


def _wrap_failure(exc: BaseException) -> _TaskFailure:
    import pickle

    try:
        pickle.dumps(exc)
    except Exception:
        # The exception itself cannot cross the process boundary; ship a
        # faithful description instead of crashing the result channel.
        return _TaskFailure(ReproError(f"{type(exc).__name__}: {exc}"))
    return _TaskFailure(exc)


# ----------------------------------------------------------------------
# Worker-side resident state
# ----------------------------------------------------------------------
_worker_contexts: OrderedDict | None = None
_worker_capacity: int = DEFAULT_WORKER_CONTEXT_CAPACITY


def _init_worker(capacity: int) -> None:
    """Pool initializer: give this worker an empty resident cache."""
    global _worker_contexts, _worker_capacity
    _worker_contexts = OrderedDict()
    _worker_capacity = max(1, capacity)


def _resident_context(structure: Structure):
    """``(context, hit)`` from this worker's fingerprint-keyed cache."""
    global _worker_contexts
    from repro.engine.context import ExecutionContext

    if _worker_contexts is None:
        # Running without the initializer (e.g. the in-process tests
        # call the task functions directly): behave as a cold cache.
        _worker_contexts = OrderedDict()
    key = structure.fingerprint()
    context = _worker_contexts.get(key)
    if context is not None:
        _worker_contexts.move_to_end(key)
        return context, True
    context = ExecutionContext(structure)
    _worker_contexts[key] = context
    while len(_worker_contexts) > _worker_capacity:
        _worker_contexts.popitem(last=False)
    return context, False


# ----------------------------------------------------------------------
# The task functions shipped to workers
# ----------------------------------------------------------------------
def count_block_task(job) -> _TaskOk | _TaskFailure:
    """Run a block of plans against one structure.

    ``job = (plans, structure, use_context)``; with ``use_context`` the
    block shares one resident execution context (and the executions run
    against the resident context's structure, so index, memos, and data
    stay coherent on a fingerprint hit).
    """
    plans, structure, use_context = job
    try:
        from repro.engine.executor import execute

        context = None
        hit: bool | None = None
        if use_context:
            context, hit = _resident_context(structure)
            structure = context.structure
        return _TaskOk(
            [execute(plan, structure, context) for plan in plans], hit
        )
    except Exception as exc:
        return _wrap_failure(exc)


def shard_task(job) -> _TaskOk | _TaskFailure:
    """Evaluate every shard unit on one shard through one resident context.

    ``job = (units, shard)``: the sharded executor's per-shard work,
    with the context (index + boundary memos) resident across calls, so
    a repeated ``count_sharded`` on the same data re-executes against
    warm memos instead of rebuilding them.
    """
    units, shard = job
    try:
        context, hit = _resident_context(shard)
        out: list = []
        for unit in units:
            if unit.kind == "count":
                assert unit.plan is not None
                out.append(context.count_plan(unit.plan))
            else:
                assert unit.sentence is not None
                out.append(context.sentence_holds(unit.sentence))
        return _TaskOk(out, hit)
    except Exception as exc:
        return _wrap_failure(exc)


# ----------------------------------------------------------------------
# The parent-side pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A reusable multiprocessing pool with warm worker-side caches.

    Parameters
    ----------
    processes:
        Pool size (default: one worker per CPU).
    context_capacity:
        How many execution contexts each worker keeps resident.

    The underlying :mod:`multiprocessing` pool is created lazily on the
    first :meth:`map`, so constructing a ``WorkerPool`` (an
    :class:`~repro.engine.api.Engine` does it eagerly) costs nothing
    until a parallel path actually runs.  Usable as a context manager;
    :meth:`close` shuts the workers down.
    """

    def __init__(
        self,
        processes: int | None = None,
        context_capacity: int = DEFAULT_WORKER_CONTEXT_CAPACITY,
    ):
        if processes is not None and processes < 1:
            raise ReproError("worker pool needs at least one process")
        self.processes = processes or default_process_count()
        self.context_capacity = context_capacity
        self._pool = None
        self._lock = threading.Lock()
        self.worker_context_hits = 0
        self.worker_context_misses = 0

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing

                # fork shares the already-imported library with the
                # workers; fall back to the default start method where
                # fork is unavailable.
                try:
                    mp_context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    mp_context = multiprocessing.get_context()
                self._pool = mp_context.Pool(
                    processes=self.processes,
                    initializer=_init_worker,
                    initargs=(self.context_capacity,),
                )
            return self._pool

    @property
    def started(self) -> bool:
        """Whether the underlying process pool has been created."""
        return self._pool is not None

    def map(self, task, jobs) -> list:
        """Run ``task`` over ``jobs`` in the pool and unwrap the results.

        Raises :class:`WorkerTaskError` when a task failed inside a
        worker; lets pool-setup and job-pickling errors (``OSError``,
        pickling errors, ...) propagate as themselves, which is the
        signal the executor's sequential fallback keys on.
        """
        raw = self._ensure_pool().map(task, list(jobs))
        values = []
        hits = misses = 0
        for item in raw:
            if isinstance(item, _TaskFailure):
                raise WorkerTaskError(item.exception)
            values.append(item.value)
            if item.context_hit is True:
                hits += 1
            elif item.context_hit is False:
                misses += 1
        with self._lock:
            self.worker_context_hits += hits
            self.worker_context_misses += misses
        return values

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> tuple[int, int]:
        """``(worker_context_hits, worker_context_misses)``, coherently.

        :meth:`map` bumps both counters under ``_lock``; reading the
        attributes directly can interleave with that (or with
        :meth:`reset_stats`) and pair a fresh hit count with a stale
        miss count.  The engine's ``stats()`` goes through here.
        """
        with self._lock:
            return self.worker_context_hits, self.worker_context_misses

    def reset_stats(self) -> None:
        """Zero the worker-context counters under the pool lock."""
        with self._lock:
            self.worker_context_hits = 0
            self.worker_context_misses = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the current workers down.

        The ``WorkerPool`` object stays usable: a later :meth:`map`
        starts a fresh (cold) set of workers, which is what lets an
        :class:`~repro.engine.api.Engine` free its pool resources
        without becoming unusable.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        """Kill the workers immediately."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.terminate()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self.started else "idle"
        return (
            f"WorkerPool(processes={self.processes}, {state}, "
            f"context_hits={self.worker_context_hits})"
        )
