"""Long-lived worker pools with worker-resident execution-context caches.

The parallel paths of :mod:`repro.engine.executor` used to create a
throwaway :mod:`multiprocessing` pool per call and rebuild every
:class:`~repro.engine.context.ExecutionContext` (positional index,
boundary-relation memos) inside every job.  :class:`WorkerPool` replaces
both halves of that waste:

* the pool is created **once** (lazily, on first use) and reused across
  calls -- an :class:`~repro.engine.api.Engine` keeps one for its whole
  lifetime, so repeated ``count_many`` / ``count_sharded`` calls pay the
  fork cost once;
* every worker process holds a small **resident cache** of execution
  contexts keyed by the cheap, process-stable
  :meth:`~repro.structures.structure.Structure.fingerprint`, so a job
  that lands on a worker that has already served the same data reuses
  the built index and the memoized ∃-component boundary relations
  instead of re-deriving them.

Jobs still carry the (picklable) structure so a cold worker can build
the context itself; the fingerprint is what turns "same data again"
into a cache hit without relying on object identity across processes.
Each task result reports whether the worker's context cache hit, which
the pool aggregates into :attr:`WorkerPool.worker_context_hits` /
``worker_context_misses`` -- the engine surfaces them as stats.

On top of the incidental LRU residency there is **guaranteed**
residency: :meth:`WorkerPool.pin_structures` broadcasts a build-and-pin
task to *every* worker (synchronized through a barrier so no worker can
serve two broadcast jobs), and pinned contexts live outside the LRU --
they are never evicted by capacity pressure and survive until
explicitly unpinned.  The pin set is also recorded parent-side, so a
pool that is closed and lazily restarted re-pins everything in its
worker initializer.  This is what makes a registered structure's
residency a contract instead of a cache heuristic: see
:mod:`repro.engine.registry`.

Error handling is split in two, which is what lets genuine counting
bugs propagate instead of being masked by the sequential fallback:

* exceptions raised *inside* a worker task are wrapped in a
  ``_TaskFailure`` sentinel and re-raised parent-side as
  :class:`WorkerTaskError` (carrying the original exception);
* pool-*setup* problems (no subprocess support, unpicklable jobs) raise
  their native ``ImportError`` / ``OSError`` / pickling errors from
  ``map`` itself, which the executor treats as "fall back to the
  sequential path".
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ReproError
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.structures.structure import Structure

_log = get_logger("engine.pool")

#: Default number of execution contexts each worker keeps resident.
DEFAULT_WORKER_CONTEXT_CAPACITY = 8


def default_process_count() -> int:
    """The pool size used when ``processes`` is not given."""
    return max(1, (os.cpu_count() or 1))


class WorkerTaskError(ReproError):
    """An exception escaped a task running inside a pool worker.

    ``original`` is the worker's exception (unpickled parent-side); the
    executor re-raises it to the caller, so a ``ValueError`` raised in a
    worker surfaces as a ``ValueError``, never as a silent sequential
    re-run.
    """

    def __init__(self, original: BaseException):
        self.original = original
        super().__init__(
            f"pool worker raised {type(original).__name__}: {original}"
        )


@dataclass
class _TaskOk:
    """A successful worker result.

    ``context_hit`` is ``True``/``False`` when the task consulted the
    worker-resident context cache, ``None`` when it needed no context.
    ``spans`` carries the worker-recorded trace spans (serialized
    dicts) when tracing was on in the worker, else ``None``; the
    parent re-parents them into the caller's trace.
    """

    value: object
    context_hit: bool | None = None
    spans: list | None = None


@dataclass
class _TaskFailure:
    """Sentinel carrying an exception raised inside a worker task.

    ``spans`` still carries the worker's recorded trace up to (and
    including) the failure, so a worker exception produces a complete,
    error-annotated trace instead of a truncated one.
    """

    exception: BaseException
    spans: list | None = None


def _wrap_failure(exc: BaseException) -> _TaskFailure:
    import pickle

    try:
        pickle.dumps(exc)
    except Exception:
        # The exception itself cannot cross the process boundary; ship a
        # faithful description instead of crashing the result channel.
        return _TaskFailure(ReproError(f"{type(exc).__name__}: {exc}"))
    return _TaskFailure(exc)


# ----------------------------------------------------------------------
# Worker-side resident state
# ----------------------------------------------------------------------
_worker_contexts: OrderedDict | None = None
_worker_capacity: int = DEFAULT_WORKER_CONTEXT_CAPACITY
#: Pinned contexts, outside the LRU: fingerprint -> ExecutionContext.
_worker_pinned: dict | None = None
#: The encoding backend every context built in this worker uses.
_worker_encoding: str | None = None


def _init_worker(
    capacity: int,
    pinned: tuple[Structure, ...] = (),
    encoding: str | None = None,
) -> None:
    """Pool initializer: empty LRU plus eagerly built pinned contexts.

    ``pinned`` is the parent-side pin set at pool (re)creation time, so
    a pool that was closed and lazily restarted comes back with every
    registered structure's context already materialized -- pinning
    survives pool restarts, not just individual calls.  ``encoding`` is
    the owning engine's resolved backend; every context this worker
    builds (pinned here or lazily in :func:`_resident_context`) uses
    it, so a pinned structure's one-time materialization cost covers
    the integer encoding too.
    """
    global _worker_contexts, _worker_capacity, _worker_pinned
    global _worker_encoding
    from repro.engine.context import ExecutionContext

    _worker_contexts = OrderedDict()
    _worker_capacity = max(1, capacity)
    _worker_pinned = {}
    _worker_encoding = encoding
    for structure in pinned:
        context = ExecutionContext(structure, encoding=encoding)
        context.materialize()
        _worker_pinned[structure.fingerprint()] = context


def _resident_context(structure: Structure):
    """``(context, hit)`` from this worker's fingerprint-keyed caches.

    Pinned contexts are consulted first; they never count against (or
    get evicted by) the LRU capacity.
    """
    global _worker_contexts, _worker_pinned
    from repro.engine.context import ExecutionContext

    if _worker_contexts is None:
        # Running without the initializer (e.g. the in-process tests
        # call the task functions directly): behave as a cold cache.
        _worker_contexts = OrderedDict()
    if _worker_pinned is None:
        _worker_pinned = {}
    key = structure.fingerprint()
    context = _worker_pinned.get(key)
    if context is not None:
        return context, True
    context = _worker_contexts.get(key)
    if context is not None:
        _worker_contexts.move_to_end(key)
        return context, True
    context = ExecutionContext(structure, encoding=_worker_encoding)
    _worker_contexts[key] = context
    while len(_worker_contexts) > _worker_capacity:
        _worker_contexts.popitem(last=False)
    return context, False


# ----------------------------------------------------------------------
# Broadcast tasks (one execution per worker, barrier-synchronized)
# ----------------------------------------------------------------------
def _await_broadcast_barrier(barrier, timeout: float) -> None:
    """Hold this worker at the barrier until every worker has a job.

    The barrier is what turns ``pool.map`` into a broadcast: with
    exactly ``processes`` jobs queued and every job blocking until all
    of them are running, no worker can serve two.  A broken barrier
    (a worker stuck in a long count past ``timeout``) degrades
    gracefully: the remaining jobs still run -- possibly unevenly
    distributed -- and the parent-side pin set plus the per-job LRU
    keep correctness unaffected.
    """
    if barrier is None:
        return
    try:
        barrier.wait(timeout)
    except Exception as exc:  # threading.BrokenBarrierError, proxy errors
        # Degrading to best-effort distribution is deliberate, but the
        # dropped error must at least be visible at debug level.
        _log.debug(
            "broadcast barrier wait failed; continuing best-effort",
            extra={"error": f"{type(exc).__name__}: {exc}"},
        )


def pin_structures_task(job) -> _TaskOk | _TaskFailure:
    """Build and pin the contexts of ``structures`` in this worker.

    ``job = (structures, barrier, timeout)``.  Pinning is idempotent;
    an existing LRU entry for the same fingerprint is promoted instead
    of being rebuilt.  Contexts are *materialized* (positional index
    built eagerly), so the first post-pin count starts warm.
    """
    structures, barrier, timeout = job
    try:
        from repro.engine.context import ExecutionContext

        global _worker_contexts, _worker_pinned
        if _worker_pinned is None:
            _worker_pinned = {}
        _await_broadcast_barrier(barrier, timeout)
        pinned = 0
        for structure in structures:
            key = structure.fingerprint()
            context = _worker_pinned.get(key)
            if context is None and _worker_contexts is not None:
                context = _worker_contexts.pop(key, None)
            if context is None:
                context = ExecutionContext(
                    structure, encoding=_worker_encoding
                )
            context.materialize()
            _worker_pinned[key] = context
            pinned += 1
        return _TaskOk(pinned)
    except Exception as exc:
        return _wrap_failure(exc)


def unpin_structures_task(job) -> _TaskOk | _TaskFailure:
    """Drop pinned *and* LRU contexts for ``fingerprints`` in this worker.

    ``job = (fingerprints, barrier, timeout)``.  Used on unregister and
    on re-registration under the same name with different data, so a
    stale context can never serve a fingerprint that no longer matches
    anything the parent will ship.
    """
    fingerprints, barrier, timeout = job
    try:
        global _worker_contexts, _worker_pinned
        _await_broadcast_barrier(barrier, timeout)
        dropped = 0
        for key in fingerprints:
            if _worker_pinned is not None and _worker_pinned.pop(key, None):
                dropped += 1
            if _worker_contexts is not None and _worker_contexts.pop(key, None):
                dropped += 1
        return _TaskOk(dropped)
    except Exception as exc:
        return _wrap_failure(exc)


def apply_delta_task(job) -> _TaskOk | _TaskFailure:
    """Migrate this worker's resident contexts across a structure delta.

    ``job = (updates, barrier, timeout)`` with ``updates`` a tuple of
    ``(old_fingerprint, delta, new_fingerprint)`` triples -- the whole
    structure's delta plus one routed sub-delta per touched shard.  A
    resident context keyed by ``old_fingerprint`` (pinned or LRU) is
    re-keyed to its :meth:`~repro.engine.context.ExecutionContext.
    apply_delta` migration, so the worker keeps its warm index, memos,
    and encoding instead of being unpinned and rebuilt; the shipped
    bytes are ``O(|delta|)``, never the structure.  A worker without
    the old fingerprint simply skips the pair (the next job shipping
    the post-delta structure rebuilds on demand), and a migration whose
    chained fingerprint does not match the parent's expectation is
    dropped rather than ever serving drifted data.
    """
    updates, barrier, timeout = job
    try:
        global _worker_contexts, _worker_pinned
        _await_broadcast_barrier(barrier, timeout)
        applied = 0
        for old_fingerprint, delta, new_fingerprint in updates:
            context = None
            pinned = False
            if _worker_pinned is not None and old_fingerprint in _worker_pinned:
                context = _worker_pinned.pop(old_fingerprint)
                pinned = True
            elif _worker_contexts is not None:
                context = _worker_contexts.pop(old_fingerprint, None)
            if context is None:
                continue
            migrated = context.apply_delta(delta)
            if migrated.structure.fingerprint() != new_fingerprint:
                continue
            if pinned:
                _worker_pinned[new_fingerprint] = migrated
            else:
                assert _worker_contexts is not None
                _worker_contexts[new_fingerprint] = migrated
            applied += 1
        return _TaskOk(applied)
    except Exception as exc:
        return _wrap_failure(exc)


def pinned_fingerprints_task(job) -> _TaskOk | _TaskFailure:
    """Introspection: this worker's pinned fingerprint keys.

    ``job = ((), barrier, timeout)``; used by tests and diagnostics to
    observe the per-worker pin state.
    """
    _, barrier, timeout = job
    try:
        _await_broadcast_barrier(barrier, timeout)
        return _TaskOk(tuple(_worker_pinned or ()))
    except Exception as exc:
        return _wrap_failure(exc)


# ----------------------------------------------------------------------
# The task functions shipped to workers
# ----------------------------------------------------------------------
def count_block_task(job) -> _TaskOk | _TaskFailure:
    """Run a block of plans against one structure.

    ``job = (plans, structure, use_context[, budget])``; with
    ``use_context`` the block shares one resident execution context
    (and the executions run against the resident context's structure,
    so index, memos, and data stay coherent on a fingerprint hit).
    ``budget`` is the caller's remaining :class:`~repro.budget.
    CostBudget` (shipped by value); it is installed around the block so
    budget- and deadline-exceeded counts abort *inside* the worker, and
    the resulting :class:`~repro.exceptions.BudgetExceeded` travels
    back through the normal failure channel.
    """
    plans, structure, use_context, *rest = job
    budget = rest[0] if rest else None
    cap = _trace.capture("count.block", plans=len(job[0]))
    try:
        with cap:
            from repro.budget import budget_scope
            from repro.engine.executor import execute

            context = None
            hit: bool | None = None
            if use_context:
                context, hit = _resident_context(structure)
                structure = context.structure
            cap.root.set("context_hit", hit)
            with budget_scope(budget):
                values = [execute(plan, structure, context) for plan in plans]
        return _TaskOk(values, hit, cap.spans)
    except Exception as exc:
        failure = _wrap_failure(exc)
        failure.spans = cap.spans
        return failure


def shard_task(job) -> _TaskOk | _TaskFailure:
    """Evaluate every shard unit on one shard through one resident context.

    ``job = (units, shard[, budget])``: the sharded executor's per-shard
    work, with the context (index + boundary memos) resident across
    calls, so a repeated ``count_sharded`` on the same data re-executes
    against warm memos instead of rebuilding them.  ``budget`` (the
    caller's remaining allowance, shipped by value) is installed around
    the units as in :func:`count_block_task`.
    """
    units, shard, *rest = job
    budget = rest[0] if rest else None
    cap = _trace.capture("shard.execute", units=len(job[0]))
    try:
        with cap:
            from repro.budget import budget_scope

            context, hit = _resident_context(shard)
            cap.root.set("context_hit", hit)
            out: list = []
            with budget_scope(budget):
                for unit in units:
                    if unit.kind == "count":
                        assert unit.plan is not None
                        out.append(context.count_plan(unit.plan))
                    else:
                        assert unit.sentence is not None
                        out.append(context.sentence_holds(unit.sentence))
        return _TaskOk(out, hit, cap.spans)
    except Exception as exc:
        failure = _wrap_failure(exc)
        failure.spans = cap.spans
        return failure


# ----------------------------------------------------------------------
# The parent-side pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A reusable multiprocessing pool with warm worker-side caches.

    Parameters
    ----------
    processes:
        Pool size (default: one worker per CPU).
    context_capacity:
        How many execution contexts each worker keeps resident.
    encoding:
        Encoding backend for every worker-built execution context
        (resolved through
        :func:`repro.structures.encoding.resolve_backend`); the
        engine passes its own so parent and workers agree.

    The underlying :mod:`multiprocessing` pool is created lazily on the
    first :meth:`map`, so constructing a ``WorkerPool`` (an
    :class:`~repro.engine.api.Engine` does it eagerly) costs nothing
    until a parallel path actually runs.  Usable as a context manager;
    :meth:`close` shuts the workers down.
    """

    #: How long a broadcast waits for every worker to pick up its job
    #: before degrading to best-effort distribution.
    BROADCAST_BARRIER_TIMEOUT = 60.0

    #: Extra parent-side slack past the barrier timeout before a
    #: broadcast is declared wedged (a worker died holding a job).
    BROADCAST_RESULT_GRACE = 15.0

    def __init__(
        self,
        processes: int | None = None,
        context_capacity: int = DEFAULT_WORKER_CONTEXT_CAPACITY,
        encoding: str | None = None,
    ):
        from repro.structures.encoding import resolve_backend

        if processes is not None and processes < 1:
            raise ReproError("worker pool needs at least one process")
        self.processes = processes or default_process_count()
        self.context_capacity = context_capacity
        self.encoding = resolve_backend(encoding)
        self._pool = None
        self._manager = None
        self._lock = threading.Lock()
        self._pinned: OrderedDict[tuple, Structure] = OrderedDict()
        self.worker_context_hits = 0
        self.worker_context_misses = 0
        self.pin_broadcasts = 0
        self.broadcast_timeouts = 0

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                import multiprocessing

                # fork shares the already-imported library with the
                # workers; fall back to the default start method where
                # fork is unavailable.
                try:
                    mp_context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    mp_context = multiprocessing.get_context()
                self._pool = mp_context.Pool(
                    processes=self.processes,
                    initializer=_init_worker,
                    initargs=(
                        self.context_capacity,
                        tuple(self._pinned.values()),
                        self.encoding,
                    ),
                )
            return self._pool

    def _ensure_manager(self):
        """The SyncManager whose barrier proxies coordinate broadcasts.

        Plain ``multiprocessing`` synchronization primitives can only be
        *inherited* by workers, not shipped through the pool's task
        queue; manager proxies are picklable, which is what lets a
        barrier reach workers forked long before the broadcast.  Created
        lazily (one extra helper process) on the first broadcast against
        a live pool and shut down with the pool.
        """
        with self._lock:
            if self._manager is None:
                import multiprocessing

                self._manager = multiprocessing.Manager()
            return self._manager

    @property
    def started(self) -> bool:
        """Whether the underlying process pool has been created."""
        return self._pool is not None

    def map(self, task, jobs) -> list:
        """Run ``task`` over ``jobs`` in the pool and unwrap the results.

        Raises :class:`WorkerTaskError` when a task failed inside a
        worker; lets pool-setup and job-pickling errors (``OSError``,
        pickling errors, ...) propagate as themselves, which is the
        signal the executor's sequential fallback keys on.

        Worker-recorded trace spans riding on each result are
        re-parented into the caller's ambient trace (suffixed with the
        job index, e.g. ``shard.execute[3]``) -- for *every* job before
        the first failure is raised, so an exceptional trace is still
        complete.
        """
        raw = self._ensure_pool().map(task, list(jobs))
        values = []
        hits = misses = 0
        failure: _TaskFailure | None = None
        for index, item in enumerate(raw):
            _trace.attach_foreign(item.spans, suffix=f"[{index}]")
            if isinstance(item, _TaskFailure):
                if failure is None:
                    failure = item
                continue
            values.append(item.value)
            if item.context_hit is True:
                hits += 1
            elif item.context_hit is False:
                misses += 1
        with self._lock:
            self.worker_context_hits += hits
            self.worker_context_misses += misses
        if failure is not None:
            raise WorkerTaskError(failure.exception)
        return values

    # ------------------------------------------------------------------
    # Broadcasts: structure pinning
    # ------------------------------------------------------------------
    def broadcast(self, task, payload) -> list:
        """Run ``task((payload, barrier, timeout))`` once on every worker.

        Queues exactly ``processes`` single-job chunks, each holding at
        a shared barrier until all of them are running, so every worker
        serves exactly one.  Requires a started pool; callers that only
        want the *recorded* effect (the pin set) when the pool is cold
        check :attr:`started` first.  Returns the per-worker values;
        worker-side failures raise :class:`WorkerTaskError` exactly
        like :meth:`map`.

        A worker that dies *between picking up its broadcast job and
        reaching the barrier* loses the job forever -- the pool
        respawns the process but never re-queues taken work, so a
        plain ``map`` would block for good while every other worker
        times out of the barrier and returns.  The parent therefore
        waits at most ``BROADCAST_BARRIER_TIMEOUT +
        BROADCAST_RESULT_GRACE``; on timeout it logs which worker pids
        died, bumps :attr:`broadcast_timeouts`, and **restarts the
        pool** (:meth:`terminate`) instead of deadlocking.  Returning
        ``[]`` (zero confirmations) is sound for every broadcast task:
        pins, unpins, and delta re-keys are all recorded parent-side
        first, and the restarted pool's initializer rebuilds exactly
        that state.
        """
        import multiprocessing

        pool = self._ensure_pool()
        alive_before = self._worker_pids()
        barrier = self._ensure_manager().Barrier(self.processes)
        job = (payload, barrier, self.BROADCAST_BARRIER_TIMEOUT)
        pending = pool.map_async(task, [job] * self.processes, chunksize=1)
        try:
            raw = pending.get(
                self.BROADCAST_BARRIER_TIMEOUT + self.BROADCAST_RESULT_GRACE
            )
        except multiprocessing.TimeoutError:
            dead = sorted(set(alive_before) - set(self._worker_pids()))
            with self._lock:
                self.broadcast_timeouts += 1
            _log.warning(
                "broadcast wedged (worker died holding a job); "
                "restarting the pool",
                extra={"dead_worker_pids": dead or "undetected"},
            )
            self.terminate()
            return []
        values = []
        for item in raw:
            if isinstance(item, _TaskFailure):
                raise WorkerTaskError(item.exception)
            values.append(item.value)
        return values

    def _worker_pids(self) -> list[int]:
        """Current worker pids (best-effort dead-worker diagnostics)."""
        pool = self._pool
        if pool is None:
            return []
        try:
            return [
                process.pid
                for process in pool._pool  # noqa: SLF001 - no public API
                if process.is_alive()
            ]
        except Exception:  # pragma: no cover - interpreter variations
            return []

    def pin_structures(self, structures: Sequence[Structure]) -> int:
        """Pin ``structures`` resident in every worker (and future ones).

        The pin set is recorded parent-side first, so workers forked
        later (a lazily restarted pool) rebuild it in their
        initializer; a live pool additionally gets a broadcast that
        builds and materializes the contexts right now.  Returns the
        number of live workers that confirmed the pin (0 when the pool
        has not started -- the pin still holds, deferred to start-up).
        """
        structures = tuple(structures)
        with self._lock:
            for structure in structures:
                self._pinned[structure.fingerprint()] = structure
        if not self.started:
            return 0
        confirmations = self.broadcast(pin_structures_task, structures)
        with self._lock:
            self.pin_broadcasts += 1
        return len(confirmations)

    def unpin_structures(self, fingerprints: Sequence[tuple]) -> int:
        """Drop pinned fingerprints parent-side and in every live worker.

        Also evicts matching entries from the workers' LRU caches, so a
        re-registration under the same name with different data can
        never be served by a stale context.
        """
        fingerprints = tuple(fingerprints)
        with self._lock:
            for fingerprint in fingerprints:
                self._pinned.pop(fingerprint, None)
        if not self.started:
            return 0
        confirmations = self.broadcast(unpin_structures_task, fingerprints)
        with self._lock:
            self.pin_broadcasts += 1
        return len(confirmations)

    def apply_delta(self, updates) -> int:
        """Fan a structure delta out to every worker's resident contexts.

        ``updates`` is a sequence of ``(old_fingerprint, delta,
        new_structure)`` triples -- the whole structure plus each
        touched shard.  The parent-side pin set is re-keyed first (so a
        lazily restarted pool rebuilds the *post-delta* versions in its
        initializer), then a broadcast ships the ``O(|delta|)``
        migration instructions to every live worker; pinned contexts
        migrate in place of being unpinned and rebuilt.  Returns the
        total number of worker-side context migrations (0 when the
        pool has not started -- the re-keyed pin set still holds).
        """
        updates = tuple(updates)
        if not updates:
            return 0
        with self._lock:
            for old_fingerprint, _, new_structure in updates:
                if old_fingerprint in self._pinned:
                    self._pinned.pop(old_fingerprint)
                    self._pinned[new_structure.fingerprint()] = new_structure
        if not self.started:
            return 0
        payload = tuple(
            (old_fingerprint, delta, new_structure.fingerprint())
            for old_fingerprint, delta, new_structure in updates
        )
        confirmations = self.broadcast(apply_delta_task, payload)
        with self._lock:
            self.pin_broadcasts += 1
        return sum(confirmations)

    def pinned_fingerprints(self) -> tuple[tuple, ...]:
        """The parent-side pin set (what a restarted pool would rebuild)."""
        with self._lock:
            return tuple(self._pinned)

    def worker_pinned_fingerprints(self) -> list[tuple[tuple, ...]]:
        """Per-worker pinned fingerprints, observed live (diagnostics)."""
        if not self.started:
            return []
        return self.broadcast(pinned_fingerprints_task, ())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> tuple[int, int]:
        """``(worker_context_hits, worker_context_misses)``, coherently.

        :meth:`map` bumps both counters under ``_lock``; reading the
        attributes directly can interleave with that (or with
        :meth:`reset_stats`) and pair a fresh hit count with a stale
        miss count.  The engine's ``stats()`` goes through here.
        """
        with self._lock:
            return self.worker_context_hits, self.worker_context_misses

    def reset_stats(self) -> None:
        """Zero the worker-context counters under the pool lock."""
        with self._lock:
            self.worker_context_hits = 0
            self.worker_context_misses = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the current workers down.

        The ``WorkerPool`` object stays usable: a later :meth:`map`
        starts a fresh set of workers -- cold caches, but with every
        pinned structure rebuilt by the initializer, so pinning is a
        property of the pool, not of one generation of workers.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            manager, self._manager = self._manager, None
        if pool is not None:
            pool.close()
            pool.join()
        if manager is not None:
            manager.shutdown()

    def terminate(self) -> None:
        """Kill the workers immediately."""
        with self._lock:
            pool, self._pool = self._pool, None
            manager, self._manager = self._manager, None
        if pool is not None:
            pool.terminate()
            pool.join()
        if manager is not None:
            manager.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.terminate()
        except Exception as exc:
            # Interpreter shutdown may have torn down multiprocessing
            # (or logging) already; surface what we can, never raise.
            try:
                _log.debug(
                    "worker pool GC teardown failed",
                    extra={"error": f"{type(exc).__name__}: {exc}"},
                )
            except Exception:
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self.started else "idle"
        return (
            f"WorkerPool(processes={self.processes}, {state}, "
            f"context_hits={self.worker_context_hits})"
        )
