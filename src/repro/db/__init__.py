"""Database-flavored layer: relations, databases, CQs and UCQs."""

from repro.db.relations import Relation
from repro.db.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.db.database import Database
from repro.db.sql_like import parse_program, parse_rule, parse_ucq

__all__ = [
    "Relation",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "Database",
    "parse_program",
    "parse_rule",
    "parse_ucq",
]
