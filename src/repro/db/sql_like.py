"""A datalog-style surface syntax for conjunctive queries and UCQs.

Rules look like::

    Path2(x, y) :- E(x, z), E(z, y).
    Path2(x, y) :- E(x, y).

Several rules with the same head predicate form a union of conjunctive
queries.  Variables start with a lower-case letter; constants are not
supported (the paper's fragment is constant-free), and neither is
negation or comparison -- this is exactly the select-project-join-union
fragment the paper studies.
"""

from __future__ import annotations

import re

from repro.db.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.exceptions import ParseError
from repro.logic.terms import Atom, Variable

_RULE_RE = re.compile(
    r"^\s*(?P<head_name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<head_args>[^)]*)\)\s*"
    r"(?::-\s*(?P<body>.*?))?\s*\.?\s*$"
)
_ATOM_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(\s*(?P<args>[^)]*)\)\s*"
)


def _parse_variables(text: str, context: str) -> list[Variable]:
    names = [piece.strip() for piece in text.split(",") if piece.strip()]
    variables = []
    for name in names:
        if not re.fullmatch(r"[a-z_][A-Za-z0-9_']*", name):
            raise ParseError(
                f"{context}: {name!r} is not a valid variable name "
                "(variables start with a lower-case letter; constants are not supported)"
            )
        variables.append(Variable(name))
    return variables


def _parse_body(text: str) -> list[Atom]:
    atoms: list[Atom] = []
    position = 0
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if match is None:
            raise ParseError(f"cannot parse body atom at: {text[position:]!r}", position)
        name = match.group("name")
        arguments = _parse_variables(match.group("args"), f"atom {name}")
        if not arguments:
            raise ParseError(f"atom {name!r} has no arguments")
        atoms.append(Atom(name, arguments))
        position = match.end()
        if position < len(text):
            if text[position] == ",":
                position += 1
            else:
                raise ParseError(f"expected ',' between atoms, found {text[position]!r}", position)
    return atoms


def parse_rule(text: str) -> ConjunctiveQuery:
    """Parse a single datalog rule into a :class:`ConjunctiveQuery`.

    A rule without a body (``Q(x, y).``) denotes the query whose answers
    are all pairs over the universe (head variables occur in no atom).
    """
    match = _RULE_RE.match(text)
    if match is None:
        raise ParseError(f"cannot parse rule: {text!r}")
    head_name = match.group("head_name")
    head = _parse_variables(match.group("head_args"), f"head of {head_name}")
    body_text = match.group("body") or ""
    body = _parse_body(body_text) if body_text.strip() else []
    return ConjunctiveQuery(head_name, head, body)


def parse_program(text: str) -> dict[str, UnionOfConjunctiveQueries]:
    """Parse a multi-rule program; rules are grouped by head predicate.

    Returns a mapping from head predicate name to the UCQ formed by its
    rules.  Rules are separated by newlines and/or terminating periods.
    """
    rules: list[ConjunctiveQuery] = []
    for line in _split_rules(text):
        rules.append(parse_rule(line))
    grouped: dict[str, list[ConjunctiveQuery]] = {}
    for rule in rules:
        grouped.setdefault(rule.name, []).append(rule)
    return {
        name: UnionOfConjunctiveQueries(group, name=name) for name, group in grouped.items()
    }


def parse_ucq(text: str, name: str | None = None) -> UnionOfConjunctiveQueries:
    """Parse a program that defines a single UCQ.

    If the program defines several head predicates, ``name`` selects the
    one to return; otherwise there must be exactly one.
    """
    program = parse_program(text)
    if name is not None:
        if name not in program:
            raise ParseError(f"the program defines no predicate named {name!r}")
        return program[name]
    if len(program) != 1:
        raise ParseError(
            f"the program defines {len(program)} predicates "
            f"({', '.join(sorted(program))}); pass name= to choose one"
        )
    return next(iter(program.values()))


def _split_rules(text: str) -> list[str]:
    lines: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].strip()
        if not line:
            continue
        # A line may contain several period-terminated rules.
        for piece in line.split("."):
            piece = piece.strip()
            if piece:
                lines.append(piece)
    return lines
