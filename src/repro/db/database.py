"""The database facade.

:class:`Database` is a mutable collection of named
:class:`~repro.db.relations.Relation` objects plus an optional set of
extra domain values.  It converts to and from the immutable
:class:`~repro.structures.structure.Structure` representation the
algorithms work on, and offers convenience methods to run and count
queries directly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.core.counting import count_answers
from repro.db.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.db.relations import Relation
from repro.exceptions import DatabaseError
from repro.logic.ep import EPFormula
from repro.logic.parser import parse_query
from repro.logic.pp import PPFormula
from repro.logic.signatures import Signature
from repro.structures.structure import Structure

Query = "str | EPFormula | PPFormula | ConjunctiveQuery | UnionOfConjunctiveQueries"


class Database:
    """A named collection of relations (a toy relational database).

    Example
    -------
    >>> db = Database()
    >>> db.add_rows("Follows", [("ada", "bob"), ("bob", "cyd")])
    >>> db.count_query("exists z. (Follows(x, z) & Follows(z, y))")
    1
    """

    def __init__(
        self,
        relations: Mapping[str, Relation] | Iterable[Relation] = (),
        extra_domain: Iterable[Hashable] = (),
    ):
        self._relations: dict[str, Relation] = {}
        if isinstance(relations, Mapping):
            iterable: Iterable[Relation] = relations.values()
        else:
            iterable = relations
        for relation in iterable:
            self._relations[relation.name] = relation
        self._extra_domain: set[Hashable] = set(extra_domain)

    # ------------------------------------------------------------------
    # Schema and data management
    # ------------------------------------------------------------------
    @property
    def relation_names(self) -> tuple[str, ...]:
        """The names of the relations, sorted."""
        return tuple(sorted(self._relations))

    def relation(self, name: str) -> Relation:
        """The relation named ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def add_relation(self, relation: Relation) -> "Database":
        """Add (or replace) a whole relation.  Returns ``self`` for chaining."""
        self._relations[relation.name] = relation
        return self

    def add_rows(self, name: str, rows: Iterable[Sequence[Hashable]]) -> "Database":
        """Add rows to a relation, creating it if necessary."""
        rows = [tuple(r) for r in rows]
        if name in self._relations:
            self._relations[name] = self._relations[name].with_rows(rows)
        else:
            self._relations[name] = Relation(name, rows)
        return self

    def add_row(self, name: str, *values: Hashable) -> "Database":
        """Add a single row: ``db.add_row("Follows", "ada", "bob")``."""
        return self.add_rows(name, [values])

    def add_domain_values(self, *values: Hashable) -> "Database":
        """Add elements to the universe even if they occur in no row."""
        self._extra_domain.update(values)
        return self

    def domain(self) -> frozenset[Hashable]:
        """The active domain: values in rows plus explicit extra values."""
        out: set[Hashable] = set(self._extra_domain)
        for relation in self._relations.values():
            out |= relation.values()
        return frozenset(out)

    def signature(self) -> Signature:
        """The database schema as a signature."""
        return Signature(relation.symbol() for relation in self._relations.values())

    def total_rows(self) -> int:
        """The total number of rows over all relations."""
        return sum(len(relation) for relation in self._relations.values())

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_structure(self) -> Structure:
        """The database as a finite relational structure."""
        return Structure(
            self.signature(),
            self.domain(),
            {name: relation.rows for name, relation in self._relations.items()},
        )

    @classmethod
    def from_structure(cls, structure: Structure) -> "Database":
        """Build a database from a structure (column names are lost)."""
        relations = [
            Relation(symbol.name, structure.relation(symbol.name), arity=symbol.arity)
            for symbol in structure.signature
        ]
        database = cls(relations)
        database._extra_domain = set(structure.isolated_elements())
        return database

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _as_ep(self, query) -> EPFormula:
        if isinstance(query, str):
            return parse_query(query)
        if isinstance(query, EPFormula):
            return query
        if isinstance(query, PPFormula):
            return EPFormula.from_pp(query)
        if isinstance(query, ConjunctiveQuery):
            return query.to_ep()
        if isinstance(query, UnionOfConjunctiveQueries):
            return query.to_ep()
        raise DatabaseError(f"cannot interpret {query!r} as a query")

    def count_query(self, query, strategy: str = "auto") -> int:
        """Count the answers of a query on this database."""
        return count_answers(self._as_ep(query), self.to_structure(), strategy=strategy)

    def answers(self, query) -> list[dict]:
        """Materialize the answers of a query (assignments of liberal variables).

        Intended for small result sets (examples, tests); counting large
        result sets should go through :meth:`count_query`, which never
        materializes answers.
        """
        from repro.algorithms.brute_force import enumerate_answers_naive

        ep = self._as_ep(query)
        return [dict(answer) for answer in enumerate_answers_naive(ep, self.to_structure())]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}({len(rel)})" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"
