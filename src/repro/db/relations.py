"""Named relations: the tables of the database facade.

:class:`Relation` is a thin, immutable value object pairing a relation
name with a set of rows (tuples of hashable values) and optional column
names.  It exists so that application code can talk about "tables" and
"rows" while the algorithmic layers keep working on plain
:class:`~repro.structures.structure.Structure` objects.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.exceptions import DatabaseError
from repro.logic.signatures import RelationSymbol

Row = tuple[Hashable, ...]


class Relation:
    """A named finite relation (a table).

    Parameters
    ----------
    name:
        The relation name, e.g. ``"Follows"``.
    rows:
        The rows; all rows must have the same arity.
    columns:
        Optional column names (must match the arity).
    """

    __slots__ = ("_name", "_rows", "_columns", "_arity")

    def __init__(
        self,
        name: str,
        rows: Iterable[Sequence[Hashable]] = (),
        columns: Sequence[str] | None = None,
        arity: int | None = None,
    ):
        if not name:
            raise DatabaseError("relation name must be non-empty")
        self._name = name
        materialized = {tuple(row) for row in rows}
        arities = {len(row) for row in materialized}
        if len(arities) > 1:
            raise DatabaseError(
                f"relation {name!r} has rows of different arities: {sorted(arities)}"
            )
        if arities:
            inferred = arities.pop()
        elif arity is not None:
            inferred = arity
        elif columns is not None:
            inferred = len(columns)
        else:
            raise DatabaseError(
                f"cannot infer the arity of empty relation {name!r}; pass arity= or columns="
            )
        if arity is not None and arity != inferred:
            raise DatabaseError(
                f"declared arity {arity} does not match rows of arity {inferred}"
            )
        if inferred < 1:
            raise DatabaseError("relations must have arity at least 1")
        if columns is not None and len(columns) != inferred:
            raise DatabaseError(
                f"{len(columns)} column names given for arity-{inferred} relation {name!r}"
            )
        self._rows = frozenset(materialized)
        self._columns = tuple(columns) if columns is not None else None
        self._arity = inferred

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation's name."""
        return self._name

    @property
    def arity(self) -> int:
        """The number of columns."""
        return self._arity

    @property
    def columns(self) -> tuple[str, ...] | None:
        """The column names, if declared."""
        return self._columns

    @property
    def rows(self) -> frozenset[Row]:
        """The rows of the relation."""
        return self._rows

    def symbol(self) -> RelationSymbol:
        """The corresponding relation symbol."""
        return RelationSymbol(self._name, self._arity)

    def values(self) -> frozenset[Hashable]:
        """All values occurring in any row."""
        out: set[Hashable] = set()
        for row in self._rows:
            out.update(row)
        return frozenset(out)

    # ------------------------------------------------------------------
    def with_rows(self, rows: Iterable[Sequence[Hashable]]) -> "Relation":
        """A new relation with additional rows."""
        return Relation(
            self._name,
            list(self._rows) + [tuple(r) for r in rows],
            columns=self._columns,
            arity=self._arity,
        )

    def filter(self, predicate) -> "Relation":
        """A new relation keeping only the rows satisfying ``predicate``."""
        return Relation(
            self._name,
            [row for row in self._rows if predicate(row)],
            columns=self._columns,
            arity=self._arity,
        )

    def project(self, indices: Sequence[int]) -> frozenset[Row]:
        """The projection of the rows onto the given column indices."""
        for index in indices:
            if not 0 <= index < self._arity:
                raise DatabaseError(f"column index {index} out of range for arity {self._arity}")
        return frozenset(tuple(row[i] for i in indices) for row in self._rows)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=repr))

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._name == other._name and self._rows == other._rows and self._arity == other._arity

    def __hash__(self) -> int:
        return hash((self._name, self._arity, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self._name!r}, arity={self._arity}, rows={len(self._rows)})"
