"""Conjunctive queries and unions of conjunctive queries.

These classes wrap the logic layer in database vocabulary:

* :class:`ConjunctiveQuery` -- a select-project-join query
  ``Q(head) :- body``, i.e. a primitive positive formula whose liberal
  variables are the head variables and whose body variables not in the
  head are existentially quantified.
* :class:`UnionOfConjunctiveQueries` -- a UCQ: several conjunctive
  queries with the same head, i.e. an existential positive formula.

Answer counting for these classes is exactly the problem the paper
classifies; :meth:`UnionOfConjunctiveQueries.count` and
:meth:`ConjunctiveQuery.count` call into :mod:`repro.core.counting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.counting import count_answers
from repro.exceptions import DatabaseError
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula
from repro.logic.terms import Atom, Variable, VariableLike, as_variables
from repro.structures.structure import Structure


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``name(head) :- body``.

    ``head`` lists the output (liberal) variables -- repetitions are not
    allowed; ``body`` is a tuple of atoms.  Body variables that do not
    occur in the head are existentially quantified.  Head variables that
    do not occur in the body are allowed (they range freely over the
    active domain / universe, mirroring liberal variables that occur in
    no atom).
    """

    name: str
    head: tuple[Variable, ...]
    body: tuple[Atom, ...]

    def __init__(self, name: str, head: Iterable[VariableLike], body: Iterable[Atom]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", as_variables(head))
        object.__setattr__(self, "body", tuple(body))
        if len(set(self.head)) != len(self.head):
            raise DatabaseError("head variables must be distinct")

    # ------------------------------------------------------------------
    @property
    def head_variables(self) -> frozenset[Variable]:
        """The output variables of the query."""
        return frozenset(self.head)

    @property
    def body_variables(self) -> frozenset[Variable]:
        """All variables occurring in the body."""
        out: set[Variable] = set()
        for atom in self.body:
            out |= atom.variables
        return frozenset(out)

    @property
    def existential_variables(self) -> frozenset[Variable]:
        """Body variables not exported in the head."""
        return self.body_variables - self.head_variables

    def is_boolean(self) -> bool:
        """True if the query has an empty head (a yes/no query)."""
        return not self.head

    # ------------------------------------------------------------------
    def to_pp(self) -> PPFormula:
        """The query as a prenex pp-formula with liberal variables = head."""
        formula = PPFormula.from_atoms(self.body, quantified=self.existential_variables)
        return formula.with_liberal(self.head_variables | formula.free_variables)

    def to_ep(self) -> EPFormula:
        """The query as an EP formula."""
        return EPFormula.from_pp(self.to_pp())

    def count(self, database: "Structure | object", strategy: str = "auto") -> int:
        """Count the answers of the query on a database or structure."""
        structure = _as_structure(database)
        return count_answers(self.to_pp(), structure, strategy=strategy)

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(str(a) for a in self.body) or "true"
        return f"{self.name}({head}) :- {body}"


class UnionOfConjunctiveQueries:
    """A union of conjunctive queries sharing the same head.

    The head variables of all disjuncts must be the same set (their
    order may differ; the first disjunct's order is used for output).
    """

    __slots__ = ("_name", "_disjuncts")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str | None = None):
        if not disjuncts:
            raise DatabaseError("a UCQ needs at least one disjunct")
        head_sets = {frozenset(q.head) for q in disjuncts}
        if len(head_sets) != 1:
            raise DatabaseError("all disjuncts of a UCQ must have the same head variables")
        self._disjuncts = tuple(disjuncts)
        self._name = name or disjuncts[0].name

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The query's name."""
        return self._name

    @property
    def disjuncts(self) -> tuple[ConjunctiveQuery, ...]:
        """The conjunctive queries forming the union."""
        return self._disjuncts

    @property
    def head(self) -> tuple[Variable, ...]:
        """The output variables (in the first disjunct's order)."""
        return self._disjuncts[0].head

    def to_ep(self) -> EPFormula:
        """The UCQ as an EP formula (liberal variables = head)."""
        return EPFormula.from_disjuncts([q.to_pp() for q in self._disjuncts])

    def count(self, database: "Structure | object", strategy: str = "auto") -> int:
        """Count the answers of the UCQ on a database or structure."""
        structure = _as_structure(database)
        return count_answers(self.to_ep(), structure, strategy=strategy)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __str__(self) -> str:
        return "\n".join(str(q) for q in self._disjuncts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnionOfConjunctiveQueries({self._name!r}, {len(self._disjuncts)} disjuncts)"


def _as_structure(database: object) -> Structure:
    if isinstance(database, Structure):
        return database
    to_structure = getattr(database, "to_structure", None)
    if callable(to_structure):
        return to_structure()
    raise DatabaseError(
        f"cannot interpret {database!r} as a database; pass a Structure or Database"
    )
