"""Fault injection for the cluster, driven by the ``REPRO_FAULTS`` env.

The chaos suite needs failures it can *cause*, not just wait for.  This
module is the one seam both cluster ends consult, so every injected
fault flows through the same code paths a real failure would:

* ``drop_frame`` -- probability that an outbound frame is silently
  discarded (a lossy link); a dropped heartbeat eventually trips the
  coordinator's deadline, a dropped result leaves the job in flight
  until the worker's death or the caller's timeout reclaims it.
* ``delay_heartbeat`` -- probability that a worker sits out one full
  heartbeat interval before sending (a GC pause, a stalled box).
* ``refuse_registration`` -- probability that the coordinator rejects
  a ``register`` frame (capacity policies, rolling restarts); the
  worker backs off and retries.
* ``delay_execute`` -- seconds of artificial latency added to every
  shard-unit execution (not a probability).  This is how the chaos
  tests hold a count in flight long enough to SIGKILL a worker
  mid-job deterministically instead of racing the scheduler.
* ``seed`` -- seeds the injector's private RNG so a failing chaos run
  reproduces.

``REPRO_FAULTS`` is a comma-separated ``key=value`` list, e.g.::

    REPRO_FAULTS="drop_frame=0.1,delay_heartbeat=0.2,seed=7"

Unset (or empty) means no injection anywhere; unknown keys are an
error so a typo cannot silently disable a chaos scenario.  See
``docs/operations.md``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro.exceptions import ReproError

#: The environment variable the cluster reads its fault plan from.
ENV_VAR = "REPRO_FAULTS"

_PROBABILITY_KEYS = ("drop_frame", "delay_heartbeat", "refuse_registration")


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault configuration (all zero: no injection)."""

    drop_frame: float = 0.0
    delay_heartbeat: float = 0.0
    refuse_registration: float = 0.0
    delay_execute: float = 0.0
    seed: int | None = None

    @property
    def active(self) -> bool:
        return bool(
            self.drop_frame
            or self.delay_heartbeat
            or self.refuse_registration
            or self.delay_execute
        )

    def as_env(self) -> str:
        """The plan back in ``REPRO_FAULTS`` syntax (for subprocesses)."""
        parts = []
        for key in (*_PROBABILITY_KEYS, "delay_execute"):
            value = getattr(self, key)
            if value:
                parts.append(f"{key}={value}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return ",".join(parts)


def load_fault_plan(spec: str | None = None) -> FaultPlan:
    """Parse ``spec`` (default: the ``REPRO_FAULTS`` env) into a plan."""
    if spec is None:
        spec = os.environ.get(ENV_VAR, "")
    values: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, separator, raw = item.partition("=")
        key = key.strip()
        if not separator:
            raise ReproError(
                f"{ENV_VAR} entry {item!r} is not of the form key=value"
            )
        try:
            if key == "seed":
                values[key] = int(raw)
            elif key in _PROBABILITY_KEYS:
                probability = float(raw)
                if not 0.0 <= probability <= 1.0:
                    raise ValueError("probability outside [0, 1]")
                values[key] = probability
            elif key == "delay_execute":
                delay = float(raw)
                if delay < 0.0:
                    raise ValueError("negative delay")
                values[key] = delay
            else:
                raise ReproError(f"{ENV_VAR} has unknown fault key {key!r}")
        except ValueError as exc:
            raise ReproError(f"{ENV_VAR} entry {item!r}: {exc}") from exc
    return FaultPlan(**values)


class FaultInjector:
    """Stateful fault decisions for one protocol endpoint.

    One injector per endpoint (a worker, or the coordinator) with its
    own RNG, so a seeded chaos scenario replays the same fault sequence
    per endpoint regardless of the other end's traffic.  Heartbeat
    frames are exempt from ``drop_frame`` *acknowledgements*
    coordinator-side but not worker-side -- the knob models the lossy
    worker uplink the reassignment machinery exists for.  Every
    injected fault is counted, so tests (and the ``/metrics`` cluster
    block) can assert injection actually happened instead of passing
    vacuously.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan if plan is not None else load_fault_plan()
        self._rng = random.Random(self.plan.seed)
        self.counters = {
            "frames_dropped": 0,
            "heartbeats_delayed": 0,
            "registrations_refused": 0,
            "executions_delayed": 0,
        }

    def should_drop_frame(self, frame_type: str | None = None) -> bool:
        if self.plan.drop_frame <= 0.0:
            return False
        # Losing a registration handshake is modeled by
        # refuse_registration, not by a silent drop that would leave
        # the worker waiting on a reply forever.
        if frame_type in ("register", "registered", "register_refused"):
            return False
        if self._rng.random() < self.plan.drop_frame:
            self.counters["frames_dropped"] += 1
            return True
        return False

    def heartbeat_delay(self, interval: float) -> float:
        """Extra seconds to sit on the next heartbeat (usually 0)."""
        if self.plan.delay_heartbeat <= 0.0:
            return 0.0
        if self._rng.random() < self.plan.delay_heartbeat:
            self.counters["heartbeats_delayed"] += 1
            return interval
        return 0.0

    def should_refuse_registration(self) -> bool:
        if self.plan.refuse_registration <= 0.0:
            return False
        if self._rng.random() < self.plan.refuse_registration:
            self.counters["registrations_refused"] += 1
            return True
        return False

    def execute_delay(self) -> float:
        """Artificial seconds to add to one shard-unit execution."""
        if self.plan.delay_execute > 0.0:
            self.counters["executions_delayed"] += 1
        return self.plan.delay_execute
