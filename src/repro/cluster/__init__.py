"""A distributed execution cluster for the sharded counting path.

The single-host pillars of the engine -- compiled plans, resident
execution contexts, the component-aligned shard partition with exact
recombination -- already express a ``count_sharded`` call as a bag of
independent, picklable ``(units, shard)`` jobs whose results combine
placement-independently (shard counts sum, query components multiply,
sentence bits OR).  This package runs those jobs across *processes that
do not share a parent*: a TCP coordinator/worker protocol over stdlib
``asyncio`` with length-prefixed JSON+pickle frames.

* :mod:`repro.cluster.proto` -- the frame codec and message-type
  registry shared by both ends;
* :mod:`repro.cluster.faults` -- the ``REPRO_FAULTS`` fault-injection
  seam (dropped frames, delayed heartbeats, refused registrations)
  the chaos suite drives;
* :mod:`repro.cluster.placement` -- the shard-to-worker placement map
  (replication factor >= 1) that generalizes the registry's worker-pool
  pin broadcast to cluster-wide residency;
* :mod:`repro.cluster.worker` -- the worker process
  (``python -m repro.cluster.worker``): registers with a capacity,
  heartbeats, keeps placed shards resident, executes shard units;
* :mod:`repro.cluster.coordinator` -- the coordinator: worker
  registration and liveness, job dispatch with capacity limits, and
  retry/reassignment of in-flight units when a worker dies or misses
  its heartbeat deadline.

Failure semantics sit *under* the engine's exactness contract: a job
whose worker dies is reassigned to another holder of the same shard;
when no live holder remains the whole call degrades to the local
:class:`~repro.engine.pool.WorkerPool` via
:class:`~repro.cluster.coordinator.ClusterUnavailable` -- the count is
recomputed, never approximated.
"""

from repro.cluster.coordinator import ClusterCoordinator, ClusterUnavailable
from repro.cluster.faults import FaultInjector, FaultPlan, load_fault_plan
from repro.cluster.placement import PlacementMap
from repro.cluster.proto import MESSAGE_TYPES, encode_frame, read_frame


def __getattr__(name: str):
    # Deferred so `python -m repro.cluster.worker` does not import the
    # worker module twice (package import + runpy execution).
    if name == "ClusterWorker":
        from repro.cluster.worker import ClusterWorker

        return ClusterWorker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ClusterCoordinator",
    "ClusterUnavailable",
    "ClusterWorker",
    "FaultInjector",
    "FaultPlan",
    "load_fault_plan",
    "PlacementMap",
    "MESSAGE_TYPES",
    "encode_frame",
    "read_frame",
]
