"""The cluster coordinator: registration, liveness, dispatch, recovery.

:class:`ClusterCoordinator` owns the TCP server end of
:mod:`repro.cluster.proto` on a background event loop, and exposes a
small *synchronous* facade the engine calls from request threads:

* :meth:`place_structures` / :meth:`unplace` / :meth:`apply_delta` --
  cluster-wide residency, the generalization of the worker pool's pin
  broadcast.  Placement chooses ``replication`` holders per shard
  fingerprint (:class:`~repro.cluster.placement.PlacementMap`); frames
  go out through one FIFO outbox per worker, so a ``place`` always
  reaches a worker before any ``execute`` that depends on it.
* :meth:`run_units` -- the sharded execution path.  Each job is
  fingerprint-only (the data already lives on its holders); dispatch
  respects per-worker capacity and prefers the least-loaded live
  holder.  The shipped body carries the shard units, the remaining
  allowance of the caller's :class:`~repro.budget.CostBudget`, and the
  per-call encoding backend.

Failure handling is the tentpole contract: a worker that closes its
connection *or misses its heartbeat deadline* is declared dead, its
placements are dropped, and every in-flight job it held is reassigned
to another live holder (``reassignments`` counts them).  A job whose
shard has no live holder left -- or a cluster with no live workers at
all -- raises :class:`ClusterUnavailable`, which the executor treats
as "degrade to the local pool and recompute"; exactness is never
traded for placement.  A worker-side *task* exception, by contrast, is
re-raised to the caller as
:class:`~repro.engine.pool.WorkerTaskError` exactly like the local
pool's, because a genuine counting bug must never be masked by a
retry.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections import deque

from repro.cluster import proto
from repro.cluster.faults import FaultInjector
from repro.cluster.placement import PlacementMap
from repro.engine.pool import WorkerTaskError
from repro.exceptions import ReproError
from repro.obs.log import get_logger

_log = get_logger("cluster.coordinator")


class ClusterUnavailable(ReproError):
    """The cluster cannot run this work; degrade to the local pool."""


class _WorkerHandle:
    """Coordinator-side state for one registered worker."""

    __slots__ = (
        "worker_id",
        "name",
        "capacity",
        "pid",
        "writer",
        "outbox",
        "sender",
        "last_heartbeat",
        "in_flight",
        "alive",
    )

    def __init__(self, worker_id, name, capacity, pid, writer, outbox):
        self.worker_id = worker_id
        self.name = name
        self.capacity = capacity
        self.pid = pid
        self.writer = writer
        self.outbox = outbox
        self.sender = None
        self.last_heartbeat = time.monotonic()
        self.in_flight: set = set()
        self.alive = True


class _Job:
    """One shard-unit job travelling through the cluster."""

    __slots__ = (
        "job_id",
        "units",
        "fingerprint",
        "budget",
        "encoding",
        "future",
        "attempts",
        "worker_id",
    )

    def __init__(self, job_id, units, fingerprint, budget, encoding):
        self.job_id = job_id
        self.units = units
        self.fingerprint = fingerprint
        self.budget = budget
        self.encoding = encoding
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.attempts = 0
        self.worker_id = None


class ClusterCoordinator:
    """The coordinator endpoint; start with :meth:`start`."""

    #: How long :meth:`run_units` waits for all results before giving
    #: the work back to the local pool.
    DEFAULT_JOB_TIMEOUT = 120.0

    #: How long the synchronous facade waits for the loop thread.
    CONTROL_TIMEOUT = 30.0

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float | None = None,
        replication: int = 1,
        max_job_retries: int = 3,
        faults: FaultInjector | None = None,
    ):
        if heartbeat_interval <= 0:
            raise ReproError("heartbeat_interval must be positive")
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else 3.0 * heartbeat_interval
        )
        if self.heartbeat_timeout <= heartbeat_interval:
            raise ReproError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        self.max_job_retries = max_job_retries
        self._faults = faults if faults is not None else FaultInjector()
        self._placement = PlacementMap(replication)
        self._lock = threading.RLock()
        self._workers: dict[str, _WorkerHandle] = {}
        self._jobs: dict[str, _Job] = {}
        self._pending: deque[str] = deque()
        self._worker_seq = 0
        self._job_seq = 0
        self._counters = {
            "registrations": 0,
            "registrations_refused": 0,
            "heartbeats": 0,
            "heartbeat_timeouts": 0,
            "worker_failures": 0,
            "reassignments": 0,
            "jobs_dispatched": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "worker_context_hits": 0,
            "worker_context_misses": 0,
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._monitor: asyncio.Task | None = None
        self._start_error: BaseException | None = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterCoordinator":
        """Bind the server on a background event-loop thread."""
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(ready,),
            name="cluster-coordinator",
            daemon=True,
        )
        self._thread.start()
        ready.wait(self.CONTROL_TIMEOUT)
        if self._start_error is not None:
            error, self._start_error = self._start_error, None
            self._thread.join(self.CONTROL_TIMEOUT)
            self._thread = None
            raise ReproError(f"coordinator failed to start: {error}")
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)

        async def boot():
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._monitor = asyncio.ensure_future(self._monitor_heartbeats())

        try:
            self._loop.run_until_complete(boot())
        except Exception as exc:
            self._start_error = exc
            ready.set()
            return
        ready.set()
        try:
            self._loop.run_forever()
        finally:
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    @property
    def running(self) -> bool:
        return self._thread is not None and not self._stopped

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def stop(self) -> None:
        """Close every connection, fail outstanding work, join the loop."""
        if self._thread is None or self._stopped:
            return
        self._stopped = True
        assert self._loop is not None
        done = concurrent.futures.Future()
        self._loop.call_soon_threadsafe(self._do_stop, done)
        try:
            done.result(self.CONTROL_TIMEOUT)
        except Exception:  # pragma: no cover - defensive teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(self.CONTROL_TIMEOUT)
        self._thread = None

    def _do_stop(self, done: concurrent.futures.Future) -> None:
        try:
            if self._server is not None:
                self._server.close()
            if self._monitor is not None:
                self._monitor.cancel()
            with self._lock:
                handles = list(self._workers.values())
                jobs = list(self._jobs.values())
                self._workers.clear()
                self._jobs.clear()
                self._pending.clear()
            for handle in handles:
                self._close_handle(handle)
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(
                        ClusterUnavailable("coordinator stopped")
                    )
            done.set_result(None)
        except Exception as exc:  # pragma: no cover - defensive teardown
            done.set_exception(exc)

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        handle: _WorkerHandle | None = None
        try:
            frame = await proto.read_frame(reader)
            if frame is None:
                return
            header, _ = frame
            if header["type"] != "register":
                raise proto.ProtocolError(
                    f"expected register, got {header['type']!r}"
                )
            if self._faults.should_refuse_registration():
                with self._lock:
                    self._counters["registrations_refused"] += 1
                await proto.send_frame(
                    writer,
                    {
                        "type": "register_refused",
                        "reason": "injected fault",
                    },
                )
                return
            with self._lock:
                self._worker_seq += 1
                worker_id = f"w{self._worker_seq}"
                handle = _WorkerHandle(
                    worker_id,
                    header.get("name", worker_id),
                    max(1, int(header.get("capacity", 1))),
                    header.get("pid"),
                    writer,
                    asyncio.Queue(),
                )
                self._workers[worker_id] = handle
                self._counters["registrations"] += 1
            handle.sender = asyncio.ensure_future(self._sender(handle))
            await proto.send_frame(
                writer,
                {
                    "type": "registered",
                    "worker_id": worker_id,
                    "heartbeat_interval": self.heartbeat_interval,
                },
            )
            _log.info(
                "worker registered",
                extra={
                    "worker_id": worker_id,
                    "worker_name": handle.name,
                    "capacity": handle.capacity,
                },
            )
            self._dispatch()
            while True:
                frame = await proto.read_frame(reader)
                if frame is None:
                    break
                header, body = frame
                kind = header["type"]
                if kind == "heartbeat":
                    handle.last_heartbeat = time.monotonic()
                    with self._lock:
                        self._counters["heartbeats"] += 1
                    self._outbox_put(handle, {"type": "heartbeat_ack"})
                elif kind == "result":
                    self._complete_job(handle, header, body)
                elif kind == "goodbye":
                    break
                else:
                    raise proto.ProtocolError(
                        f"coordinator cannot handle frame type {kind!r}"
                    )
        except Exception as exc:
            if handle is not None and handle.alive:
                _log.debug(
                    "worker connection error",
                    extra={
                        "worker_id": handle.worker_id,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
        finally:
            if handle is not None:
                self._worker_died(handle, "connection closed")
            else:
                writer.close()

    async def _sender(self, handle: _WorkerHandle) -> None:
        """Drain one worker's FIFO outbox onto its connection."""
        while True:
            header, body = await handle.outbox.get()
            try:
                await proto.send_frame(
                    handle.writer, header, body, faults=self._faults
                )
            except asyncio.CancelledError:  # pragma: no cover
                raise
            except Exception:
                self._worker_died(handle, "send failed")
                return

    def _outbox_put(
        self, handle: _WorkerHandle, header: dict, body: bytes = b""
    ) -> None:
        handle.outbox.put_nowait((header, body))

    def _close_handle(self, handle: _WorkerHandle) -> None:
        if handle.sender is not None:
            handle.sender.cancel()
        try:
            handle.writer.close()
        except Exception:  # pragma: no cover - already torn down
            pass

    # ------------------------------------------------------------------
    # Liveness and recovery (loop thread)
    # ------------------------------------------------------------------
    async def _monitor_heartbeats(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval / 2.0)
            now = time.monotonic()
            with self._lock:
                overdue = [
                    handle
                    for handle in self._workers.values()
                    if now - handle.last_heartbeat > self.heartbeat_timeout
                ]
            for handle in overdue:
                with self._lock:
                    self._counters["heartbeat_timeouts"] += 1
                self._worker_died(handle, "missed heartbeat deadline")

    def _worker_died(self, handle: _WorkerHandle, reason: str) -> None:
        """Declare a worker dead and reassign its in-flight jobs."""
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
            self._workers.pop(handle.worker_id, None)
            self._placement.drop_worker(handle.worker_id)
            self._counters["worker_failures"] += 1
            orphaned = list(handle.in_flight)
            handle.in_flight.clear()
        _log.warning(
            "cluster worker died",
            extra={
                "worker_id": handle.worker_id,
                "worker_name": handle.name,
                "reason": reason,
                "in_flight": len(orphaned),
            },
        )
        self._close_handle(handle)
        for job_id in orphaned:
            self._reassign(job_id, reason)
        self._dispatch()

    def _reassign(self, job_id: str, reason: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.future.done():
                return
            job.worker_id = None
            job.attempts += 1
            if job.attempts > self.max_job_retries:
                self._jobs.pop(job_id, None)
                job.future.set_exception(
                    ClusterUnavailable(
                        f"job {job_id} failed {job.attempts} times "
                        f"(last: {reason})"
                    )
                )
                return
            self._counters["reassignments"] += 1
            self._pending.appendleft(job_id)

    # ------------------------------------------------------------------
    # Dispatch (loop thread)
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Assign every pending job a live holder with free capacity."""
        to_send: list[tuple[_WorkerHandle, _Job]] = []
        with self._lock:
            still_pending: deque[str] = deque()
            while self._pending:
                job_id = self._pending.popleft()
                job = self._jobs.get(job_id)
                if job is None or job.future.done():
                    continue
                holders = [
                    self._workers[worker_id]
                    for worker_id in self._placement.holders(job.fingerprint)
                    if worker_id in self._workers
                ]
                if not holders:
                    self._jobs.pop(job_id, None)
                    job.future.set_exception(
                        ClusterUnavailable(
                            "no live worker holds the shard for job "
                            f"{job_id}"
                        )
                    )
                    continue
                free = [
                    handle
                    for handle in holders
                    if len(handle.in_flight) < handle.capacity
                ]
                if not free:
                    still_pending.append(job_id)
                    continue
                handle = min(free, key=lambda h: len(h.in_flight))
                handle.in_flight.add(job_id)
                job.worker_id = handle.worker_id
                self._counters["jobs_dispatched"] += 1
                to_send.append((handle, job))
            self._pending = still_pending
        for handle, job in to_send:
            self._outbox_put(
                handle,
                {"type": "execute", "job_id": job.job_id},
                proto.pickle_body(
                    (job.units, job.fingerprint, job.budget, job.encoding)
                ),
            )

    def _complete_job(
        self, handle: _WorkerHandle, header: dict, body: bytes
    ) -> None:
        job_id = header.get("job_id")
        status = header.get("status")
        with self._lock:
            handle.in_flight.discard(job_id)
            job = self._jobs.get(job_id)
            # A result from a worker the job was reassigned away from
            # (a heartbeat-delayed straggler) must not double-resolve.
            if job is None or job.worker_id != handle.worker_id:
                return
            if status == "ok":
                self._jobs.pop(job_id, None)
                self._counters["jobs_completed"] += 1
                if header.get("context_hit"):
                    self._counters["worker_context_hits"] += 1
                else:
                    self._counters["worker_context_misses"] += 1
            elif status == "error":
                self._jobs.pop(job_id, None)
                self._counters["jobs_failed"] += 1
        if status == "ok":
            values, spans = proto.unpickle_body(body)
            job.future.set_result((values, spans))
        elif status == "error":
            exception, _spans = proto.unpickle_body(body)
            job.future.set_exception(WorkerTaskError(exception))
        else:  # "unplaced": a routing miss, never the query's fault.
            with self._lock:
                self._placement.remove_holder(
                    job.fingerprint, handle.worker_id
                )
            self._reassign(job_id, "worker did not hold the shard")
        self._dispatch()

    # ------------------------------------------------------------------
    # The synchronous facade (engine threads)
    # ------------------------------------------------------------------
    def _control(self, fn, *args):
        """Run ``fn`` on the loop thread and wait for its result."""
        if not self.running or self._loop is None:
            raise ClusterUnavailable("coordinator is not running")
        done: concurrent.futures.Future = concurrent.futures.Future()

        def call():
            try:
                done.set_result(fn(*args))
            except Exception as exc:
                done.set_exception(exc)

        self._loop.call_soon_threadsafe(call)
        return done.result(self.CONTROL_TIMEOUT)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> int:
        """Block until ``count`` workers are registered (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                live = len(self._workers)
            if live >= count:
                return live
            if time.monotonic() >= deadline:
                raise ClusterUnavailable(
                    f"only {live}/{count} workers registered "
                    f"within {timeout}s"
                )
            time.sleep(0.02)

    def place_structures(self, structures) -> dict:
        """Place ``structures`` on workers; ``{worker_id: count}``.

        Each structure lands on ``replication`` distinct live workers
        (fewer only when the cluster is smaller than that), chosen
        least-loaded-first.  The frames ride each worker's FIFO outbox,
        so a later :meth:`run_units` on the same connection can never
        observe a missing placement.
        """
        structures = tuple(structures)
        for structure in structures:
            structure.fingerprint()  # computed outside the loop thread
        sent = self._control(self._do_place, structures)
        return sent

    def _do_place(self, structures) -> dict:
        with self._lock:
            live = list(self._workers)
            if not live:
                raise ClusterUnavailable("no live workers to place on")
            fingerprints = [s.fingerprint() for s in structures]
            outgoing = self._placement.assign(fingerprints, live)
            by_fingerprint = dict(zip(fingerprints, structures))
            handles = {
                worker_id: self._workers[worker_id]
                for worker_id in outgoing
                if worker_id in self._workers
            }
        for worker_id, placed in outgoing.items():
            handle = handles.get(worker_id)
            if handle is None:
                continue
            self._outbox_put(
                handle,
                {"type": "place"},
                proto.pickle_body(
                    tuple(by_fingerprint[f] for f in placed)
                ),
            )
        return {worker_id: len(placed) for worker_id, placed in outgoing.items()}

    def unplace(self, fingerprints) -> int:
        """Drop placements; returns how many workers were notified."""
        return self._control(self._do_unplace, tuple(fingerprints))

    def _do_unplace(self, fingerprints) -> int:
        with self._lock:
            outgoing = self._placement.unplace(fingerprints)
            handles = {
                worker_id: self._workers[worker_id]
                for worker_id in outgoing
                if worker_id in self._workers
            }
        for worker_id, dropped in outgoing.items():
            handle = handles.get(worker_id)
            if handle is not None:
                self._outbox_put(
                    handle,
                    {"type": "unplace"},
                    proto.pickle_body(tuple(dropped)),
                )
        return len(handles)

    def apply_delta(self, updates) -> int:
        """Fan a delta out to every holder of each touched fingerprint.

        ``updates`` is a sequence of ``(old_fingerprint, delta,
        new_structure)`` triples, exactly the worker pool's shape; the
        wire ships only ``(old_fingerprint, delta, new_fingerprint)``
        -- ``O(|delta|)`` bytes -- and each holder migrates its
        resident structure and built contexts in place.  Placements are
        re-keyed to the post-delta fingerprints so routing follows the
        advance.  Returns the number of delta frames sent.
        """
        updates = tuple(
            (old, delta, new_structure.fingerprint())
            for old, delta, new_structure in updates
        )
        return self._control(self._do_apply_delta, updates)

    def _do_apply_delta(self, updates) -> int:
        per_worker: dict[str, list] = {}
        with self._lock:
            for old_fingerprint, delta, new_fingerprint in updates:
                holders = self._placement.rekey(
                    old_fingerprint, new_fingerprint
                )
                for worker_id in holders:
                    if worker_id in self._workers:
                        per_worker.setdefault(worker_id, []).append(
                            (old_fingerprint, delta, new_fingerprint)
                        )
            handles = {
                worker_id: self._workers[worker_id]
                for worker_id in per_worker
            }
        sent = 0
        for worker_id, batch in per_worker.items():
            self._outbox_put(
                handles[worker_id],
                {"type": "delta"},
                proto.pickle_body(tuple(batch)),
            )
            sent += 1
        return sent

    def can_route(self, fingerprints) -> bool:
        """Whether every fingerprint has a live holder right now."""
        with self._lock:
            if not self._workers:
                return False
            return all(
                any(
                    worker_id in self._workers
                    for worker_id in self._placement.holders(fingerprint)
                )
                for fingerprint in fingerprints
            )

    def run_units(
        self,
        jobs,
        budget=None,
        encoding: str | None = None,
        timeout: float | None = None,
    ) -> list:
        """Run ``(units, fingerprint)`` jobs; returns ``(values, spans)``
        per job, in order.

        Raises :class:`ClusterUnavailable` when the work cannot be
        routed (no live workers, an unplaced shard, retries exhausted,
        or the overall ``timeout`` expiring) -- the caller's signal to
        recompute on the local pool -- and
        :class:`~repro.engine.pool.WorkerTaskError` when a worker's
        task genuinely raised.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if not self.can_route([fingerprint for _, fingerprint in jobs]):
            raise ClusterUnavailable(
                "not every shard has a live holder; falling back"
            )
        with self._lock:
            job_objs = []
            for units, fingerprint in jobs:
                self._job_seq += 1
                job_objs.append(
                    _Job(
                        f"j{self._job_seq}",
                        units,
                        fingerprint,
                        budget,
                        encoding,
                    )
                )
        self._control(self._enqueue, job_objs)
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.DEFAULT_JOB_TIMEOUT
        )
        results = []
        try:
            for job in job_objs:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ClusterUnavailable("cluster execution timed out")
                try:
                    results.append(job.future.result(remaining))
                except concurrent.futures.TimeoutError:
                    raise ClusterUnavailable(
                        "cluster execution timed out"
                    ) from None
        except BaseException:
            self._abandon([job.job_id for job in job_objs])
            raise
        return results

    def _enqueue(self, job_objs) -> None:
        with self._lock:
            for job in job_objs:
                self._jobs[job.job_id] = job
                self._pending.append(job.job_id)
        self._dispatch()

    def _abandon(self, job_ids) -> None:
        """Forget outstanding jobs after a failed or timed-out run."""
        if not self.running or self._loop is None:
            return

        def drop():
            with self._lock:
                for job_id in job_ids:
                    job = self._jobs.pop(job_id, None)
                    if job is not None and not job.future.done():
                        job.future.set_exception(
                            ClusterUnavailable("run abandoned")
                        )
                self._pending = deque(
                    job_id
                    for job_id in self._pending
                    if job_id not in set(job_ids)
                )

        self._loop.call_soon_threadsafe(drop)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The ``/healthz`` / ``/metrics`` cluster block."""
        with self._lock:
            workers = {
                handle.worker_id: {
                    "name": handle.name,
                    "capacity": handle.capacity,
                    "in_flight": len(handle.in_flight),
                    "pid": handle.pid,
                }
                for handle in self._workers.values()
            }
            return {
                "attached": True,
                "address": f"{self.host}:{self.port}",
                "running": self.running,
                "workers": len(workers),
                "worker_details": workers,
                "capacity_slots": sum(
                    handle.capacity for handle in self._workers.values()
                ),
                "in_flight": sum(
                    len(handle.in_flight)
                    for handle in self._workers.values()
                ),
                "pending_jobs": len(self._pending),
                "placements": len(self._placement),
                "replication": self._placement.replication,
                **dict(self._counters),
            }

    def stats_snapshot(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ClusterCoordinator({self.host}:{self.port}, "
                f"workers={len(self._workers)}, "
                f"placed={len(self._placement)})"
            )
