"""Shard-to-worker placement: the cluster's generalized pin broadcast.

The worker pool pins a registered structure's shards into *every*
worker; a cluster cannot afford that (residency is the whole point of
scaling out), so placement assigns each shard fingerprint to
``replication`` distinct workers chosen least-loaded-first.  The map is
pure bookkeeping -- no I/O -- so the coordinator owns the wire traffic
and this class owns the invariants:

* every placed fingerprint has between 1 and ``replication`` holders
  (fewer only when the cluster has fewer live workers);
* a worker's death drops it from every placement, reporting which
  fingerprints lost their *last* holder (the coordinator degrades
  those to the local pool instead of guessing at data it never held);
* placement is deterministic given the same workers in the same order,
  which keeps chaos runs reproducible.
"""

from __future__ import annotations

from repro.exceptions import ReproError


class PlacementMap:
    """Which workers hold which shard fingerprints."""

    def __init__(self, replication: int = 1):
        if replication < 1:
            raise ReproError("placement replication factor must be >= 1")
        self.replication = replication
        #: fingerprint -> ordered tuple of holder worker ids.
        self._holders: dict = {}
        #: worker id -> number of fingerprints placed on it.
        self._load: dict = {}

    # ------------------------------------------------------------------
    def assign(self, fingerprints, workers) -> dict:
        """Choose holders for ``fingerprints`` among live ``workers``.

        Returns ``{worker_id: [fingerprint, ...]}`` -- the frames the
        coordinator must send.  Re-placing an already-placed
        fingerprint keeps existing holders that are still live and only
        tops the holder set back up to ``replication``, so a repeated
        registration does not reshuffle resident data.
        """
        workers = list(workers)
        if not workers:
            raise ReproError("cannot place shards on an empty cluster")
        for worker_id in workers:
            self._load.setdefault(worker_id, 0)
        outgoing: dict = {}
        for fingerprint in fingerprints:
            holders = [
                worker_id
                for worker_id in self._holders.get(fingerprint, ())
                if worker_id in self._load
            ]
            want = min(self.replication, len(workers))
            candidates = sorted(
                (w for w in workers if w not in holders),
                key=lambda w: (self._load.get(w, 0), str(w)),
            )
            for worker_id in candidates[: max(0, want - len(holders))]:
                holders.append(worker_id)
                self._load[worker_id] = self._load.get(worker_id, 0) + 1
                outgoing.setdefault(worker_id, []).append(fingerprint)
            self._holders[fingerprint] = tuple(holders)
        return outgoing

    def holders(self, fingerprint) -> tuple:
        """The live holders of ``fingerprint`` (empty if unplaced)."""
        return self._holders.get(fingerprint, ())

    def is_placed(self, fingerprint) -> bool:
        return bool(self._holders.get(fingerprint))

    def placed_fingerprints(self) -> tuple:
        return tuple(self._holders)

    def rekey(self, old_fingerprint, new_fingerprint) -> tuple:
        """Move a placement across a delta's fingerprint advance."""
        holders = self._holders.pop(old_fingerprint, ())
        if holders:
            self._holders[new_fingerprint] = holders
        return holders

    def unplace(self, fingerprints) -> dict:
        """Drop placements; returns ``{worker_id: [fingerprint, ...]}``."""
        outgoing: dict = {}
        for fingerprint in fingerprints:
            for worker_id in self._holders.pop(fingerprint, ()):
                if worker_id in self._load:
                    self._load[worker_id] -= 1
                outgoing.setdefault(worker_id, []).append(fingerprint)
        return outgoing

    def remove_holder(self, fingerprint, worker_id) -> None:
        """Forget one claimed holder (a routing miss disproved it)."""
        holders = self._holders.get(fingerprint)
        if not holders or worker_id not in holders:
            return
        self._holders[fingerprint] = tuple(
            w for w in holders if w != worker_id
        )
        if worker_id in self._load:
            self._load[worker_id] -= 1

    def drop_worker(self, worker_id) -> list:
        """Forget a dead worker; returns fingerprints left holder-less."""
        self._load.pop(worker_id, None)
        orphaned = []
        for fingerprint, holders in list(self._holders.items()):
            if worker_id not in holders:
                continue
            remaining = tuple(w for w in holders if w != worker_id)
            self._holders[fingerprint] = remaining
            if not remaining:
                orphaned.append(fingerprint)
        return orphaned

    # ------------------------------------------------------------------
    def worker_load(self) -> dict:
        return dict(self._load)

    def __len__(self) -> int:
        return len(self._holders)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlacementMap(replication={self.replication}, "
            f"placed={len(self._holders)}, workers={len(self._load)})"
        )
