"""The wire protocol shared by the cluster coordinator and its workers.

Every message is one length-prefixed frame::

    !II (header length, body length) | header JSON | body pickle bytes

The header is a small JSON object -- always carrying ``type`` (one of
:data:`MESSAGE_TYPES`) plus type-specific scalar fields -- so both ends
can route a frame without touching the body.  The body is an optional
pickle payload for the values JSON cannot carry faithfully: structures
and shard units, fingerprints (nested tuples), deltas, the remaining
allowance of a :class:`~repro.budget.CostBudget` (its ``__getstate__``
ships exactly that), worker-recorded trace spans, and exceptions.

Pickle is trusted here by construction: the coordinator and its workers
are both this library, started by the same operator on the same trust
boundary as the :mod:`multiprocessing` pool they generalize.  The codec
still refuses frames above :data:`MAX_FRAME_BYTES` so a corrupted
length prefix cannot ask for an unbounded read.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import struct

from repro.exceptions import ReproError

#: Frame header: big-endian (header length, body length).
_LENGTHS = struct.Struct("!II")

#: Refuse frames larger than this (a corrupt prefix, not a real peer).
MAX_FRAME_BYTES = 512 * 1024 * 1024

#: Every frame type either end may send.  The docs-freshness check
#: diffs ``docs/cluster.md`` against this registry in both directions.
MESSAGE_TYPES = (
    "register",
    "registered",
    "register_refused",
    "heartbeat",
    "heartbeat_ack",
    "place",
    "unplace",
    "delta",
    "execute",
    "result",
    "goodbye",
)


class ProtocolError(ReproError):
    """A peer sent a frame this protocol cannot accept."""


def encode_frame(header: dict, body: bytes = b"") -> bytes:
    """One wire frame: length prefix, JSON header, pickle body."""
    frame_type = header.get("type")
    if frame_type not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _LENGTHS.pack(len(header_bytes), len(body)) + header_bytes + body


def pickle_body(value) -> bytes:
    """Pickle a frame body, failing with a protocol error when unpicklable."""
    try:
        return pickle.dumps(value)
    except Exception as exc:
        raise ProtocolError(
            f"frame body cannot be pickled: {type(exc).__name__}: {exc}"
        ) from exc


def unpickle_body(body: bytes):
    """The pickled payload of a frame (``None`` for an empty body)."""
    if not body:
        return None
    return pickle.loads(body)


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[dict, bytes] | None:
    """Read one ``(header, body)`` frame; ``None`` on a clean EOF.

    A connection that ends *inside* a frame (a SIGKILLed worker, a
    dropped link) raises ``asyncio.IncompleteReadError`` to the caller
    -- the read loops treat any exception as a dead peer, so a torn
    frame and a closed socket converge on the same recovery path.
    """
    try:
        prefix = await reader.readexactly(_LENGTHS.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise
    header_length, body_length = _LENGTHS.unpack(prefix)
    if header_length + body_length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {header_length + body_length} bytes exceeds "
            f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    header_bytes = await reader.readexactly(header_length)
    body = await reader.readexactly(body_length) if body_length else b""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict) or header.get("type") not in MESSAGE_TYPES:
        raise ProtocolError(f"malformed frame header: {header!r}")
    return header, body


async def send_frame(
    writer: asyncio.StreamWriter,
    header: dict,
    body: bytes = b"",
    faults=None,
) -> bool:
    """Write one frame (and drain); ``False`` when a fault dropped it.

    ``faults`` is an optional
    :class:`~repro.cluster.faults.FaultInjector`; a triggered
    ``drop_frame`` silently discards the frame, which is exactly what a
    lossy link would do to a peer -- the recovery machinery (heartbeat
    deadlines, job reassignment) must cope, and the chaos tests assert
    that it does.
    """
    if faults is not None and faults.should_drop_frame(header.get("type")):
        return False
    writer.write(encode_frame(header, body))
    await writer.drain()
    return True
