"""The cluster worker: a remote, heartbeat-monitored pool worker.

``python -m repro.cluster.worker --connect HOST:PORT`` starts one.  A
worker connects to the coordinator, registers with a *capacity* (how
many shard-unit jobs it executes concurrently), then serves frames:

* ``place`` / ``unplace`` / ``delta`` maintain the worker's resident
  shard set -- the cluster-wide generalization of the pool's pinned
  contexts.  ``place`` ships structures; execution contexts are built
  lazily per ``(fingerprint, encoding)`` on first use and kept for the
  placement's lifetime.  ``delta`` migrates resident structures *and*
  their built contexts in ``O(|delta|)``, exactly like the pool's
  ``apply_delta_task``, so a PATCH advance never costs a rebuild.
* ``execute`` runs shard units in a thread pool sized to the capacity,
  under the shipped :class:`~repro.budget.CostBudget` remaining
  allowance, recording trace spans that travel back in the ``result``
  frame for parent-side ``attach_foreign`` re-parenting.
* ``heartbeat`` frames flow worker -> coordinator on the interval the
  ``registered`` reply dictates; the fault seam can delay or drop
  them, which is how the chaos tests exercise the deadline machinery.

TCP ordering is the consistency story: ``place`` is processed before
any later ``execute`` on the same connection, so a fingerprint-only
job never races its own placement.  An execution for a fingerprint the
worker does not hold reports ``status="unplaced"`` rather than an
error -- the coordinator reroutes it, because a routing miss is the
cluster's fault, never the query's.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.budget import budget_scope
from repro.cluster import proto
from repro.cluster.faults import FaultInjector, load_fault_plan
from repro.exceptions import ReproError
from repro.obs import trace as _trace
from repro.obs.log import get_logger

_log = get_logger("cluster.worker")

#: How many times a refused registration is retried before giving up.
DEFAULT_REGISTER_ATTEMPTS = 20

#: Base backoff between registration attempts (grows linearly).
REGISTER_BACKOFF = 0.05


def _wrap_exception(exc: BaseException) -> BaseException:
    """An exception safe to pickle into a ``result`` frame."""
    import pickle

    try:
        pickle.dumps(exc)
    except Exception:
        return ReproError(f"{type(exc).__name__}: {exc}")
    return exc


class ClusterWorker:
    """One worker endpoint; ``run()`` serves until the connection ends."""

    def __init__(
        self,
        host: str,
        port: int,
        capacity: int = 2,
        name: str | None = None,
        encoding: str | None = None,
        faults: FaultInjector | None = None,
        register_attempts: int = DEFAULT_REGISTER_ATTEMPTS,
    ):
        from repro.structures.encoding import resolve_backend

        if capacity < 1:
            raise ReproError("cluster worker capacity must be >= 1")
        self.host = host
        self.port = port
        self.capacity = capacity
        self.name = name or f"worker-{os.getpid()}"
        self.encoding = resolve_backend(encoding)
        self.worker_id: str | None = None
        self.heartbeat_interval = 1.0
        self._faults = faults if faults is not None else FaultInjector()
        self._register_attempts = register_attempts
        #: fingerprint -> resident placed Structure.
        self._structures: dict = {}
        #: (fingerprint, encoding) -> built ExecutionContext.
        self._contexts: dict = {}
        self._executor: ThreadPoolExecutor | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock = asyncio.Lock()
        self._in_flight = 0
        self.jobs_executed = 0

    # ------------------------------------------------------------------
    # Resident shard state
    # ------------------------------------------------------------------
    def _place(self, structures) -> None:
        for structure in structures:
            self._structures[structure.fingerprint()] = structure

    def _unplace(self, fingerprints) -> None:
        for fingerprint in fingerprints:
            self._structures.pop(fingerprint, None)
            for key in [k for k in self._contexts if k[0] == fingerprint]:
                self._contexts.pop(key, None)

    def _apply_delta(self, updates) -> int:
        applied = 0
        for old_fingerprint, delta, new_fingerprint in updates:
            structure = self._structures.pop(old_fingerprint, None)
            migrated_contexts = {}
            for key in [k for k in self._contexts if k[0] == old_fingerprint]:
                context = self._contexts.pop(key)
                migrated = context.apply_delta(delta)
                if migrated.structure.fingerprint() == new_fingerprint:
                    migrated_contexts[
                        (new_fingerprint, key[1])
                    ] = migrated
            if structure is None:
                continue
            new_structure = structure.apply_delta(delta)
            if new_structure.fingerprint() != new_fingerprint:
                # Never keep (let alone serve) drifted data; the next
                # place frame re-ships the truth.
                continue
            self._structures[new_fingerprint] = new_structure
            self._contexts.update(migrated_contexts)
            applied += 1
        return applied

    def _context_for(self, fingerprint, encoding: str | None):
        """``(context, cache_hit)`` for a placed fingerprint."""
        from repro.engine.context import ExecutionContext

        backend = encoding or self.encoding
        key = (fingerprint, backend)
        context = self._contexts.get(key)
        if context is not None:
            return context, True
        structure = self._structures.get(fingerprint)
        if structure is None:
            raise KeyError(fingerprint)
        context = ExecutionContext(structure, encoding=backend)
        self._contexts[key] = context
        return context, False

    # ------------------------------------------------------------------
    # Job execution (runs in the thread pool)
    # ------------------------------------------------------------------
    def _execute_units(self, units, fingerprint, budget, encoding):
        delay = self._faults.execute_delay()
        if delay:
            time.sleep(delay)
        cap = _trace.capture(
            "cluster.execute", units=len(units), worker=self.name
        )
        with cap:
            context, hit = self._context_for(fingerprint, encoding)
            cap.root.set("context_hit", hit)
            out: list = []
            with budget_scope(budget):
                for unit in units:
                    if unit.kind == "count":
                        assert unit.plan is not None
                        out.append(context.count_plan(unit.plan))
                    else:
                        assert unit.sentence is not None
                        out.append(context.sentence_holds(unit.sentence))
        return out, hit, cap.spans

    async def _run_job(self, header: dict, body: bytes) -> None:
        job_id = header.get("job_id")
        loop = asyncio.get_running_loop()
        self._in_flight += 1
        try:
            units, fingerprint, budget, encoding = proto.unpickle_body(body)
            try:
                values, hit, spans = await loop.run_in_executor(
                    self._executor,
                    self._execute_units,
                    units,
                    fingerprint,
                    budget,
                    encoding,
                )
            except KeyError:
                await self._send(
                    {
                        "type": "result",
                        "job_id": job_id,
                        "status": "unplaced",
                    }
                )
                return
            except Exception as exc:
                await self._send(
                    {"type": "result", "job_id": job_id, "status": "error"},
                    proto.pickle_body((_wrap_exception(exc), None)),
                )
                return
            self.jobs_executed += 1
            await self._send(
                {
                    "type": "result",
                    "job_id": job_id,
                    "status": "ok",
                    "context_hit": hit,
                },
                proto.pickle_body((values, spans)),
            )
        finally:
            self._in_flight -= 1

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    async def _send(self, header: dict, body: bytes = b"") -> None:
        assert self._writer is not None
        async with self._write_lock:
            await proto.send_frame(
                self._writer, header, body, faults=self._faults
            )

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(
                self.heartbeat_interval
                + self._faults.heartbeat_delay(self.heartbeat_interval)
            )
            await self._send(
                {
                    "type": "heartbeat",
                    "worker_id": self.worker_id,
                    "in_flight": self._in_flight,
                }
            )

    async def _register(self, reader) -> bool:
        """The registration handshake; ``True`` once accepted."""
        await self._send(
            {
                "type": "register",
                "name": self.name,
                "capacity": self.capacity,
                "pid": os.getpid(),
            }
        )
        frame = await proto.read_frame(reader)
        if frame is None:
            return False
        header, _ = frame
        if header["type"] == "register_refused":
            _log.info(
                "registration refused",
                extra={"worker": self.name, "reason": header.get("reason")},
            )
            return False
        if header["type"] != "registered":
            raise proto.ProtocolError(
                f"expected registered, got {header['type']!r}"
            )
        self.worker_id = header["worker_id"]
        self.heartbeat_interval = float(
            header.get("heartbeat_interval", self.heartbeat_interval)
        )
        return True

    async def run(self) -> None:
        """Connect, register (with backoff on refusal), serve frames."""
        reader = None
        for attempt in range(1, self._register_attempts + 1):
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            self._writer = writer
            if await self._register(reader):
                break
            writer.close()
            self._writer = None
            if attempt == self._register_attempts:
                raise ReproError(
                    f"registration refused {attempt} times; giving up"
                )
            await asyncio.sleep(REGISTER_BACKOFF * attempt)
        assert reader is not None and self._writer is not None
        _log.info(
            "worker registered",
            extra={
                "worker": self.name,
                "worker_id": self.worker_id,
                "capacity": self.capacity,
            },
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.capacity,
            thread_name_prefix=f"cluster-{self.name}",
        )
        heartbeats = asyncio.create_task(self._heartbeat_loop())
        jobs: set[asyncio.Task] = set()
        try:
            while True:
                frame = await proto.read_frame(reader)
                if frame is None:
                    break
                header, body = frame
                kind = header["type"]
                if kind == "execute":
                    task = asyncio.create_task(self._run_job(header, body))
                    jobs.add(task)
                    task.add_done_callback(jobs.discard)
                elif kind == "place":
                    self._place(proto.unpickle_body(body))
                elif kind == "unplace":
                    self._unplace(proto.unpickle_body(body))
                elif kind == "delta":
                    self._apply_delta(proto.unpickle_body(body))
                elif kind == "heartbeat_ack":
                    pass
                elif kind == "goodbye":
                    break
                else:
                    raise proto.ProtocolError(
                        f"worker cannot handle frame type {kind!r}"
                    )
        finally:
            heartbeats.cancel()
            for task in jobs:
                task.cancel()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._writer.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Start one cluster worker and connect it to a "
        "coordinator.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=2,
        help="concurrent shard-unit jobs this worker executes (default 2)",
    )
    parser.add_argument("--name", default=None, help="worker display name")
    parser.add_argument(
        "--encoding",
        default=None,
        help="default encoding backend for built contexts "
        "(object|array|numpy|auto; jobs may override per call)",
    )
    args = parser.parse_args(argv)
    host, separator, port = args.connect.rpartition(":")
    if not separator or not port.isdigit():
        parser.error("--connect must be HOST:PORT")
    worker = ClusterWorker(
        host or "127.0.0.1",
        int(port),
        capacity=args.capacity,
        name=args.name,
        encoding=args.encoding,
        faults=FaultInjector(load_fault_plan()),
    )
    try:
        asyncio.run(worker.run())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
