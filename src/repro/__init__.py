"""repro: counting answers to existential positive queries.

A from-scratch implementation of the algorithms and complexity
classification of

    Hubie Chen and Stefan Mengel,
    "Counting Answers to Existential Positive Queries:
     A Complexity Classification", PODS 2016 (arXiv:1601.03240).

The package counts the answers to unions of conjunctive queries
(existential positive formulas) on finite relational structures,
implements the paper's equivalence theorem (EP-to-PP reductions via
inclusion-exclusion and Vandermonde systems), and classifies query
classes into the trichotomy FPT / p-Clique-equivalent / p-#Clique-hard.

Quickstart
----------
>>> from repro import Structure, count_answers
>>> graph = Structure.from_relations({"E": [(1, 2), (2, 3), (3, 1)]})
>>> count_answers("exists z. (E(x, z) & E(z, y))", graph)
3
"""

from repro.budget import CostBudget
from repro.exceptions import BudgetExceeded, PolicyRejection, ReproError
from repro.logic import (
    Atom,
    EPFormula,
    PPFormula,
    QueryBuilder,
    RelationSymbol,
    Signature,
    UnionQueryBuilder,
    Variable,
    parse_formula,
    parse_query,
    pp_from_atom_specs,
)
from repro.structures import (
    Structure,
    ShardedStructure,
    StructureBuilder,
    StructureDelta,
    direct_product,
    disjoint_union,
    random_cluster_graph,
    random_graph,
    random_structure,
    shard_structure,
)
from repro.core import (
    Case,
    Classification,
    classify,
    classify_ep_class,
    classify_pp_class,
    classify_query,
    count_answers,
    count_answers_all_strategies,
    count_answers_sharded,
    counting_equivalent,
    plus_set,
    semi_counting_equivalent,
    star_decomposition,
)
from repro.db import ConjunctiveQuery, Database, Relation, UnionOfConjunctiveQueries
from repro.engine import (
    CountingPlan,
    Engine,
    EngineStats,
    ExecutionContext,
    ExecutionPolicy,
    PlanProfile,
    StructureRegistry,
    UnknownStructureError,
    VersionConflict,
    compile_plan,
    count_many,
    default_engine,
    execute_sharded,
)

__version__ = "1.10.0"

__all__ = [
    "ReproError",
    "BudgetExceeded",
    "PolicyRejection",
    "CostBudget",
    "Atom",
    "EPFormula",
    "PPFormula",
    "QueryBuilder",
    "RelationSymbol",
    "Signature",
    "UnionQueryBuilder",
    "Variable",
    "parse_formula",
    "parse_query",
    "pp_from_atom_specs",
    "Structure",
    "ShardedStructure",
    "StructureBuilder",
    "StructureDelta",
    "direct_product",
    "disjoint_union",
    "random_cluster_graph",
    "random_graph",
    "random_structure",
    "shard_structure",
    "Case",
    "Classification",
    "classify",
    "classify_ep_class",
    "classify_pp_class",
    "classify_query",
    "count_answers",
    "count_answers_all_strategies",
    "count_answers_sharded",
    "counting_equivalent",
    "plus_set",
    "semi_counting_equivalent",
    "star_decomposition",
    "ConjunctiveQuery",
    "Database",
    "Relation",
    "UnionOfConjunctiveQueries",
    "CountingPlan",
    "Engine",
    "EngineStats",
    "ExecutionContext",
    "ExecutionPolicy",
    "PlanProfile",
    "StructureRegistry",
    "UnknownStructureError",
    "VersionConflict",
    "compile_plan",
    "count_many",
    "default_engine",
    "execute_sharded",
    "__version__",
]
