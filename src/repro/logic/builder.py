"""A fluent builder for conjunctive and existential positive queries.

The parser in :mod:`repro.logic.parser` is convenient for literal
queries; the builder is convenient when queries are constructed
programmatically (e.g. by the workload generators).

Example
-------
>>> from repro.logic.builder import QueryBuilder
>>> query = (
...     QueryBuilder(liberal=["x", "y"])
...     .atom("E", "x", "z")
...     .atom("E", "z", "y")
...     .exists("z")
...     .build_pp()
... )
>>> sorted(v.name for v in query.liberal)
['x', 'y']
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import FormulaError
from repro.logic.ep import EPFormula
from repro.logic.formulas import AtomicFormula, Exists, Formula, Or, conjunction
from repro.logic.pp import PPFormula
from repro.logic.terms import Atom, Variable, VariableLike, as_variables


class QueryBuilder:
    """Accumulates atoms and quantifiers for a single conjunctive query.

    Call :meth:`atom` repeatedly, mark quantified variables with
    :meth:`exists`, then :meth:`build_pp` (a prenex pp-formula) or
    :meth:`build_ep` (the same query wrapped as an EP formula).
    """

    def __init__(self, liberal: Iterable[VariableLike] | None = None):
        self._atoms: list[Atom] = []
        self._quantified: list[Variable] = []
        self._liberal: tuple[Variable, ...] | None = (
            as_variables(liberal) if liberal is not None else None
        )

    def atom(self, relation: str, *arguments: VariableLike) -> "QueryBuilder":
        """Add an atom ``relation(arguments...)`` to the conjunction."""
        self._atoms.append(Atom(relation, arguments))
        return self

    def exists(self, *variables: VariableLike) -> "QueryBuilder":
        """Mark variables as existentially quantified."""
        for variable in as_variables(variables):
            if variable not in self._quantified:
                self._quantified.append(variable)
        return self

    def liberal(self, *variables: VariableLike) -> "QueryBuilder":
        """Declare the liberal variables explicitly (overrides the default)."""
        self._liberal = as_variables(variables)
        return self

    def build_pp(self) -> PPFormula:
        """Build the accumulated query as a prenex pp-formula."""
        quantified = frozenset(self._quantified)
        if self._liberal is not None:
            clash = set(self._liberal) & quantified
            if clash:
                raise FormulaError(
                    f"variables {sorted(v.name for v in clash)} are both liberal and quantified"
                )
            formula = PPFormula.from_atoms(self._atoms, quantified=quantified)
            return formula.with_liberal(set(self._liberal) | formula.free_variables)
        return PPFormula.from_atoms(self._atoms, quantified=quantified)

    def build_ep(self) -> EPFormula:
        """Build the accumulated query as an EP formula."""
        return EPFormula.from_pp(self.build_pp())


class UnionQueryBuilder:
    """Builds a union of conjunctive queries disjunct by disjunct.

    Example
    -------
    >>> union = (
    ...     UnionQueryBuilder(liberal=["x", "y"])
    ...     .disjunct(lambda q: q.atom("E", "x", "y"))
    ...     .disjunct(lambda q: q.atom("E", "y", "x"))
    ...     .build()
    ... )
    >>> len(union.disjuncts())
    2
    """

    def __init__(self, liberal: Iterable[VariableLike]):
        self._liberal = as_variables(liberal)
        self._disjuncts: list[PPFormula] = []

    def disjunct(self, configure) -> "UnionQueryBuilder":
        """Add one conjunctive disjunct via a configuration callback.

        The callback receives a fresh :class:`QueryBuilder` whose liberal
        variables are the union query's liberal variables.
        """
        builder = QueryBuilder(liberal=self._liberal)
        configure(builder)
        self._disjuncts.append(builder.build_pp())
        return self

    def add_pp(self, formula: PPFormula) -> "UnionQueryBuilder":
        """Add an existing pp-formula as a disjunct (re-liberalized)."""
        self._disjuncts.append(formula.with_liberal(set(self._liberal) | formula.free_variables))
        return self

    def build(self) -> EPFormula:
        """Build the union of conjunctive queries as an EP formula."""
        if not self._disjuncts:
            raise FormulaError("a union query needs at least one disjunct")
        return EPFormula.from_disjuncts(self._disjuncts)


def pp_from_atom_specs(
    specs: Sequence[tuple[str, Sequence[str]]],
    liberal: Iterable[str] | None = None,
    quantified: Iterable[str] | None = None,
) -> PPFormula:
    """Build a pp-formula from ``(relation, (var, ...))`` pairs.

    A compact constructor used heavily by tests and workload generators::

        pp_from_atom_specs([("E", ("x", "y")), ("E", ("y", "z"))], liberal=["x", "z"])
    """
    atoms = [Atom(relation, variables) for relation, variables in specs]
    return PPFormula.from_atoms(atoms, liberal=liberal, quantified=quantified)
