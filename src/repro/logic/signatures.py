"""Relational signatures (vocabularies).

A *signature* (also called a vocabulary) is a finite set of relation
symbols, each with a fixed arity.  Following the paper, signatures are
purely relational: there are no constant or function symbols, and
equality is not built in.

The two classes here are deliberately small value objects:

* :class:`RelationSymbol` -- a named relation symbol with an arity.
* :class:`Signature` -- an immutable collection of relation symbols,
  addressable by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SignatureError


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a name and an arity.

    Parameters
    ----------
    name:
        The symbol's name, e.g. ``"E"`` for an edge relation.
    arity:
        The number of arguments the relation takes; must be at least 1.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("relation symbol name must be non-empty")
        if self.arity < 1:
            raise SignatureError(
                f"relation symbol {self.name!r} must have arity >= 1, got {self.arity}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}/{self.arity}"


class Signature:
    """An immutable relational signature.

    A signature maps relation names to :class:`RelationSymbol` objects.
    Signatures support set-like union and comparison, which the library
    uses when combining formulas or structures over different (but
    compatible) vocabularies.
    """

    __slots__ = ("_symbols",)

    def __init__(self, symbols: Iterable[RelationSymbol] = ()):
        by_name: dict[str, RelationSymbol] = {}
        for symbol in symbols:
            existing = by_name.get(symbol.name)
            if existing is not None and existing.arity != symbol.arity:
                raise SignatureError(
                    f"conflicting arities for relation {symbol.name!r}: "
                    f"{existing.arity} and {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        self._symbols: dict[str, RelationSymbol] = dict(sorted(by_name.items()))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Signature":
        """Build a signature from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    @classmethod
    def graph(cls, name: str = "E") -> "Signature":
        """The signature of directed graphs: a single binary relation."""
        return cls([RelationSymbol(name, 2)])

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._symbols

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {name!r}") from None

    def get(self, name: str) -> RelationSymbol | None:
        """Return the symbol named ``name`` or ``None`` if absent."""
        return self._symbols.get(name)

    def arity(self, name: str) -> int:
        """Return the arity of the relation named ``name``."""
        return self[name].arity

    @property
    def names(self) -> tuple[str, ...]:
        """The relation names in this signature, sorted."""
        return tuple(self._symbols)

    @property
    def symbols(self) -> tuple[RelationSymbol, ...]:
        """The relation symbols in this signature, sorted by name."""
        return tuple(self._symbols.values())

    @property
    def max_arity(self) -> int:
        """The largest arity among the symbols (0 for an empty signature)."""
        if not self._symbols:
            return 0
        return max(symbol.arity for symbol in self._symbols.values())

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def union(self, other: "Signature") -> "Signature":
        """The union of two signatures.

        Raises :class:`SignatureError` if the signatures disagree on the
        arity of a shared relation name.
        """
        return Signature(list(self) + list(other))

    def __or__(self, other: "Signature") -> "Signature":
        return self.union(other)

    def is_subsignature_of(self, other: "Signature") -> bool:
        """True if every symbol of this signature occurs in ``other``."""
        return all(other.get(s.name) == s for s in self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(tuple(self._symbols.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(s) for s in self)
        return f"Signature({{{inner}}})"
