"""Prenex primitive positive formulas.

Following Chandra and Merlin, a prenex pp-formula with liberal variables
``S`` is represented as a pair ``(A, S)`` where ``A`` is a relational
structure whose universe consists of the variables of the formula
(liberal and quantified) and whose tuples are the atoms.  An *answer* of
``(A, S)`` on a structure ``B`` is a map ``f : S -> B`` that extends to a
homomorphism from ``A`` to ``B``.

The liberal variables (Section 2.1 of the paper) are the variables the
count is taken over.  They always include the free variables but may be
strictly larger: a liberal variable that occurs in no atom is
unconstrained and multiplies the count by ``|B|``.

:class:`PPFormula` is immutable; all "modifying" operations return new
formulas.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import FormulaError, LiberalVariableError, SignatureError
from repro.logic.formulas import (
    AtomicFormula,
    Exists,
    Formula,
    PrenexDisjunct,
    Truth,
    conjunction,
)
from repro.logic.signatures import Signature
from repro.logic.terms import Atom, Variable, VariableLike, as_variable, as_variables, atoms_variables
from repro.structures.cores import augmented_structure, core, strip_augmentation
from repro.structures.graphs import component_substructures, gaifman_graph
from repro.structures.homomorphism import has_homomorphism
from repro.structures.structure import Structure

import networkx as nx


class PPFormula:
    """A prenex primitive positive formula with liberal variables.

    Parameters
    ----------
    structure:
        The structure view ``A`` of the formula: universe = variables,
        tuples = atoms.  Every element of the universe must be a
        :class:`~repro.logic.terms.Variable`.
    liberal:
        The liberal variables ``S``; must be a subset of the universe
        (isolated elements are added automatically when they are not).

    Notes
    -----
    * ``free_variables`` is the set of liberal variables that occur in at
      least one atom.
    * ``quantified_variables`` is ``universe - liberal``.
    * Formulas compare equal when they have the same structure and the
      same liberal set (syntactic equality up to atom ordering).
    """

    __slots__ = ("_structure", "_liberal", "_hash")

    def __init__(self, structure: Structure, liberal: Iterable[VariableLike]):
        liberal_set = frozenset(as_variables(liberal))
        for element in structure.universe:
            if not isinstance(element, Variable):
                raise FormulaError(
                    f"pp-formula universes must consist of Variables, got {element!r}"
                )
        missing = liberal_set - structure.universe
        if missing:
            structure = Structure(
                structure.signature,
                structure.universe | missing,
                structure.relations,
            )
        self._structure = structure
        self._liberal = liberal_set
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_atoms(
        cls,
        atoms: Iterable[Atom],
        liberal: Iterable[VariableLike] | None = None,
        quantified: Iterable[VariableLike] | None = None,
        signature: Signature | None = None,
    ) -> "PPFormula":
        """Build a pp-formula from a collection of atoms.

        Exactly one of ``liberal`` or ``quantified`` should normally be
        given.  If ``liberal`` is given, the quantified variables are the
        remaining atom variables.  If ``quantified`` is given, the
        liberal variables are the remaining atom variables.  If neither
        is given, the formula is quantifier-free and all variables are
        liberal.
        """
        atom_list = list(atoms)
        variables = atoms_variables(atom_list)
        if liberal is not None and quantified is not None:
            liberal_set = frozenset(as_variables(liberal))
            quantified_set = frozenset(as_variables(quantified))
            if liberal_set & quantified_set:
                raise LiberalVariableError(
                    "a variable cannot be both liberal and quantified"
                )
        elif liberal is not None:
            liberal_set = frozenset(as_variables(liberal))
            quantified_set = variables - liberal_set
        elif quantified is not None:
            quantified_set = frozenset(as_variables(quantified))
            liberal_set = variables - quantified_set
        else:
            liberal_set = variables
            quantified_set = frozenset()
        universe = variables | liberal_set | quantified_set
        inferred_signature = signature
        if inferred_signature is None:
            from repro.logic.terms import atoms_signature

            inferred_signature = atoms_signature(atom_list)
        else:
            for a in atom_list:
                a.check_against(inferred_signature)
        relations: dict[str, list[tuple[Variable, ...]]] = {
            name: [] for name in inferred_signature.names
        }
        for a in atom_list:
            relations[a.relation].append(a.arguments)
        structure = Structure(inferred_signature, universe, relations)
        return cls(structure, liberal_set)

    @classmethod
    def from_prenex_disjunct(
        cls,
        disjunct: PrenexDisjunct,
        liberal: Iterable[VariableLike],
        signature: Signature | None = None,
    ) -> "PPFormula":
        """Build a pp-formula from one disjunct of a prenex rewriting."""
        liberal_set = frozenset(as_variables(liberal))
        clash = liberal_set & disjunct.quantified
        if clash:
            raise LiberalVariableError(
                f"variables {sorted(v.name for v in clash)} are both liberal and quantified"
            )
        formula = cls.from_atoms(
            disjunct.atoms, quantified=disjunct.quantified, signature=signature
        )
        return formula.with_liberal(liberal_set | formula.free_variables)

    @classmethod
    def truth(cls, liberal: Iterable[VariableLike] = (), signature: Signature | None = None) -> "PPFormula":
        """The pp-formula with no atoms (the empty conjunction)."""
        sig = signature or Signature()
        liberal_set = frozenset(as_variables(liberal))
        return cls(Structure(sig, liberal_set, {}), liberal_set)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def structure(self) -> Structure:
        """The structure view ``A`` of the formula."""
        return self._structure

    @property
    def liberal(self) -> frozenset[Variable]:
        """The liberal variables ``S``."""
        return self._liberal

    @property
    def signature(self) -> Signature:
        """The signature of the formula."""
        return self._structure.signature

    @property
    def variables(self) -> frozenset[Variable]:
        """All variables (the universe of the structure view)."""
        return frozenset(self._structure.universe)

    @property
    def quantified_variables(self) -> frozenset[Variable]:
        """The existentially quantified variables."""
        return frozenset(self._structure.universe) - self._liberal

    @property
    def free_variables(self) -> frozenset[Variable]:
        """The liberal variables that occur in at least one atom."""
        return self._liberal & self._structure.elements_in_tuples()

    @property
    def unconstrained_liberal_variables(self) -> frozenset[Variable]:
        """Liberal variables occurring in no atom (each multiplies the count by |B|)."""
        return self._liberal - self._structure.elements_in_tuples()

    def atoms(self) -> tuple[Atom, ...]:
        """The atoms of the formula, in a deterministic order."""
        out = []
        for name, t in self._structure.tuples():
            out.append(Atom(name, t))
        return tuple(out)

    @property
    def atom_count(self) -> int:
        """The number of atoms in the formula."""
        return self._structure.total_tuples

    def is_sentence(self) -> bool:
        """True if the formula has no free variables."""
        return not self.free_variables

    def is_free(self) -> bool:
        """True if the formula has at least one free variable."""
        return bool(self.free_variables)

    def is_liberal(self) -> bool:
        """True if the liberal-variable set is non-empty."""
        return bool(self._liberal)

    def is_quantifier_free(self) -> bool:
        """True if the formula has no quantified variables."""
        return not self.quantified_variables

    def max_arity(self) -> int:
        """The largest relation arity used by the formula."""
        return self.signature.max_arity

    # ------------------------------------------------------------------
    # Derived formulas
    # ------------------------------------------------------------------
    def with_liberal(self, liberal: Iterable[VariableLike]) -> "PPFormula":
        """Return the same formula with a different liberal-variable set.

        The new set must contain the free variables and be disjoint from
        the quantified variables.
        """
        liberal_set = frozenset(as_variables(liberal))
        if not self.free_variables <= liberal_set:
            missing = self.free_variables - liberal_set
            raise LiberalVariableError(
                f"liberal variables must include free variables; missing "
                f"{sorted(v.name for v in missing)}"
            )
        clash = liberal_set & self.quantified_variables
        if clash:
            raise LiberalVariableError(
                f"variables {sorted(v.name for v in clash)} are already quantified"
            )
        universe = self._structure.universe | liberal_set
        structure = Structure(self.signature, universe, self._structure.relations)
        return PPFormula(structure, liberal_set)

    def rename(self, mapping: Mapping[VariableLike, VariableLike]) -> "PPFormula":
        """Rename variables (liberal and quantified) injectively."""
        typed = {as_variable(k): as_variable(v) for k, v in mapping.items()}
        renamed_structure = self._structure.rename(typed)
        renamed_liberal = frozenset(typed.get(v, v) for v in self._liberal)
        return PPFormula(renamed_structure, renamed_liberal)

    def conjoin(self, other: "PPFormula") -> "PPFormula":
        """The conjunction of two pp-formulas over the same liberal set.

        Shared variables are identified; the quantified variables of the
        operands must not clash with each other or with the other
        operand's liberal variables (callers standardize apart first if
        needed -- the inclusion-exclusion machinery always conjoins
        disjuncts of the same formula, whose bound variables are already
        distinct).
        """
        if self._liberal != other._liberal:
            raise LiberalVariableError(
                "can only conjoin pp-formulas with identical liberal variables"
            )
        clash = (self.quantified_variables & other._liberal) | (
            other.quantified_variables & self._liberal
        )
        if clash:
            raise LiberalVariableError(
                f"quantified variables {sorted(v.name for v in clash)} clash with liberal variables"
            )
        signature = self.signature | other.signature
        universe = self._structure.universe | other._structure.universe
        relations: dict[str, set[tuple[Variable, ...]]] = {
            name: set() for name in signature.names
        }
        for formula in (self, other):
            for name, tuples in formula._structure.relations.items():
                relations[name] |= tuples
        structure = Structure(signature, universe, relations)
        return PPFormula(structure, self._liberal)

    def with_signature(self, signature: Signature) -> "PPFormula":
        """Reinterpret the formula over a larger signature."""
        return PPFormula(self._structure.with_signature(signature), self._liberal)

    def standardize_apart(self, taken: Iterable[Variable], prefix: str = "q") -> "PPFormula":
        """Rename quantified variables away from the names in ``taken``."""
        taken_names = {v.name for v in taken} | {v.name for v in self._liberal}
        mapping: dict[Variable, Variable] = {}
        counter = 0
        for variable in sorted(self.quantified_variables, key=lambda v: v.name):
            if variable.name in taken_names:
                while True:
                    candidate = f"{prefix}{counter}"
                    counter += 1
                    if candidate not in taken_names and Variable(candidate) not in self.variables:
                        break
                mapping[variable] = Variable(candidate)
                taken_names.add(candidate)
        if not mapping:
            return self
        return self.rename(mapping)

    # ------------------------------------------------------------------
    # Structural notions from the paper
    # ------------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """The Gaifman graph of the formula (vertices ``A ∪ S``)."""
        return gaifman_graph(self._structure, extra_vertices=self._liberal)

    def components(self) -> list["PPFormula"]:
        """The components of the formula (Section 2.1).

        Each component is the restriction of the formula to one connected
        component of its graph, with the liberal variables restricted to
        that component.  Answer counts multiply over components.
        """
        pieces = component_substructures(self._structure, self._liberal)
        return [PPFormula(sub, lib) for sub, lib in pieces]

    def liberal_components(self) -> list["PPFormula"]:
        """Components that contain at least one liberal variable."""
        return [c for c in self.components() if c.is_liberal()]

    def non_liberal_components(self) -> list["PPFormula"]:
        """Components with no liberal variable (pp-sentences)."""
        return [c for c in self.components() if not c.is_liberal()]

    def hat(self) -> "PPFormula":
        """The formula ``φ̂``: drop every atom of a non-liberal component.

        The quantified variables of dropped components remain in the
        universe (they become unconstrained), matching Example 5.8 of
        the paper.  On any structure where the original formula has an
        answer, ``φ`` and ``φ̂`` have the same number of answers
        (Proposition 5.10).
        """
        liberal_component_vars: set[Variable] = set()
        for component in self.components():
            if component.is_liberal():
                liberal_component_vars |= component.variables
        relations = {
            name: [t for t in tuples if set(t) <= liberal_component_vars]
            for name, tuples in self._structure.relations.items()
        }
        structure = Structure(self.signature, self._structure.universe, relations)
        return PPFormula(structure, self._liberal)

    def augmented(self) -> Structure:
        """The augmented structure ``aug(A, S)``."""
        return augmented_structure(self._structure, self._liberal)

    def core(self) -> "PPFormula":
        """The core of the formula.

        Computes the core of the augmented structure (so liberal
        variables are never collapsed) and strips the augmentation.  The
        result is a logically equivalent formula with a minimal set of
        quantified variables.
        """
        cored = strip_augmentation(core(self.augmented()))
        return PPFormula(cored, self._liberal)

    def entails(self, other: "PPFormula") -> bool:
        """Logical entailment between pp-formulas with equal liberal sets.

        By Theorem 2.3, ``self`` entails ``other`` iff there is a
        homomorphism from ``aug(other)`` to ``aug(self)``.
        """
        if self._liberal != other._liberal:
            raise LiberalVariableError(
                "entailment is defined for formulas with the same liberal variables"
            )
        common = self.signature | other.signature
        return has_homomorphism(
            other.with_signature(common).augmented(),
            self.with_signature(common).augmented(),
        )

    def logically_equivalent(self, other: "PPFormula") -> bool:
        """Logical equivalence (mutual entailment, Theorem 2.3)."""
        return self.entails(other) and other.entails(self)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_ast(self) -> Formula:
        """Convert back to a formula AST (``exists ... (atom & ... & atom)``)."""
        atom_nodes = [AtomicFormula(a) for a in self.atoms()]
        body = conjunction(atom_nodes) if atom_nodes else Truth()
        quantified = sorted(self.quantified_variables, key=lambda v: v.name)
        if quantified:
            return Exists(quantified, body)
        return body

    # ------------------------------------------------------------------
    # Equality, hashing, display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PPFormula):
            return NotImplemented
        return self._structure == other._structure and self._liberal == other._liberal

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._structure, self._liberal))
        return self._hash

    def __str__(self) -> str:
        liberal = ", ".join(sorted(v.name for v in self._liberal))
        quantified = " ".join(sorted(v.name for v in self.quantified_variables))
        atoms = " & ".join(str(a) for a in self.atoms()) or "T"
        prefix = f"exists {quantified}. " if quantified else ""
        return f"phi({liberal}) = {prefix}{atoms}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PPFormula({self!s})"


def conjoin_all(formulas: Sequence[PPFormula]) -> PPFormula:
    """Conjoin a non-empty sequence of pp-formulas with equal liberal sets."""
    if not formulas:
        raise FormulaError("cannot conjoin zero formulas")
    result = formulas[0]
    for formula in formulas[1:]:
        result = result.conjoin(formula)
    return result
