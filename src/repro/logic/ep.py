"""Existential positive formulas with liberal variables.

:class:`EPFormula` pairs an EP formula AST with a set of liberal
variables (a superset of its free variables) and exposes the syntactic
transformations the paper relies on:

* the **disjunctive form**: a list of prenex pp-formulas (all sharing
  the liberal set) whose disjunction is logically equivalent to the
  formula;
* the **normalized form**: the disjunctive form with every disjunct
  removed that logically entails some *sentence* disjunct (this is the
  normalization of Section 2.1);
* the **all-free part** ``φ_af``: the disjunction of the free disjuncts
  (those with at least one free variable), used by the general
  construction of Section 5.4.

An EP formula is semantically a union of conjunctive queries; the
:mod:`repro.db` package offers a database-flavored wrapper on top of
this class.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import FormulaError, LiberalVariableError
from repro.logic.formulas import (
    Formula,
    Or,
    to_prenex_disjuncts,
)
from repro.logic.pp import PPFormula
from repro.logic.signatures import Signature
from repro.logic.terms import Variable, VariableLike, as_variables


class EPFormula:
    """An existential positive formula together with its liberal variables.

    Parameters
    ----------
    ast:
        The formula, built from the node classes in
        :mod:`repro.logic.formulas` (atoms, ``&``, ``|``, ``exists``).
    liberal:
        The liberal variables; defaults to the free variables of the
        formula.  Must be a superset of the free variables.
    signature:
        Optional explicit signature.  Defaults to the smallest signature
        over which the formula is well-formed; an explicit signature is
        useful when disjuncts mention different relations but the
        formula should be read over a fixed vocabulary.
    """

    __slots__ = ("_ast", "_liberal", "_signature", "_disjuncts_cache")

    def __init__(
        self,
        ast: Formula,
        liberal: Iterable[VariableLike] | None = None,
        signature: Signature | None = None,
    ):
        if not isinstance(ast, Formula):
            raise FormulaError(f"{ast!r} is not a Formula")
        self._ast = ast
        free = ast.free_variables()
        if liberal is None:
            liberal_set = free
        else:
            liberal_set = frozenset(as_variables(liberal))
            if not free <= liberal_set:
                missing = free - liberal_set
                raise LiberalVariableError(
                    "liberal variables must include all free variables; missing "
                    f"{sorted(v.name for v in missing)}"
                )
        bound = ast.all_variables() - free
        clash = liberal_set & bound
        if clash:
            raise LiberalVariableError(
                f"variables {sorted(v.name for v in clash)} are both liberal and quantified"
            )
        self._liberal = liberal_set
        self._signature = (signature or Signature()) | ast.signature()
        self._disjuncts_cache: tuple[PPFormula, ...] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pp(cls, formula: PPFormula) -> "EPFormula":
        """Wrap a single pp-formula as an EP formula."""
        return cls(formula.to_ast(), liberal=formula.liberal, signature=formula.signature)

    @classmethod
    def from_disjuncts(cls, disjuncts: Sequence[PPFormula]) -> "EPFormula":
        """Build a disjunctive EP formula from pp-formula disjuncts.

        All disjuncts must have the same liberal-variable set; their
        quantified variables are standardized apart automatically.
        """
        if not disjuncts:
            raise FormulaError("an EP formula needs at least one disjunct")
        liberal = disjuncts[0].liberal
        for formula in disjuncts[1:]:
            if formula.liberal != liberal:
                raise LiberalVariableError(
                    "all disjuncts must share the same liberal variables"
                )
        signature = disjuncts[0].signature
        for formula in disjuncts[1:]:
            signature = signature | formula.signature
        taken: set[Variable] = set(liberal)
        standardized: list[PPFormula] = []
        for index, formula in enumerate(disjuncts):
            apart = formula.standardize_apart(taken, prefix=f"q{index}_")
            taken |= apart.variables
            standardized.append(apart)
        if len(standardized) == 1:
            ast = standardized[0].to_ast()
        else:
            ast = Or.of(*(f.to_ast() for f in standardized))
        return cls(ast, liberal=liberal, signature=signature)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def ast(self) -> Formula:
        """The underlying formula AST."""
        return self._ast

    @property
    def liberal(self) -> frozenset[Variable]:
        """The liberal variables the count is taken over."""
        return self._liberal

    @property
    def free_variables(self) -> frozenset[Variable]:
        """The free variables of the formula."""
        return self._ast.free_variables()

    @property
    def signature(self) -> Signature:
        """The signature of the formula."""
        return self._signature

    def is_primitive_positive(self) -> bool:
        """True if the formula contains no disjunction."""
        return self._ast.is_primitive_positive()

    def is_sentence(self) -> bool:
        """True if the formula has no free variables."""
        return self._ast.is_sentence()

    def max_arity(self) -> int:
        """The largest relation arity used by the formula."""
        return self._signature.max_arity

    # ------------------------------------------------------------------
    # Disjunctive forms
    # ------------------------------------------------------------------
    def disjuncts(self) -> tuple[PPFormula, ...]:
        """The prenex pp-formula disjuncts of the formula.

        Every disjunct carries the formula's liberal-variable set and its
        full signature, so answer sets of different disjuncts are over
        the same variables and vocabulary (cf. Example 2.1: getting this
        wrong breaks inclusion-exclusion).
        """
        if self._disjuncts_cache is None:
            pieces = to_prenex_disjuncts(self._ast)
            out = []
            for piece in pieces:
                formula = PPFormula.from_prenex_disjunct(piece, liberal=self._liberal)
                out.append(formula.with_signature(formula.signature | self._signature))
            self._disjuncts_cache = tuple(out)
        return self._disjuncts_cache

    def free_disjuncts(self) -> tuple[PPFormula, ...]:
        """The disjuncts that have at least one free variable."""
        return tuple(d for d in self.disjuncts() if d.is_free())

    def sentence_disjuncts(self) -> tuple[PPFormula, ...]:
        """The disjuncts with no free variables (pp-sentences)."""
        return tuple(d for d in self.disjuncts() if d.is_sentence())

    def is_all_free(self) -> bool:
        """True if every disjunct is free (Section 5.3's special case)."""
        return all(d.is_free() for d in self.disjuncts())

    def normalized_disjuncts(self) -> tuple[PPFormula, ...]:
        """A normalized, logically equivalent list of disjuncts.

        Normalization (Section 2.1) removes every disjunct that logically
        entails some *other* sentence disjunct: whenever that sentence
        disjunct is true the entailing disjunct adds nothing, and the
        result satisfies the paper's normalization condition (no
        homomorphism from a sentence disjunct's augmented structure into
        any other disjunct's).  Duplicate logically-equivalent sentence
        disjuncts collapse to one.
        """
        disjuncts = list(self.disjuncts())
        kept = list(disjuncts)
        changed = True
        while changed:
            changed = False
            sentences = [d for d in kept if d.is_sentence()]
            for sentence in sentences:
                if sentence not in kept:
                    continue
                for other in list(kept):
                    if other is sentence:
                        continue
                    if other.entails(sentence):
                        kept.remove(other)
                        changed = True
        return tuple(kept)

    def normalized(self) -> "EPFormula":
        """A logically equivalent normalized EP formula."""
        return EPFormula.from_disjuncts(list(self.normalized_disjuncts()))

    def all_free_part(self) -> "EPFormula | None":
        """The all-free part ``φ_af``: the disjunction of the free disjuncts.

        Returns ``None`` when the formula has no free disjunct (then the
        formula is a disjunction of sentences).
        """
        free = self.free_disjuncts()
        if not free:
            return None
        return EPFormula.from_disjuncts(list(free))

    def to_pp(self) -> PPFormula:
        """Convert to a single pp-formula; requires a disjunction-free formula."""
        disjuncts = self.disjuncts()
        if len(disjuncts) != 1:
            raise FormulaError(
                "formula is not primitive positive: it has "
                f"{len(disjuncts)} disjuncts"
            )
        return disjuncts[0]

    # ------------------------------------------------------------------
    # Display and equality
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EPFormula):
            return NotImplemented
        return self._ast == other._ast and self._liberal == other._liberal

    def __hash__(self) -> int:
        return hash((self._ast, self._liberal))

    def __str__(self) -> str:
        liberal = ", ".join(sorted(v.name for v in self._liberal))
        return f"phi({liberal}) = {self._ast}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EPFormula({self!s})"
