"""Logic substrate: signatures, variables, formulas and their normal forms."""

from repro.logic.signatures import RelationSymbol, Signature
from repro.logic.terms import Atom, Variable, as_variable, as_variables
from repro.logic.formulas import (
    And,
    AtomicFormula,
    Exists,
    Formula,
    Or,
    PrenexDisjunct,
    Truth,
    atom,
    conjunction,
    disjunction,
    to_prenex_disjuncts,
)
from repro.logic.pp import PPFormula, conjoin_all
from repro.logic.ep import EPFormula
from repro.logic.parser import parse_formula, parse_query
from repro.logic.builder import QueryBuilder, UnionQueryBuilder, pp_from_atom_specs

__all__ = [
    "RelationSymbol",
    "Signature",
    "Atom",
    "Variable",
    "as_variable",
    "as_variables",
    "And",
    "AtomicFormula",
    "Exists",
    "Formula",
    "Or",
    "PrenexDisjunct",
    "Truth",
    "atom",
    "conjunction",
    "disjunction",
    "to_prenex_disjuncts",
    "PPFormula",
    "conjoin_all",
    "EPFormula",
    "parse_formula",
    "parse_query",
    "QueryBuilder",
    "UnionQueryBuilder",
    "pp_from_atom_specs",
]
