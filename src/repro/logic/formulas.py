"""The existential positive formula AST.

Existential positive (EP) formulas are first-order formulas built from
atoms, conjunction, disjunction and existential quantification.  This
module provides a small immutable AST for them:

* :class:`AtomicFormula` -- a relation applied to variables,
* :class:`Truth` -- the empty conjunction (always true),
* :class:`And` / :class:`Or` -- n-ary conjunction / disjunction,
* :class:`Exists` -- existential quantification over a tuple of variables.

The AST intentionally supports *only* the existential positive fragment:
there is no negation, universal quantification or equality, matching the
fragment the paper classifies.

The key derived operation is :func:`to_prenex_disjuncts`, which rewrites
an arbitrary EP formula into a logically equivalent disjunction of
prenex primitive positive formulas (sets of atoms plus quantified
variables), standardizing bound variables apart so that no variable is
both quantified and free.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import FormulaError
from repro.logic.signatures import Signature
from repro.logic.terms import Atom, Variable, VariableLike, as_variable, as_variables, atoms_signature


class Formula(ABC):
    """Base class of existential positive formula nodes."""

    __slots__ = ()

    # -- structural accessors ------------------------------------------------
    @abstractmethod
    def free_variables(self) -> frozenset[Variable]:
        """The free variables of the formula."""

    @abstractmethod
    def all_variables(self) -> frozenset[Variable]:
        """All variables occurring in the formula (free or bound)."""

    @abstractmethod
    def atoms(self) -> tuple[Atom, ...]:
        """All atoms occurring anywhere in the formula."""

    @abstractmethod
    def rename_free(self, mapping: dict[Variable, Variable]) -> "Formula":
        """Rename free variables according to ``mapping`` (capture-avoiding
        only in the sense that bound occurrences are never renamed)."""

    @abstractmethod
    def _pretty(self, parent_precedence: int) -> str:
        """Render with minimal parentheses; internal helper for ``__str__``."""

    # -- convenience ----------------------------------------------------------
    def signature(self) -> Signature:
        """The smallest signature over which the formula is well-formed."""
        return atoms_signature(self.atoms())

    def is_quantifier_free(self) -> bool:
        """True if no existential quantifier occurs in the formula."""
        return not any(isinstance(node, Exists) for node in self.walk())

    def is_primitive_positive(self) -> bool:
        """True if no disjunction occurs in the formula."""
        return not any(isinstance(node, Or) for node in self.walk())

    def is_sentence(self) -> bool:
        """True if the formula has no free variables."""
        return not self.free_variables()

    def walk(self) -> Iterator["Formula"]:
        """Pre-order traversal of the AST."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node._children())

    def _children(self) -> tuple["Formula", ...]:
        return ()

    # -- operator sugar --------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And.of(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or.of(self, other)

    def exists(self, *variables: VariableLike) -> "Formula":
        """Existentially quantify the given variables over this formula."""
        return Exists(as_variables(variables), self)

    def __str__(self) -> str:
        return self._pretty(0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self._pretty(0)!r})"


@dataclass(frozen=True)
class AtomicFormula(Formula):
    """A single atom ``R(v_1, ..., v_k)`` as a formula."""

    atom: Atom

    def free_variables(self) -> frozenset[Variable]:
        return self.atom.variables

    def all_variables(self) -> frozenset[Variable]:
        return self.atom.variables

    def atoms(self) -> tuple[Atom, ...]:
        return (self.atom,)

    def rename_free(self, mapping: dict[Variable, Variable]) -> "Formula":
        return AtomicFormula(self.atom.rename(mapping))

    def _pretty(self, parent_precedence: int) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class Truth(Formula):
    """The empty conjunction, written ``⊤``; it is true everywhere."""

    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def all_variables(self) -> frozenset[Variable]:
        return frozenset()

    def atoms(self) -> tuple[Atom, ...]:
        return ()

    def rename_free(self, mapping: dict[Variable, Variable]) -> "Formula":
        return self

    def _pretty(self, parent_precedence: int) -> str:
        return "T"


class _NaryFormula(Formula):
    """Shared implementation of :class:`And` and :class:`Or`."""

    __slots__ = ("_children_tuple",)
    _symbol = "?"
    _precedence = 0

    def __init__(self, children: Iterable[Formula]):
        materialized = tuple(children)
        if not materialized:
            raise FormulaError(f"{type(self).__name__} needs at least one operand")
        for child in materialized:
            if not isinstance(child, Formula):
                raise FormulaError(f"operand {child!r} is not a Formula")
        self._children_tuple = materialized

    @classmethod
    def of(cls, *children: Formula) -> Formula:
        """Build a connective, flattening nested occurrences of the same kind.

        ``And.of(a)`` returns ``a`` unchanged.
        """
        flattened: list[Formula] = []
        for child in children:
            if isinstance(child, cls):
                flattened.extend(child.operands)
            else:
                flattened.append(child)
        if len(flattened) == 1:
            return flattened[0]
        return cls(flattened)

    @property
    def operands(self) -> tuple[Formula, ...]:
        """The operand formulas, in order."""
        return self._children_tuple

    def _children(self) -> tuple[Formula, ...]:
        return self._children_tuple

    def free_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for child in self._children_tuple:
            out |= child.free_variables()
        return frozenset(out)

    def all_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for child in self._children_tuple:
            out |= child.all_variables()
        return frozenset(out)

    def atoms(self) -> tuple[Atom, ...]:
        return tuple(itertools.chain.from_iterable(c.atoms() for c in self._children_tuple))

    def rename_free(self, mapping: dict[Variable, Variable]) -> "Formula":
        return type(self)(child.rename_free(mapping) for child in self._children_tuple)

    def _pretty(self, parent_precedence: int) -> str:
        inner = f" {self._symbol} ".join(
            child._pretty(self._precedence) for child in self._children_tuple
        )
        if parent_precedence > self._precedence:
            return f"({inner})"
        return inner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)) or type(other) is not type(self):
            return NotImplemented
        return self._children_tuple == other._children_tuple

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._children_tuple))


class And(_NaryFormula):
    """Conjunction of one or more formulas."""

    _symbol = "&"
    _precedence = 2


class Or(_NaryFormula):
    """Disjunction of one or more formulas."""

    _symbol = "|"
    _precedence = 1


class Exists(Formula):
    """Existential quantification ``∃ v_1 ... v_k . body``."""

    __slots__ = ("_variables", "_body")

    def __init__(self, variables: Iterable[VariableLike], body: Formula):
        self._variables = as_variables(variables)
        if not self._variables:
            raise FormulaError("Exists needs at least one quantified variable")
        if len(set(self._variables)) != len(self._variables):
            raise FormulaError("Exists quantifies the same variable twice")
        if not isinstance(body, Formula):
            raise FormulaError(f"body {body!r} is not a Formula")
        self._body = body

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The quantified variables, in declaration order."""
        return self._variables

    @property
    def body(self) -> Formula:
        """The formula under the quantifier."""
        return self._body

    def _children(self) -> tuple[Formula, ...]:
        return (self._body,)

    def free_variables(self) -> frozenset[Variable]:
        return self._body.free_variables() - frozenset(self._variables)

    def all_variables(self) -> frozenset[Variable]:
        return self._body.all_variables() | frozenset(self._variables)

    def atoms(self) -> tuple[Atom, ...]:
        return self._body.atoms()

    def rename_free(self, mapping: dict[Variable, Variable]) -> "Formula":
        bound = set(self._variables)
        filtered = {k: v for k, v in mapping.items() if k not in bound}
        clashes = bound & set(filtered.values())
        if clashes:
            raise FormulaError(
                f"renaming would capture variables {sorted(v.name for v in clashes)}"
            )
        return Exists(self._variables, self._body.rename_free(filtered))

    def _pretty(self, parent_precedence: int) -> str:
        names = " ".join(v.name for v in self._variables)
        inner = f"exists {names}. {self._body._pretty(0)}"
        if parent_precedence > 0:
            return f"({inner})"
        return inner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Exists):
            return NotImplemented
        return self._variables == other._variables and self._body == other._body

    def __hash__(self) -> int:
        return hash(("Exists", self._variables, self._body))


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def atom(relation: str, *arguments: VariableLike) -> AtomicFormula:
    """Build an atomic formula: ``atom("E", "x", "y")``."""
    return AtomicFormula(Atom(relation, arguments))


def conjunction(formulas: Sequence[Formula]) -> Formula:
    """Conjunction of a sequence; the empty conjunction is :class:`Truth`."""
    if not formulas:
        return Truth()
    return And.of(*formulas)


def disjunction(formulas: Sequence[Formula]) -> Formula:
    """Disjunction of a non-empty sequence of formulas."""
    if not formulas:
        raise FormulaError("disjunction of zero formulas is not representable")
    return Or.of(*formulas)


# ----------------------------------------------------------------------
# Prenex disjunctive normal form
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrenexDisjunct:
    """One disjunct of the prenex-disjunctive rewriting of an EP formula.

    ``atoms`` is the conjunction of atoms, ``quantified`` the
    existentially quantified variables of this disjunct; every other
    variable in the atoms is free.
    """

    atoms: tuple[Atom, ...]
    quantified: frozenset[Variable]

    def free_variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for a in self.atoms:
            out |= a.variables
        return frozenset(out) - self.quantified


class _FreshNames:
    """Generates quantified-variable names that cannot clash with user names."""

    def __init__(self, reserved: Iterable[Variable]):
        self._reserved = {v.name for v in reserved}
        self._counter = itertools.count()

    def fresh(self, base: Variable) -> Variable:
        while True:
            candidate = f"{base.name}#{next(self._counter)}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return Variable(candidate)


def to_prenex_disjuncts(formula: Formula) -> list[PrenexDisjunct]:
    """Rewrite an EP formula into a disjunction of prenex pp-formulas.

    The result is a list of :class:`PrenexDisjunct`; the original formula
    is logically equivalent to the disjunction of the disjuncts.  Bound
    variables are standardized apart (each quantifier introduction gets a
    fresh name per disjunct), so no variable is both free and quantified
    and no two quantifiers share a variable.
    """
    fresh = _FreshNames(formula.all_variables())

    def recurse(node: Formula) -> list[PrenexDisjunct]:
        if isinstance(node, Truth):
            return [PrenexDisjunct((), frozenset())]
        if isinstance(node, AtomicFormula):
            return [PrenexDisjunct((node.atom,), frozenset())]
        if isinstance(node, Or):
            out: list[PrenexDisjunct] = []
            for child in node.operands:
                out.extend(recurse(child))
            return out
        if isinstance(node, And):
            partial: list[PrenexDisjunct] = [PrenexDisjunct((), frozenset())]
            for child in node.operands:
                child_disjuncts = recurse(child)
                partial = [
                    PrenexDisjunct(
                        left.atoms + right.atoms, left.quantified | right.quantified
                    )
                    for left in partial
                    for right in child_disjuncts
                ]
            return partial
        if isinstance(node, Exists):
            out = []
            for disjunct in recurse(node.body):
                renaming = {v: fresh.fresh(v) for v in node.variables}
                renamed_atoms = tuple(a.rename(renaming) for a in disjunct.atoms)
                quantified = disjunct.quantified | frozenset(renaming.values())
                out.append(PrenexDisjunct(renamed_atoms, quantified))
            return out
        raise FormulaError(f"unsupported formula node: {node!r}")

    return recurse(formula)
