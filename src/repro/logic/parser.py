"""A small text syntax for existential positive queries.

The grammar (whitespace-insensitive)::

    query       :=  [ header '=' ] formula
    header      :=  IDENT '(' varlist ')'          -- declares the liberal variables
    formula     :=  conjunct ( '|' conjunct )*
    conjunct    :=  unary ( '&' unary )*
    unary       :=  atom | 'T' | '(' formula ')'
                  | 'exists' IDENT+ '.' formula      -- maximal scope
    atom        :=  IDENT '(' varlist ')'
    varlist     :=  IDENT ( ',' IDENT )*

Examples::

    E(x, y) & (E(w, x) | (E(y, z) & E(z, z)))
    phi(w, x, y, z) = (E(x,y) & E(y,z)) | (E(z,w) & E(w,x)) | (E(w,x) & E(x,y))
    exists z. E(x, z) & E(z, y)

Relation names start with an upper-case letter, variable names with a
lower-case letter or underscore; this mirrors the usual datalog
convention and keeps the grammar unambiguous without a declaration
section.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ParseError
from repro.logic.ep import EPFormula
from repro.logic.formulas import AtomicFormula, Exists, Formula, Or, And, Truth
from repro.logic.terms import Atom, Variable

_TOKEN_REGEX = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<EXISTS>\bexists\b)
  | (?P<TRUTH>\bT\b)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<AND>&)
  | (?P<OR>\|)
  | (?P<DOT>\.)
  | (?P<EQUALS>=)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_REGEX.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _accept(self, kind: str) -> _Token | None:
        if self._peek().kind == kind:
            return self._advance()
        return None

    # -- grammar --------------------------------------------------------
    def parse_query(self) -> tuple[Formula, tuple[Variable, ...] | None]:
        """Parse a query, returning the formula and any declared liberal variables."""
        liberal = self._try_header()
        formula = self.parse_formula()
        self._expect("EOF")
        return formula, liberal

    def _try_header(self) -> tuple[Variable, ...] | None:
        # A header looks like  IDENT ( varlist ) =   -- only treat it as a
        # header if the '=' is present, otherwise it is an atom.
        start = self._index
        if self._peek().kind != "IDENT":
            return None
        self._advance()
        if self._accept("LPAREN") is None:
            self._index = start
            return None
        variables = self._varlist()
        if self._accept("RPAREN") is None or self._accept("EQUALS") is None:
            self._index = start
            return None
        return variables

    def parse_formula(self) -> Formula:
        disjuncts = [self._conjunct()]
        while self._accept("OR"):
            disjuncts.append(self._conjunct())
        if len(disjuncts) == 1:
            return disjuncts[0]
        return Or.of(*disjuncts)

    def _conjunct(self) -> Formula:
        conjuncts = [self._unary()]
        while self._accept("AND"):
            conjuncts.append(self._unary())
        if len(conjuncts) == 1:
            return conjuncts[0]
        return And.of(*conjuncts)

    def _unary(self) -> Formula:
        token = self._peek()
        if token.kind == "LPAREN":
            self._advance()
            inner = self.parse_formula()
            self._expect("RPAREN")
            return inner
        if token.kind == "EXISTS":
            self._advance()
            variables = []
            while self._peek().kind == "IDENT":
                variables.append(Variable(self._advance().text))
                self._accept("COMMA")
            if not variables:
                raise ParseError("'exists' needs at least one variable", token.position)
            self._expect("DOT")
            # Quantifiers scope as far to the right as possible, following
            # the usual logic convention:  exists z. E(x,z) & E(z,y)
            # quantifies z over the whole conjunction.
            body = self.parse_formula()
            return Exists(variables, body)
        if token.kind == "TRUTH":
            self._advance()
            return Truth()
        if token.kind == "IDENT":
            return self._atom()
        raise ParseError(
            f"expected an atom, '(', 'exists' or 'T', found {token.text or 'end of input'!r}",
            token.position,
        )

    def _atom(self) -> Formula:
        name_token = self._expect("IDENT")
        if not name_token.text[0].isupper():
            raise ParseError(
                f"relation names must start with an upper-case letter: {name_token.text!r}",
                name_token.position,
            )
        self._expect("LPAREN")
        variables = self._varlist()
        self._expect("RPAREN")
        return AtomicFormula(Atom(name_token.text, variables))

    def _varlist(self) -> tuple[Variable, ...]:
        variables = [self._variable()]
        while self._accept("COMMA"):
            variables.append(self._variable())
        return tuple(variables)

    def _variable(self) -> Variable:
        token = self._expect("IDENT")
        if token.text[0].isupper():
            raise ParseError(
                f"variable names must start with a lower-case letter or '_': {token.text!r}",
                token.position,
            )
        return Variable(token.text)


def parse_formula(text: str) -> Formula:
    """Parse an EP formula from text, ignoring any liberal-variable header."""
    formula, _ = _Parser(_tokenize(text)).parse_query()
    return formula


def parse_query(text: str, liberal: list[str] | None = None) -> EPFormula:
    """Parse an EP query, returning an :class:`EPFormula`.

    The liberal variables come from, in order of precedence:

    1. the ``liberal`` argument,
    2. a header ``name(v1, ..., vk) = ...`` in the text,
    3. the free variables of the formula.
    """
    formula, declared = _Parser(_tokenize(text)).parse_query()
    if liberal is not None:
        return EPFormula(formula, liberal=[Variable(v) for v in liberal])
    if declared is not None:
        return EPFormula(formula, liberal=declared)
    return EPFormula(formula)
