"""Variables and atoms.

Formulas in this library are built from *atoms*: applications of a
relation symbol to a tuple of variables, such as ``E(x, y)``.  Variables
are lightweight named value objects.  They double as elements of the
universe when a primitive positive formula is viewed as a relational
structure (the Chandra-Merlin correspondence, Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.exceptions import FormulaError, SignatureError
from repro.logic.signatures import RelationSymbol, Signature


@dataclass(frozen=True, order=True)
class Variable:
    """A first-order variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise FormulaError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name!r})"


VariableLike = Union[Variable, str]


def as_variable(value: VariableLike) -> Variable:
    """Coerce a string or :class:`Variable` into a :class:`Variable`."""
    if isinstance(value, Variable):
        return value
    if isinstance(value, str):
        return Variable(value)
    raise FormulaError(f"cannot interpret {value!r} as a variable")


def as_variables(values: Iterable[VariableLike]) -> tuple[Variable, ...]:
    """Coerce an iterable of variable-like values into a tuple of variables."""
    return tuple(as_variable(v) for v in values)


@dataclass(frozen=True)
class Atom:
    """An atomic formula ``R(v_1, ..., v_k)``.

    Parameters
    ----------
    relation:
        The name of the relation symbol being applied.
    arguments:
        The tuple of variables the relation is applied to.  Repeated
        variables are allowed (e.g. ``E(x, x)``).
    """

    relation: str
    arguments: tuple[Variable, ...]

    def __init__(self, relation: str, arguments: Iterable[VariableLike]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "arguments", as_variables(arguments))
        if not self.relation:
            raise FormulaError("atom must name a relation")
        if not self.arguments:
            raise FormulaError(f"atom over {relation!r} must have at least one argument")

    @property
    def arity(self) -> int:
        """The number of arguments of this atom."""
        return len(self.arguments)

    @property
    def variables(self) -> frozenset[Variable]:
        """The set of variables occurring in this atom."""
        return frozenset(self.arguments)

    def symbol(self) -> RelationSymbol:
        """The relation symbol this atom uses (name plus observed arity)."""
        return RelationSymbol(self.relation, self.arity)

    def rename(self, mapping: dict[Variable, Variable]) -> "Atom":
        """Return a copy of this atom with variables renamed via ``mapping``.

        Variables absent from ``mapping`` are left unchanged.
        """
        return Atom(self.relation, tuple(mapping.get(v, v) for v in self.arguments))

    def check_against(self, signature: Signature) -> None:
        """Validate this atom against a signature.

        Raises :class:`SignatureError` if the relation is unknown or the
        arity does not match.
        """
        symbol = signature.get(self.relation)
        if symbol is None:
            raise SignatureError(f"atom uses unknown relation {self.relation!r}")
        if symbol.arity != self.arity:
            raise SignatureError(
                f"atom {self} has arity {self.arity}, but relation "
                f"{self.relation!r} has arity {symbol.arity}"
            )

    def __str__(self) -> str:
        args = ", ".join(str(v) for v in self.arguments)
        return f"{self.relation}({args})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Atom({self.relation!r}, {self.arguments!r})"


def atoms_signature(atoms: Iterable[Atom]) -> Signature:
    """The smallest signature over which all of ``atoms`` are well-formed."""
    return Signature(atom.symbol() for atom in atoms)


def atoms_variables(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """The set of variables occurring in any of ``atoms``."""
    out: set[Variable] = set()
    for atom in atoms:
        out.update(atom.arguments)
    return frozenset(out)
