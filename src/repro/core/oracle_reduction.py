"""Oracle reductions between EP counting and PP counting (Theorem 5.20 / 3.1).

The *equivalence theorem* states that counting answers to an EP formula
``phi`` and counting answers to the pp-formulas of ``phi+`` are
interreducible.  The interesting direction is the backward one: given an
oracle that counts ``phi`` on structures of our choice, recover the
count of an individual pp-formula ``psi in phi+`` on a given structure
``B``.  The machinery is the one previewed in Example 4.3:

1. by Proposition 5.16, ``|phi(D)| = sum_j c_j |psi_j(D)|`` over the
   star formulas;
2. for a distinguishing structure ``C`` (Lemma 5.12) the counts
   ``|psi_j(C)|`` are positive and constant on each semi-counting
   equivalence class but distinct across classes, so querying the oracle
   on ``B x C^l`` for ``l = 0, 1, ..., s-1`` yields a linear system
   whose matrix is a Vandermonde matrix -- invertible, and solvable in
   exact integer arithmetic;
3. the solution gives the per-class sums ``sum_{psi in class_j} c_psi
   |psi(B)|``; Lemma 5.18 splits a class sum into the individual counts
   by multiplying ``B`` with structures that satisfy exactly one formula
   of the class (Proposition 5.19).

All linear algebra is done with :class:`fractions.Fraction`, so results
are exact integers, never floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping, Sequence

from repro.algorithms.brute_force import count_pp_answers_brute_force
from repro.core.distinguishing import (
    find_distinguishing_structure,
    uniquely_satisfied_structure,
)
from repro.core.ep_to_pp import PlusDecomposition, plus_decomposition, sentence_holds
from repro.core.inclusion_exclusion import LinearCombination, star_decomposition
from repro.core.semi_equivalence import group_by_semi_counting_equivalence
from repro.exceptions import OracleError
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula
from repro.structures.operations import direct_product, disjoint_union, power, relabel_to_integers
from repro.structures.structure import Structure

#: An oracle for a fixed EP formula: maps a structure to the answer count.
StructureOracle = Callable[[Structure], int]


# ----------------------------------------------------------------------
# Exact linear algebra
# ----------------------------------------------------------------------
def solve_vandermonde_system(nodes: Sequence[int], rhs: Sequence[int]) -> list[Fraction]:
    """Solve ``sum_j nodes[j]**l * x_j = rhs[l]`` for ``l = 0..len(nodes)-1``.

    The nodes must be pairwise distinct (this is what the distinguishing
    structure guarantees); the system then has a unique solution, which
    is returned as exact fractions.
    """
    size = len(nodes)
    if len(rhs) != size:
        raise OracleError("right-hand side length must match the number of nodes")
    if len(set(nodes)) != size:
        raise OracleError(f"Vandermonde nodes must be distinct, got {list(nodes)!r}")
    # Build the augmented matrix with Fractions and run Gaussian elimination.
    matrix = [
        [Fraction(nodes[j]) ** level for j in range(size)] + [Fraction(rhs[level])]
        for level in range(size)
    ]
    for column in range(size):
        pivot_row = next(
            (row for row in range(column, size) if matrix[row][column] != 0), None
        )
        if pivot_row is None:
            raise OracleError("singular Vandermonde system; nodes were not distinct")
        matrix[column], matrix[pivot_row] = matrix[pivot_row], matrix[column]
        pivot = matrix[column][column]
        matrix[column] = [value / pivot for value in matrix[column]]
        for row in range(size):
            if row != column and matrix[row][column] != 0:
                factor = matrix[row][column]
                matrix[row] = [
                    value - factor * pivot_value
                    for value, pivot_value in zip(matrix[row], matrix[column])
                ]
    return [matrix[row][size] for row in range(size)]


def _as_int(value: Fraction, context: str) -> int:
    if value.denominator != 1:
        raise OracleError(f"expected an integer {context}, got {value}")
    return int(value)


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def make_brute_force_oracle(query: EPFormula) -> StructureOracle:
    """An oracle that answers ``|query(.)|`` by brute-force enumeration.

    Used by tests and benchmarks to *simulate* the oracle the reductions
    assume; in the paper the oracle is the hypothetical algorithm whose
    existence the reduction transfers.
    """
    from repro.algorithms.brute_force import count_ep_answers_by_disjuncts

    def oracle(structure: Structure) -> int:
        return count_ep_answers_by_disjuncts(query, structure)

    return oracle


@dataclass
class OracleCallCounter:
    """Wraps an oracle and counts how many times it is invoked."""

    oracle: StructureOracle
    calls: int = 0

    def __call__(self, structure: Structure) -> int:
        self.calls += 1
        return self.oracle(structure)


# ----------------------------------------------------------------------
# The all-free backward reduction (Theorem 5.20)
# ----------------------------------------------------------------------
class StarCountRecovery:
    """Recovers ``|psi(B)|`` for every ``psi in phi*`` from a ``phi`` oracle.

    ``query`` must be an all-free EP formula; ``oracle`` answers
    ``|query(D)|`` for structures ``D`` of the reduction's choice.  The
    distinguishing structure and the semi-counting-equivalence classes
    only depend on the query, so they are computed once per instance and
    shared across calls to :meth:`recover` -- exactly the
    "preprocessing of the parameter" that fixed-parameter tractability
    allows.
    """

    def __init__(
        self,
        query: EPFormula,
        oracle: StructureOracle,
        seed: int = 0,
    ):
        self.query = query
        self.oracle = oracle
        self.star = star_decomposition(query)
        formulas = list(self.star.formulas())
        self.coefficient_of: dict[PPFormula, int] = {
            term.formula: term.coefficient for term in self.star.terms
        }
        self.classes = group_by_semi_counting_equivalence(formulas)
        representatives = [group[0] for group in self.classes]
        self.distinguishing = find_distinguishing_structure(representatives, seed=seed)
        self.nodes = [
            count_pp_answers_brute_force(representative, self.distinguishing)
            for representative in representatives
        ]
        if len(set(self.nodes)) != len(self.nodes) or any(n <= 0 for n in self.nodes):
            raise OracleError(
                "the distinguishing structure does not separate the "
                "semi-counting-equivalence classes; this is a bug in the search"
            )

    # -- class sums ------------------------------------------------------
    def class_sums(self, structure: Structure) -> list[int]:
        """The per-class sums ``sum_{psi in class_j} c_psi |psi(B)|``.

        Obtained by querying the oracle on ``B x C^l`` for
        ``l = 0..s-1`` and solving the Vandermonde system.
        """
        size = len(self.classes)
        rhs = []
        for level in range(size):
            product = structure if level == 0 else relabel_to_integers(
                direct_product(structure, power(self.distinguishing, level))
            )
            rhs.append(self.oracle(product))
        solution = solve_vandermonde_system(self.nodes, rhs)
        return [_as_int(value, "class sum") for value in solution]

    # -- splitting a class (Lemma 5.18) ----------------------------------
    def _split_class(
        self,
        formulas: Sequence[PPFormula],
        class_oracle: Callable[[Structure], int],
        structure: Structure,
    ) -> dict[PPFormula, int]:
        """Lemma 5.18: recover individual counts from a class-sum oracle.

        ``formulas`` are semi-counting equivalent and pairwise not
        counting equivalent; ``class_oracle(D)`` returns
        ``sum_i c_i |formulas[i](D)|``.
        """
        if not formulas:
            return {}
        if len(formulas) == 1:
            formula = formulas[0]
            coefficient = self.coefficient_of[formula]
            total = class_oracle(structure)
            if total % coefficient:
                raise OracleError("class sum is not divisible by the coefficient")
            return {formula: total // coefficient}
        index, witness = uniquely_satisfied_structure(formulas)
        target = formulas[index]
        coefficient = self.coefficient_of[target]
        witness_count = count_pp_answers_brute_force(target, witness)
        if witness_count <= 0:
            raise OracleError("witness structure does not satisfy its own formula")

        def count_target(base: Structure) -> int:
            product = relabel_to_integers(direct_product(base, witness))
            value = class_oracle(product)
            if value % (coefficient * witness_count):
                raise OracleError(
                    "oracle values are inconsistent with the Lemma 5.18 recursion"
                )
            return value // (coefficient * witness_count)

        result = {target: count_target(structure)}
        remaining = [f for i, f in enumerate(formulas) if i != index]

        def reduced_oracle(base: Structure) -> int:
            return class_oracle(base) - coefficient * count_target(base)

        result.update(self._split_class(remaining, reduced_oracle, structure))
        return result

    # -- public entry points ---------------------------------------------
    def recover(self, structure: Structure) -> dict[PPFormula, int]:
        """Recover ``|psi(structure)|`` for every star formula ``psi``."""
        out: dict[PPFormula, int] = {}
        sums = self.class_sums(structure)
        for class_index, group in enumerate(self.classes):
            if len(group) == 1:
                formula = group[0]
                coefficient = self.coefficient_of[formula]
                if sums[class_index] % coefficient:
                    raise OracleError("class sum is not divisible by the coefficient")
                out[formula] = sums[class_index] // coefficient
                continue

            def class_oracle(base: Structure, class_index=class_index) -> int:
                return self.class_sums(base)[class_index]

            out.update(self._split_class(group, class_oracle, structure))
        return out

    def recover_one(self, formula: PPFormula, structure: Structure) -> int:
        """Recover the count of a single star formula."""
        counts = self.recover(structure)
        if formula not in counts:
            raise OracleError(f"{formula} is not one of the star formulas of the query")
        return counts[formula]


def recover_star_counts(
    query: EPFormula,
    structure: Structure,
    oracle: StructureOracle,
    seed: int = 0,
) -> dict[PPFormula, int]:
    """One-shot convenience wrapper around :class:`StarCountRecovery`."""
    return StarCountRecovery(query, oracle, seed=seed).recover(structure)


# ----------------------------------------------------------------------
# The general backward reduction (Section 5.4 / Appendix A)
# ----------------------------------------------------------------------
def _free_part_factor(decomposition: PlusDecomposition, seed: int) -> Structure:
    """The structure ``C`` used to neutralize sentence disjuncts.

    The appendix takes the disjoint union of the structures of the
    formulas in ``phi-_af``; it must (i) give every ``phi-_af`` formula a
    positive count and (ii) satisfy no sentence disjunct, so that on any
    product ``D x C`` the formula agrees with its all-free part.  The
    disjoint union is tried first; if a sentence disjunct happens to hold
    on it (possible when a sentence has several components entailed by
    different ``phi-_af`` formulas), a search over alternative candidates
    is performed.
    """
    minus = decomposition.minus
    sentences = decomposition.sentence_disjuncts
    if not minus:
        raise OracleError("the decomposition has no free part to neutralize")
    candidates: list[Structure] = []
    pieces = [relabel_to_integers(f.structure) for f in minus]
    if len(pieces) == 1:
        candidates.append(pieces[0])
    else:
        candidates.append(relabel_to_integers(disjoint_union(*pieces)))
        candidates.extend(pieces)

    def acceptable(candidate: Structure) -> bool:
        if any(sentence_holds(sentence, candidate) for sentence in sentences):
            return False
        return all(count_pp_answers_brute_force(f, candidate) > 0 for f in minus)

    for candidate in candidates:
        if acceptable(candidate):
            return candidate
    raise OracleError(
        "could not find a structure on which every phi-_af formula is positive "
        "and no sentence disjunct holds; the query's sentence disjuncts are "
        "entailed by combinations of its free disjuncts"
    )


def count_pp_via_ep_oracle(
    target: PPFormula,
    query: EPFormula,
    structure: Structure,
    oracle: StructureOracle,
    seed: int = 0,
    decomposition: PlusDecomposition | None = None,
) -> int:
    """Count ``|target(structure)|`` using only an oracle for ``|query(.)|``.

    ``target`` must belong to ``phi+`` (the plus set of ``query``).  This
    is the backward direction of the equivalence theorem in its general
    form: free formulas are recovered through the all-free machinery on
    products with a sentence-neutralizing factor, and sentence disjuncts
    are recovered through the maximum-count trick of Appendix A.
    """
    if decomposition is None:
        decomposition = plus_decomposition(query)
    liberal = decomposition.query.liberal

    if target in decomposition.minus:
        # Appendix A: run the all-free recovery on B x C, where C is a
        # structure on which no sentence disjunct holds.  Every structure
        # the recovery passes to the oracle then has C as a direct factor,
        # so the query agrees with its all-free part there and the oracle
        # answers are the all-free counts the recovery expects.
        factor = _free_part_factor(decomposition, seed)
        all_free = EPFormula.from_disjuncts(
            [d for d in decomposition.query.disjuncts() if d.is_free()]
        )
        recovery = StarCountRecovery(all_free, oracle, seed=seed)
        product = relabel_to_integers(direct_product(structure, factor))
        target_on_product = recovery.recover_one(target, product)
        target_on_factor = count_pp_answers_brute_force(target, factor)
        if target_on_factor <= 0:
            raise OracleError("the neutralizing factor does not satisfy the target formula")
        if target_on_product % target_on_factor:
            raise OracleError("product count is not divisible by the factor count")
        return target_on_product // target_on_factor

    for sentence in decomposition.sentence_disjuncts:
        if sentence == target:
            witness = relabel_to_integers(sentence.structure)
            product = relabel_to_integers(direct_product(witness, structure))
            observed = oracle(product)
            maximum = (len(witness.universe) * len(structure.universe)) ** len(liberal)
            if observed == maximum:
                return len(structure.universe) ** len(liberal)
            return 0
    raise OracleError(f"{target} does not belong to the plus set of the query")
