"""Counting equivalence of primitive positive formulas (Theorem 5.4).

Two formulas ``phi1(V1)``, ``phi2(V2)`` over the same vocabulary are
*counting equivalent* if ``|phi1(B)| = |phi2(B)|`` for every finite
structure ``B``.  The paper's Theorem 5.4 characterizes this semantic
notion syntactically for pp-formulas: they are counting equivalent if
and only if they are *renaming equivalent*, i.e. there are surjections
``h : V1 -> V2`` and ``h' : V2 -> V1`` between the liberal-variable sets
that extend to homomorphisms between the formula structures (in the
respective directions).

The syntactic characterization is what makes the notion usable inside
the inclusion-exclusion machinery: it is decidable (indeed in NP), and
this module implements the decision procedure together with helpers for
grouping formulas into counting-equivalence classes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.logic.pp import PPFormula
from repro.structures.homomorphism import find_surjective_renaming
from repro.structures.structure import Structure


def renaming_witness(first: PPFormula, second: PPFormula) -> dict | None:
    """A surjection ``lib(first) -> lib(second)`` extendable to a homomorphism.

    Returns the restriction of such a homomorphism to the liberal
    variables of ``first``, or ``None`` if no witness exists.  This is
    one half of renaming equivalence (Definition 5.3).
    """
    common = first.signature | second.signature
    return find_surjective_renaming(
        first.with_signature(common).structure,
        second.with_signature(common).structure,
        first.liberal,
        second.liberal,
    )


def renaming_equivalent(first: PPFormula, second: PPFormula) -> bool:
    """Decide renaming equivalence (Definition 5.3).

    Both directions are required: a surjection ``lib(first) ->
    lib(second)`` extendable to a homomorphism of the structures, and
    symmetrically.  Since the surjections force ``|lib(first)| =
    |lib(second)|``, both witnesses are in fact bijections.
    """
    if len(first.liberal) != len(second.liberal):
        return False
    if renaming_witness(first, second) is None:
        return False
    return renaming_witness(second, first) is not None


def counting_equivalent(first: PPFormula, second: PPFormula) -> bool:
    """Decide counting equivalence of two pp-formulas (Theorem 5.4).

    By the paper's characterization this is exactly renaming
    equivalence, so the check is purely syntactic/algebraic -- no
    structure is ever evaluated.
    """
    return renaming_equivalent(first, second)


def counting_equivalent_on(
    first: PPFormula, second: PPFormula, structures: Iterable[Structure]
) -> bool:
    """Empirically compare answer counts on a collection of structures.

    This does *not* decide counting equivalence (no finite collection
    can); it is the semantic test used in the test-suite to cross-check
    the syntactic decision procedure.
    """
    from repro.algorithms.brute_force import count_pp_answers_brute_force

    return all(
        count_pp_answers_brute_force(first, structure)
        == count_pp_answers_brute_force(second, structure)
        for structure in structures
    )


def group_by_counting_equivalence(
    formulas: Sequence[PPFormula],
) -> list[list[PPFormula]]:
    """Partition formulas into counting-equivalence classes.

    The result is a list of groups; within each group all formulas are
    pairwise counting equivalent, and formulas in different groups are
    not.  Group order follows first appearance.
    """
    groups: list[list[PPFormula]] = []
    for formula in formulas:
        for group in groups:
            if counting_equivalent(formula, group[0]):
                group.append(formula)
                break
        else:
            groups.append([formula])
    return groups


def counting_equivalence_representative(
    formulas: Sequence[PPFormula],
) -> dict[PPFormula, PPFormula]:
    """Map every formula to the representative of its equivalence class.

    The representative is the first formula of the class in input order.
    """
    representative: dict[PPFormula, PPFormula] = {}
    for group in group_by_counting_equivalence(formulas):
        head = group[0]
        for formula in group:
            representative[formula] = head
    return representative
