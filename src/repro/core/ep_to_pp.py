"""The general EP-to-PP construction ``phi -> phi+`` (Section 5.4).

Section 5.3 handles *all-free* EP formulas (every disjunct has a free
variable) through inclusion-exclusion; Section 5.4 lifts the result to
arbitrary EP formulas, whose disjuncts may also be pp-*sentences*.  The
construction, for a normalized EP formula ``phi`` with liberal variables
``V``:

* ``phi_af`` -- the all-free part: the disjunction of the free disjuncts;
* ``phi*_af`` -- the set from Proposition 5.16 applied to ``phi_af``;
* ``phi-_af`` -- the formulas of ``phi*_af`` that do **not** logically
  entail any sentence disjunct of ``phi``;
* ``phi+`` -- the union of ``phi-_af`` with the sentence disjuncts.

Theorem 3.1 states that counting answers to ``phi`` and counting answers
to the formulas of ``phi+`` are interreducible; the reductions
themselves live in :mod:`repro.core.oracle_reduction`.  This module
computes the sets and the forward counting algorithm (the direction
used by :func:`repro.core.counting.count_answers`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.inclusion_exclusion import (
    DEFAULT_MAX_DISJUNCTS,
    LinearCombination,
    PPCounter,
    Term,
    star_decomposition,
)
from repro.exceptions import FormulaError
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula
from repro.structures.homomorphism import has_homomorphism
from repro.structures.structure import Structure


@dataclass(frozen=True)
class PlusDecomposition:
    """The full output of the Section 5.4 construction for one EP formula.

    Attributes
    ----------
    query:
        The (normalized) EP formula the decomposition was computed for.
    sentence_disjuncts:
        The pp-sentence disjuncts of the normalized formula.
    star:
        The cancelled inclusion-exclusion combination of the all-free
        part (empty when the formula has no free disjunct).
    minus:
        ``phi-_af``: the star formulas that entail no sentence disjunct.
    plus:
        ``phi+ = phi-_af ∪ sentence_disjuncts``.
    """

    query: EPFormula
    sentence_disjuncts: tuple[PPFormula, ...]
    star: LinearCombination
    minus: tuple[PPFormula, ...]
    plus: tuple[PPFormula, ...]


def entails_some_sentence(formula: PPFormula, sentences: Sequence[PPFormula]) -> bool:
    """True if ``formula`` logically entails at least one of ``sentences``."""
    return any(formula.entails(sentence) for sentence in sentences)


def plus_decomposition(
    query: EPFormula, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS
) -> PlusDecomposition:
    """Compute ``phi+`` and the associated bookkeeping (Section 5.4).

    The query is normalized first (Section 2.1): disjuncts that entail a
    sentence disjunct are dropped, which both matches the paper's
    assumption and keeps the inclusion-exclusion expansion small.
    """
    normalized_disjuncts = query.normalized_disjuncts()
    normalized = EPFormula.from_disjuncts(list(normalized_disjuncts))
    sentences = tuple(d for d in normalized.disjuncts() if d.is_sentence())
    free = tuple(d for d in normalized.disjuncts() if d.is_free())
    if free:
        all_free = EPFormula.from_disjuncts(list(free))
        star = star_decomposition(all_free, max_disjuncts=max_disjuncts)
    else:
        star = LinearCombination(())
    minus = tuple(
        formula
        for formula in star.formulas()
        if not entails_some_sentence(formula, sentences)
    )
    plus = minus + sentences
    return PlusDecomposition(
        query=normalized,
        sentence_disjuncts=sentences,
        star=star,
        minus=minus,
        plus=plus,
    )


def plus_set(query: EPFormula, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS) -> tuple[PPFormula, ...]:
    """The set ``phi+`` of prenex pp-formulas from Theorem 3.1."""
    return plus_decomposition(query, max_disjuncts=max_disjuncts).plus


def plus_set_for_class(
    queries: Sequence[EPFormula], max_disjuncts: int = DEFAULT_MAX_DISJUNCTS
) -> list[PPFormula]:
    """``Phi+``: the union of ``phi+`` over a class of EP formulas.

    Deduplicates syntactically equal formulas while preserving order.
    """
    seen: set[PPFormula] = set()
    out: list[PPFormula] = []
    for query in queries:
        for formula in plus_set(query, max_disjuncts=max_disjuncts):
            if formula not in seen:
                seen.add(formula)
                out.append(formula)
    return out


def sentence_holds(sentence: PPFormula, structure: Structure) -> bool:
    """Does the pp-sentence hold on the structure?

    Equivalent to the existence of a homomorphism from the sentence's
    structure view into the data structure.
    """
    if structure.is_empty():
        return not sentence.variables
    return has_homomorphism(sentence.structure, structure)


def count_ep_answers_via_plus(
    query: EPFormula,
    structure: Structure,
    counter: PPCounter,
    decomposition: PlusDecomposition | None = None,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> int:
    """Count answers to an arbitrary EP formula via its ``phi+`` decomposition.

    This is the forward direction of the equivalence theorem, exactly as
    in the proof of Theorem 3.1 (Appendix A):

    1. if some sentence disjunct holds on the structure, every
       assignment of the liberal variables is an answer, so the count is
       ``|B| ** |V|``;
    2. otherwise the formula agrees with its all-free part, whose count
       is the cancelled inclusion-exclusion combination; queries for
       star formulas that entail a (currently false) sentence disjunct
       are answered ``0`` without consulting the backend.

    ``counter`` is the pp-counting backend used for the ``phi-_af``
    formulas.
    """
    if decomposition is None:
        decomposition = plus_decomposition(query, max_disjuncts=max_disjuncts)
    liberal = decomposition.query.liberal
    for sentence in decomposition.sentence_disjuncts:
        if sentence_holds(sentence, structure):
            return len(structure.universe) ** len(liberal)
    minus = set(decomposition.minus)
    total = 0
    for term in decomposition.star.terms:
        if term.formula in minus:
            total += term.coefficient * counter(term.formula, structure)
        # Formulas outside phi-_af entail some sentence disjunct, which we
        # just checked to be false on the structure, so their count is 0.
    return total
