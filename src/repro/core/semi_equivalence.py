"""Semi-counting equivalence (Section 5.2, Theorem 5.9).

Counting equivalence is too strong for the Vandermonde argument of the
equivalence theorem: the linear systems built there only ever evaluate
formulas on structures where the counts are positive.  The right notion
is *semi-counting equivalence*: ``phi1`` and ``phi2`` are semi-counting
equivalent if ``|phi1(B)| = |phi2(B)|`` for every structure ``B`` on
which both counts are positive.

Theorem 5.9 characterizes the notion syntactically for free prenex
pp-formulas: ``phi1`` and ``phi2`` are semi-counting equivalent iff
``phi1_hat`` and ``phi2_hat`` are counting equivalent, where ``phi_hat``
removes every atom belonging to a non-liberal component of ``phi``
(:meth:`repro.logic.pp.PPFormula.hat`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.equivalence import counting_equivalent
from repro.logic.pp import PPFormula
from repro.structures.structure import Structure


def semi_counting_equivalent(first: PPFormula, second: PPFormula) -> bool:
    """Decide semi-counting equivalence via Theorem 5.9.

    The characterization (equivalence with counting equivalence of the
    hatted formulas) is stated in the paper for free pp-formulas; the
    implementation applies the same test to arbitrary pp-formulas, which
    is the behaviour the reductions of Section 5.3 rely on.
    """
    return counting_equivalent(first.hat(), second.hat())


def semi_counting_equivalent_on(
    first: PPFormula, second: PPFormula, structures: Iterable[Structure]
) -> bool:
    """Empirical check of the defining property on a collection of structures.

    Used by the test-suite to cross-check the syntactic characterization;
    a finite collection can of course only refute, never prove,
    semi-counting equivalence.
    """
    from repro.algorithms.brute_force import count_pp_answers_brute_force

    for structure in structures:
        first_count = count_pp_answers_brute_force(first, structure)
        second_count = count_pp_answers_brute_force(second, structure)
        if first_count > 0 and second_count > 0 and first_count != second_count:
            return False
    return True


def group_by_semi_counting_equivalence(
    formulas: Sequence[PPFormula],
) -> list[list[PPFormula]]:
    """Partition formulas into semi-counting-equivalence classes.

    Semi-counting equivalence is an equivalence relation on pp-formulas
    (Corollary 5.11), so grouping by comparison against one
    representative per class is sound.
    """
    groups: list[list[PPFormula]] = []
    for formula in formulas:
        for group in groups:
            if semi_counting_equivalent(formula, group[0]):
                group.append(formula)
                break
        else:
            groups.append([formula])
    return groups
