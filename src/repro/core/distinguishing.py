"""Distinguishing structures (Lemmas 5.12 - 5.14, Proposition 5.19).

The backward direction of the equivalence theorem recovers individual
pp-formula counts from counts of the whole EP formula by solving linear
systems.  For the systems to be solvable, the paper needs structures
with two properties:

* **positivity** -- every pp-formula over the vocabulary has at least
  one answer on the structure (so the Vandermonde entries are nonzero);
* **separation** -- formulas from different (semi-)counting-equivalence
  classes have *different* counts on the structure (so the Vandermonde
  nodes are distinct).

Lemma 5.12 proves such structures exist for any finite family of
pairwise non-semi-counting-equivalent liberal pp-formulas.  The proof is
constructive but produces enormous product structures; this module
implements a search that follows the same ingredients -- candidates are
always of the form "something + k copies of the idempotent structure
``I``" (positivity), separation failures are repaired with products as
in the induction step of Lemma 5.12 -- but tries cheap candidates first.
If the bounded search fails, :class:`DistinguishingStructureError` is
raised (the theory guarantees a structure exists; the search budget may
simply be too small).

Proposition 5.19 -- the existence, for pairwise non-counting-equivalent
but semi-counting-equivalent formulas, of a structure satisfying exactly
one of them -- is implemented exactly as in the paper: take a formula
whose structure is minimal in the homomorphism order.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from repro.algorithms.brute_force import count_pp_answers_brute_force
from repro.core.semi_equivalence import group_by_semi_counting_equivalence
from repro.exceptions import DistinguishingStructureError
from repro.logic.pp import PPFormula
from repro.logic.signatures import Signature
from repro.structures.homomorphism import has_homomorphism
from repro.structures.operations import (
    add_idempotent_copies,
    direct_product,
    disjoint_union,
    relabel_to_integers,
)
from repro.structures.random_gen import random_structure
from repro.structures.structure import Structure, complete_structure


def _strip_variables(structure: Structure) -> Structure:
    """Relabel a formula structure so it can serve as a data structure."""
    return relabel_to_integers(structure)


def _formula_data_structures(formulas: Sequence[PPFormula], signature: Signature) -> list[Structure]:
    out = []
    for formula in formulas:
        out.append(_strip_variables(formula.structure.with_signature(signature)))
    return out


def _candidate_structures(
    formulas: Sequence[PPFormula],
    signature: Signature,
    seed: int,
    rounds: int,
) -> Iterable[Structure]:
    """Candidate base structures ``B`` (positivity is added by the caller)."""
    data = _formula_data_structures(formulas, signature)
    # The formulas' own structures, their disjoint union, and pairwise products.
    yield from data
    if len(data) > 1:
        yield relabel_to_integers(disjoint_union(*data))
    for i in range(len(data)):
        for j in range(i, len(data)):
            yield relabel_to_integers(direct_product(data[i], data[j]))
    # Small complete structures (these realize the count 2^|lib| of
    # Observation 5.5 and scale differently with each liberal set).
    for size in (2, 3):
        yield complete_structure(signature, range(size))
    # Random structures of growing size and density.
    rng = random.Random(seed)
    for round_index in range(rounds):
        size = 3 + round_index % 5
        density = 0.2 + 0.15 * (round_index % 4)
        yield random_structure(signature, size, density, seed=rng.randrange(1 << 30))


def _counts(formulas: Sequence[PPFormula], structure: Structure) -> list[int]:
    return [count_pp_answers_brute_force(f, structure) for f in formulas]


def separating_structure(
    first: PPFormula,
    second: PPFormula,
    seed: int = 0,
    max_idempotent_copies: int = 6,
    search_rounds: int = 40,
) -> Structure:
    """A structure on which all counts are positive and the two formulas differ.

    Implements Lemma 5.13: starting from a base structure where the
    (hatted) formulas have different counts, adding ``k`` copies of the
    idempotent structure ``I`` makes all counts positive while, for some
    small ``k``, preserving the difference (the counts are distinct
    polynomials in ``k``).
    """
    signature = first.signature | second.signature
    first = first.with_signature(signature)
    second = second.with_signature(signature)
    for base in _candidate_structures([first, second], signature, seed, search_rounds):
        for copies in range(1, max_idempotent_copies + 1):
            candidate = relabel_to_integers(add_idempotent_copies(base, copies))
            first_count = count_pp_answers_brute_force(first, candidate)
            second_count = count_pp_answers_brute_force(second, candidate)
            if first_count > 0 and second_count > 0 and first_count != second_count:
                return candidate
    raise DistinguishingStructureError(
        "could not find a separating structure for the given pair within the "
        "search budget; if the formulas are not semi-counting equivalent a "
        "larger budget (search_rounds / max_idempotent_copies) will succeed"
    )


def find_distinguishing_structure(
    formulas: Sequence[PPFormula],
    seed: int = 0,
    max_idempotent_copies: int = 6,
    search_rounds: int = 40,
    max_product_repairs: int = 4,
) -> Structure:
    """A structure that is positive everywhere and separates the given formulas.

    The formulas are expected to be pairwise non-semi-counting-equivalent
    (typically: one representative per semi-counting-equivalence class).
    The returned structure ``C`` satisfies

    * ``|phi(C)| > 0`` for every pp-formula ``phi`` over the vocabulary
      (because ``C`` always contains a disjoint idempotent element), and
    * ``|phi_i(C)| != |phi_j(C)|`` for all ``i != j``.

    Search strategy: try cheap candidates (``base + k.I``) first; if a
    candidate separates some but not all pairs, repair it with products
    against pairwise separating structures, following the induction step
    of Lemma 5.12.
    """
    if not formulas:
        raise DistinguishingStructureError("need at least one formula")
    signature = formulas[0].signature
    for formula in formulas[1:]:
        signature = signature | formula.signature
    formulas = [f.with_signature(signature) for f in formulas]

    if len(formulas) == 1:
        base = _strip_variables(formulas[0].structure)
        return relabel_to_integers(add_idempotent_copies(base, 1))

    def is_distinguishing(candidate: Structure) -> bool:
        counts = _counts(formulas, candidate)
        return all(c > 0 for c in counts) and len(set(counts)) == len(counts)

    best_candidate: Structure | None = None
    best_distinct = -1
    for base in _candidate_structures(formulas, signature, seed, search_rounds):
        for copies in range(1, max_idempotent_copies + 1):
            candidate = relabel_to_integers(add_idempotent_copies(base, copies))
            counts = _counts(formulas, candidate)
            if any(c == 0 for c in counts):
                continue
            distinct = len(set(counts))
            if distinct == len(formulas):
                return candidate
            if distinct > best_distinct:
                best_distinct = distinct
                best_candidate = candidate

    # Product repair (Lemma 5.12 induction step): take the best partial
    # separator and multiply with pairwise separators of colliding pairs.
    if best_candidate is not None:
        candidate = best_candidate
        for _ in range(max_product_repairs):
            counts = _counts(formulas, candidate)
            colliding = _first_collision(counts)
            if colliding is None:
                return candidate
            i, j = colliding
            try:
                pair_separator = separating_structure(
                    formulas[i], formulas[j], seed=seed, search_rounds=search_rounds
                )
            except DistinguishingStructureError:
                break
            candidate = relabel_to_integers(direct_product(candidate, pair_separator))
            if is_distinguishing(candidate):
                return candidate
    raise DistinguishingStructureError(
        "could not find a distinguishing structure within the search budget; "
        "increase search_rounds / max_product_repairs, or check that the "
        "formulas are pairwise non-semi-counting-equivalent"
    )


def _first_collision(counts: Sequence[int]) -> tuple[int, int] | None:
    seen: dict[int, int] = {}
    for index, value in enumerate(counts):
        if value in seen:
            return seen[value], index
        seen[value] = index
    return None


def find_distinguishing_structure_for_classes(
    formulas: Sequence[PPFormula],
    seed: int = 0,
    **kwargs,
) -> tuple[Structure, list[list[PPFormula]]]:
    """Group formulas by semi-counting equivalence and separate the classes.

    Returns ``(structure, classes)`` where ``structure`` is positive for
    every pp-formula, gives the *same* count to formulas of the same
    class (automatic, by definition of semi-counting equivalence and
    positivity), and different counts to different classes.
    """
    classes = group_by_semi_counting_equivalence(list(formulas))
    representatives = [group[0] for group in classes]
    structure = find_distinguishing_structure(representatives, seed=seed, **kwargs)
    return structure, classes


def uniquely_satisfied_structure(formulas: Sequence[PPFormula]) -> tuple[int, Structure]:
    """Proposition 5.19: a structure satisfying exactly one of the formulas.

    The formulas must be semi-counting equivalent and pairwise not
    counting equivalent.  Following the paper, order the formula
    structures by homomorphism and pick a minimal one ``A_i``: no other
    formula's structure maps into it, so ``A_i`` (as a data structure)
    satisfies ``phi_i`` but no ``phi_j`` with ``j != i``.  Returns the
    index ``i`` and the structure.
    """
    if not formulas:
        raise DistinguishingStructureError("need at least one formula")
    signature = formulas[0].signature
    for formula in formulas[1:]:
        signature = signature | formula.signature
    normalized = [f.with_signature(signature) for f in formulas]
    structures = [_strip_variables(f.structure) for f in normalized]

    def maps_into(i: int, j: int) -> bool:
        return has_homomorphism(structures[i], structures[j])

    for i in range(len(normalized)):
        if not any(maps_into(j, i) for j in range(len(normalized)) if j != i):
            return i, structures[i]
    raise DistinguishingStructureError(
        "no minimal formula found; the formulas are probably not pairwise "
        "non-counting-equivalent (their structures are homomorphically comparable in cycles)"
    )
