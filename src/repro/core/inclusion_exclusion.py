"""Inclusion-exclusion with cancellation (Section 5.3, Proposition 5.16).

For an all-free EP formula ``phi = phi_1 | ... | phi_s`` (each disjunct a
free pp-formula over the same liberal variables) and any structure
``B``::

    |phi(B)| = sum over non-empty J of (-1)^(|J|+1) * |phi_J(B)|

where ``phi_J`` is the conjunction of the disjuncts indexed by ``J``.
The raw expansion has ``2^s - 1`` terms; the paper's Proposition 5.16
merges counting-equivalent terms (summing their coefficients) and drops
zero coefficients, which can cancel precisely the high-treewidth terms
(Example 4.2 / 5.15).  The surviving formulas form the set ``phi*``.

The module exposes both the raw expansion and the cancelled form, plus a
:class:`LinearCombination` value object that can evaluate itself against
any pp-counting backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Sequence

from repro.core.equivalence import group_by_counting_equivalence
from repro.exceptions import FormulaError
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula, conjoin_all
from repro.structures.structure import Structure

#: A callable that counts answers to a pp-formula on a structure.
PPCounter = Callable[[PPFormula, Structure], int]

#: Safety limit on the number of disjuncts: the expansion has 2^s - 1 terms.
DEFAULT_MAX_DISJUNCTS = 16


@dataclass(frozen=True)
class Term:
    """One weighted pp-formula ``coefficient * |formula(B)|``."""

    coefficient: int
    formula: PPFormula


@dataclass(frozen=True)
class LinearCombination:
    """An integer linear combination of pp-formula answer counts.

    Evaluating the combination on a structure with any correct
    pp-counting backend yields the answer count of the EP formula the
    combination was derived from.
    """

    terms: tuple[Term, ...]

    def formulas(self) -> tuple[PPFormula, ...]:
        """The distinct pp-formulas appearing in the combination."""
        return tuple(term.formula for term in self.terms)

    def coefficients(self) -> tuple[int, ...]:
        """The coefficients, aligned with :meth:`formulas`."""
        return tuple(term.coefficient for term in self.terms)

    def evaluate(self, structure: Structure, counter: PPCounter) -> int:
        """Evaluate ``sum(c_i * counter(phi_i, structure))``."""
        return sum(term.coefficient * counter(term.formula, structure) for term in self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def max_treewidth(self) -> int:
        """The largest (heuristic/exact) treewidth among the term formulas.

        Used by the ablation experiments to show that cancellation can
        remove all high-treewidth terms (Example 4.2).
        """
        from repro.algorithms.treewidth import treewidth

        width = -1
        for term in self.terms:
            term_width, _ = treewidth(term.formula.graph())
            width = max(width, term_width)
        return width


def _check_all_free(query: EPFormula) -> tuple[PPFormula, ...]:
    disjuncts = query.free_disjuncts()
    if len(disjuncts) != len(query.disjuncts()):
        raise FormulaError(
            "inclusion-exclusion expansion requires an all-free EP formula; "
            "use repro.core.ep_to_pp for the general construction"
        )
    if not disjuncts:
        raise FormulaError("the formula has no disjuncts")
    return disjuncts


def raw_inclusion_exclusion(
    query: EPFormula, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS
) -> LinearCombination:
    """The uncancelled inclusion-exclusion expansion of an all-free EP formula.

    Produces one term per non-empty subset of disjuncts, with coefficient
    ``(-1)^(|J|+1)``.  Raises if the formula has more than
    ``max_disjuncts`` disjuncts (the expansion is exponential).
    """
    disjuncts = _check_all_free(query)
    if len(disjuncts) > max_disjuncts:
        raise FormulaError(
            f"refusing to expand {len(disjuncts)} disjuncts "
            f"(limit {max_disjuncts}); raise max_disjuncts explicitly if intended"
        )
    terms: list[Term] = []
    indices = range(len(disjuncts))
    for size in range(1, len(disjuncts) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in combinations(indices, size):
            conjunction = conjoin_all([disjuncts[i] for i in subset])
            terms.append(Term(sign, conjunction))
    return LinearCombination(tuple(terms))


def cancel(combination: LinearCombination) -> LinearCombination:
    """Merge counting-equivalent terms and drop zero coefficients.

    This is the cancellation step of Proposition 5.16: identical or
    counting-equivalent formulas yield the same count on every
    structure, so their coefficients may be summed; terms whose summed
    coefficient is zero vanish from the combination entirely.
    """
    groups = group_by_counting_equivalence([term.formula for term in combination.terms])
    coefficient_of: dict[int, int] = {}
    representative_of_formula: dict[PPFormula, int] = {}
    representatives: list[PPFormula] = []
    for group_index, group in enumerate(groups):
        representatives.append(group[0])
        for formula in group:
            representative_of_formula.setdefault(formula, group_index)
        coefficient_of[group_index] = 0
    for term in combination.terms:
        group_index = representative_of_formula[term.formula]
        coefficient_of[group_index] += term.coefficient
    surviving = [
        Term(coefficient_of[index], representatives[index])
        for index in range(len(representatives))
        if coefficient_of[index] != 0
    ]
    return LinearCombination(tuple(surviving))


def star_decomposition(
    query: EPFormula, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS
) -> LinearCombination:
    """The cancelled decomposition ``|phi(B)| = sum c_i |phi*_i(B)|``.

    The formulas of the result are the set ``phi*`` of Proposition 5.16:
    pairwise not counting equivalent free pp-formulas with non-zero
    integer coefficients.
    """
    return cancel(raw_inclusion_exclusion(query, max_disjuncts=max_disjuncts))


def star_set(query: EPFormula, max_disjuncts: int = DEFAULT_MAX_DISJUNCTS) -> tuple[PPFormula, ...]:
    """The set ``phi*`` of pp-formulas from Proposition 5.16."""
    return star_decomposition(query, max_disjuncts=max_disjuncts).formulas()


def count_by_inclusion_exclusion(
    query: EPFormula,
    structure: Structure,
    counter: PPCounter,
    cancelled: bool = True,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> int:
    """Count answers to an all-free EP formula through its pp-decomposition.

    ``counter`` is the pp-counting backend (brute force, FPT, ...).
    ``cancelled=False`` uses the raw expansion -- exposed for the
    ablation benchmark that measures what cancellation buys.
    """
    if cancelled:
        combination = star_decomposition(query, max_disjuncts=max_disjuncts)
    else:
        combination = raw_inclusion_exclusion(query, max_disjuncts=max_disjuncts)
    return combination.evaluate(structure, counter)
