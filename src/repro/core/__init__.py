"""The paper's core contribution: equivalence, reductions, classification."""

from repro.core.counting import (
    STRATEGIES,
    count_answers,
    count_answers_all_strategies,
    count_answers_sharded,
    make_counter,
)
from repro.core.equivalence import (
    counting_equivalent,
    counting_equivalent_on,
    group_by_counting_equivalence,
    renaming_equivalent,
    renaming_witness,
)
from repro.core.semi_equivalence import (
    group_by_semi_counting_equivalence,
    semi_counting_equivalent,
    semi_counting_equivalent_on,
)
from repro.core.distinguishing import (
    find_distinguishing_structure,
    find_distinguishing_structure_for_classes,
    separating_structure,
    uniquely_satisfied_structure,
)
from repro.core.inclusion_exclusion import (
    LinearCombination,
    Term,
    cancel,
    count_by_inclusion_exclusion,
    raw_inclusion_exclusion,
    star_decomposition,
    star_set,
)
from repro.core.ep_to_pp import (
    PlusDecomposition,
    count_ep_answers_via_plus,
    plus_decomposition,
    plus_set,
    plus_set_for_class,
    sentence_holds,
)
from repro.core.oracle_reduction import (
    OracleCallCounter,
    StarCountRecovery,
    count_pp_via_ep_oracle,
    make_brute_force_oracle,
    recover_star_counts,
    solve_vandermonde_system,
)
from repro.core.classification import (
    Case,
    Classification,
    FormulaMeasures,
    classify,
    classify_ep_class,
    classify_pp_class,
    classify_query,
    measure_pp_class,
)

__all__ = [
    "STRATEGIES",
    "count_answers",
    "count_answers_all_strategies",
    "count_answers_sharded",
    "make_counter",
    "counting_equivalent",
    "counting_equivalent_on",
    "group_by_counting_equivalence",
    "renaming_equivalent",
    "renaming_witness",
    "group_by_semi_counting_equivalence",
    "semi_counting_equivalent",
    "semi_counting_equivalent_on",
    "find_distinguishing_structure",
    "find_distinguishing_structure_for_classes",
    "separating_structure",
    "uniquely_satisfied_structure",
    "LinearCombination",
    "Term",
    "cancel",
    "count_by_inclusion_exclusion",
    "raw_inclusion_exclusion",
    "star_decomposition",
    "star_set",
    "PlusDecomposition",
    "count_ep_answers_via_plus",
    "plus_decomposition",
    "plus_set",
    "plus_set_for_class",
    "sentence_holds",
    "OracleCallCounter",
    "StarCountRecovery",
    "count_pp_via_ep_oracle",
    "make_brute_force_oracle",
    "recover_star_counts",
    "solve_vandermonde_system",
    "Case",
    "Classification",
    "FormulaMeasures",
    "classify",
    "classify_ep_class",
    "classify_pp_class",
    "classify_query",
    "measure_pp_class",
]
