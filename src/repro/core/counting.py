"""Counting answers to queries: the library's main entry point.

:func:`count_answers` counts the satisfying assignments (over the
liberal variables) of an existential positive query on a finite
structure.  Several strategies are available; ``"auto"`` (the default)
follows the paper's pipeline:

* primitive positive queries are counted with the Theorem 2.11
  algorithm (core + ∃-component elimination + junction-tree counting),
  which is polynomial in the data for bounded-treewidth query classes;
* general EP queries go through the Section 5.4 decomposition: if some
  sentence disjunct holds the answer is ``|B|^|V|``; otherwise the
  cancelled inclusion-exclusion combination of ``phi*`` is evaluated,
  with each pp-count computed by the Theorem 2.11 algorithm.

The naive strategies are retained as independent baselines for testing
and benchmarking.

Since the introduction of :mod:`repro.engine`, :func:`count_answers`
routes through the process-wide default :class:`~repro.engine.Engine`:
the query-side pipeline work is compiled once into a cached plan, so
repeated calls with the same query (under any strategy) only pay the
per-structure execution cost.  Pass ``engine=None`` explicitly to force
the direct, uncached code path (used by the engine's own equivalence
tests).
"""

from __future__ import annotations

from typing import Callable, Union

from repro.algorithms.brute_force import (
    count_answers_naive,
    count_ep_answers_by_disjuncts,
    count_pp_answers_brute_force,
)
from repro.algorithms.fpt_counting import count_pp_answers_fpt
from repro.core.ep_to_pp import count_ep_answers_via_plus, plus_decomposition
from repro.core.inclusion_exclusion import count_by_inclusion_exclusion
from repro.exceptions import ReproError
from repro.logic.ep import EPFormula
from repro.logic.parser import parse_query
from repro.logic.pp import PPFormula
from repro.structures.structure import Structure

Query = Union[EPFormula, PPFormula, str]

#: The available counting strategies.
STRATEGIES = ("auto", "fpt", "inclusion-exclusion", "disjuncts", "naive")


def _as_ep(query: Query) -> EPFormula:
    if isinstance(query, str):
        return parse_query(query)
    if isinstance(query, PPFormula):
        return EPFormula.from_pp(query)
    if isinstance(query, EPFormula):
        return query
    raise ReproError(f"cannot interpret {query!r} as a query")


_USE_DEFAULT_ENGINE = object()


def count_answers(
    query: Query,
    structure: Structure,
    strategy: str = "auto",
    engine=_USE_DEFAULT_ENGINE,
    context=None,
) -> int:
    """Count the answers ``|query(structure)|``.

    Parameters
    ----------
    query:
        An :class:`~repro.logic.ep.EPFormula`, a
        :class:`~repro.logic.pp.PPFormula`, or query text understood by
        :func:`repro.logic.parser.parse_query`.
    structure:
        The finite relational structure (database) to count over.
    strategy:
        One of ``"auto"``, ``"fpt"``, ``"inclusion-exclusion"``,
        ``"disjuncts"``, ``"naive"``.

        * ``auto`` -- the paper's pipeline (recommended).
        * ``fpt`` -- force the Theorem 2.11 pp-algorithm (the query must
          be primitive positive).
        * ``inclusion-exclusion`` -- force the Section 5.3/5.4 reduction
          to pp-formulas, with FPT counting of each pp-formula.
        * ``disjuncts`` -- materialize the union of the disjuncts'
          answer sets (baseline).
        * ``naive`` -- enumerate all ``|B|^|V|`` assignments (baseline).
    engine:
        The :class:`~repro.engine.Engine` to route through.  Defaults to
        the process-wide default engine (plan caching on); pass ``None``
        to bypass the engine and run the legacy uncached pipeline.
    context:
        An explicit :class:`~repro.engine.context.ExecutionContext`
        built for ``structure``.  When given, the compiled plan is
        executed against that context (sharing its index and memoized
        boundary relations with the caller) instead of the engine's
        context cache; plans still come from the engine's plan cache
        when an engine is in play.
    """
    if strategy not in STRATEGIES:
        raise ReproError(f"unknown strategy {strategy!r}; choose one of {STRATEGIES}")

    if engine is _USE_DEFAULT_ENGINE:
        from repro.engine.api import default_engine

        engine = default_engine()
    if context is not None:
        from repro.engine.executor import execute
        from repro.engine.plan import compile_plan

        if context.structure is not structure and context.structure != structure:
            raise ReproError(
                "the execution context was built for a different structure"
            )
        plan = (
            engine.compile(query, strategy)
            if engine is not None
            else compile_plan(query, strategy)
        )
        return execute(plan, structure, context)
    if engine is not None:
        return engine.count(query, structure, strategy=strategy)

    if strategy == "naive":
        return count_answers_naive(_as_ep(query), structure)
    if strategy == "disjuncts":
        return count_ep_answers_by_disjuncts(_as_ep(query), structure)

    if isinstance(query, str):
        query = parse_query(query)

    if strategy == "fpt":
        if isinstance(query, EPFormula):
            if not query.is_primitive_positive():
                raise ReproError(
                    "strategy 'fpt' applies to primitive positive queries only; "
                    "use 'auto' or 'inclusion-exclusion' for unions"
                )
            query = query.to_pp()
        return count_pp_answers_fpt(query, structure)

    # auto / inclusion-exclusion
    if isinstance(query, PPFormula):
        return count_pp_answers_fpt(query, structure)
    if query.is_primitive_positive():
        return count_pp_answers_fpt(query.to_pp(), structure)
    return count_ep_answers_via_plus(query, structure, counter=count_pp_answers_fpt)


def count_answers_sharded(
    query: Query,
    structure: Structure,
    shard_count: int | None = None,
    strategy: str = "auto",
    engine=_USE_DEFAULT_ENGINE,
    parallel: bool | None = None,
    processes: int | None = None,
) -> int:
    """Count ``|query(structure)|`` by sharded data-side execution.

    Convenience wrapper over :meth:`repro.engine.Engine.count_sharded`:
    the structure is partitioned into component-aligned shards (default:
    one per CPU), each connected query component is counted per shard --
    over the process pool where that pays off -- and the exact count is
    recombined (shard counts sum, query components multiply, sentence
    components OR).
    """
    if engine is _USE_DEFAULT_ENGINE:
        from repro.engine.api import default_engine

        engine = default_engine()
    if engine is None:
        from repro.engine.api import Engine

        # A throwaway engine must tear its worker pool down before it
        # goes out of scope; leaving that to ``__del__`` leaked the
        # child processes until some later GC pass (or never).
        with Engine() as engine:
            return engine.count_sharded(
                query,
                structure,
                shard_count=shard_count,
                strategy=strategy,
                parallel=parallel,
                processes=processes,
            )
    return engine.count_sharded(
        query,
        structure,
        shard_count=shard_count,
        strategy=strategy,
        parallel=parallel,
        processes=processes,
    )


def count_answers_all_strategies(query: Query, structure: Structure) -> dict[str, int]:
    """Count with every applicable strategy; used for cross-validation.

    Returns a mapping from strategy name to count.  All values must
    agree for a correct implementation; the test-suite asserts this on
    randomized inputs.
    """
    ep = _as_ep(query)
    out = {
        "naive": count_answers_naive(ep, structure),
        "disjuncts": count_ep_answers_by_disjuncts(ep, structure),
        "auto": count_answers(ep, structure, strategy="auto"),
    }
    if ep.is_primitive_positive():
        out["fpt"] = count_pp_answers_fpt(ep.to_pp(), structure)
        out["pp-bruteforce"] = count_pp_answers_brute_force(ep.to_pp(), structure)
    else:
        out["inclusion-exclusion"] = count_answers(ep, structure, strategy="inclusion-exclusion")
    return out


def make_counter(strategy: str = "auto") -> Callable[[Query, Structure], int]:
    """A counting callable with the strategy baked in (for harness code)."""

    def counter(query: Query, structure: Structure) -> int:
        return count_answers(query, structure, strategy=strategy)

    return counter
