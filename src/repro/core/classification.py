"""The trichotomy classifier (Theorems 2.11, 2.12 and 3.2).

The paper classifies the parameterized complexity of ``param-count[Phi]``
for every bounded-arity set ``Phi`` of EP formulas into three cases,
determined by two structural conditions on the associated pp-formula set
``Phi+``:

* **contraction condition** -- the contract graphs of the formulas have
  bounded treewidth;
* **tractability condition** -- the contraction condition holds *and*
  the cores have bounded treewidth.

Case 1 (tractability condition): fixed-parameter tractable.
Case 2 (contraction but not tractability): equivalent to ``p-Clique``.
Case 3 (otherwise): at least as hard as ``p-#Clique``.

"Bounded" is a property of an infinite class, which no finite
computation can decide for an arbitrary class; the classifier therefore
works against an explicit treewidth bound supplied by the caller (the
usual situation: the caller knows or asserts the bound defining their
query class and wants to know which side of the frontier it falls on),
or reports the exact structural parameters so the caller can reason
about how they grow along a family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Sequence

from repro.algorithms.fpt_counting import contract_graph
from repro.algorithms.treewidth import treewidth
from repro.core.ep_to_pp import plus_set
from repro.exceptions import ArityBoundError, ClassificationError
from repro.logic.ep import EPFormula
from repro.logic.pp import PPFormula


class Case(Enum):
    """The three outcomes of the trichotomy (Theorem 3.2)."""

    FPT = "fixed-parameter tractable"
    CLIQUE_EQUIVALENT = "equivalent to p-Clique"
    SHARP_CLIQUE_HARD = "at least as hard as p-#Clique"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FormulaMeasures:
    """Structural measures of a single pp-formula."""

    formula: PPFormula
    core_treewidth: int
    contract_treewidth: int

    @classmethod
    def of(
        cls, formula: PPFormula, exact_threshold: int | None = None
    ) -> "FormulaMeasures":
        """Measure ``formula``.

        ``exact_threshold`` overrides the exact-treewidth size cutoff
        (see :func:`repro.algorithms.treewidth.treewidth`): graphs
        larger than it get a greedy elimination-ordering *upper bound*
        instead of the exponential exact algorithm.  Plan profiling
        passes a small cutoff so classification never costs more than
        the execution it gates.
        """
        core = formula.core()
        kwargs = (
            {} if exact_threshold is None
            else {"exact_threshold": exact_threshold}
        )
        core_width, _ = treewidth(core.graph(), **kwargs)
        contract_width, _ = treewidth(
            contract_graph(core, use_core=False), **kwargs
        )
        return cls(formula=formula, core_treewidth=core_width, contract_treewidth=contract_width)


@dataclass(frozen=True)
class Classification:
    """The result of classifying a (finite sample of a) query class."""

    case: Case
    treewidth_bound: int
    max_core_treewidth: int
    max_contract_treewidth: int
    measures: tuple[FormulaMeasures, ...]
    pp_formulas: tuple[PPFormula, ...]

    @property
    def satisfies_contraction_condition(self) -> bool:
        """Contract graphs within the bound."""
        return self.max_contract_treewidth <= self.treewidth_bound

    @property
    def satisfies_tractability_condition(self) -> bool:
        """Contract graphs and cores within the bound."""
        return (
            self.satisfies_contraction_condition
            and self.max_core_treewidth <= self.treewidth_bound
        )

    def witnesses(self, condition: str = "tractability") -> tuple[FormulaMeasures, ...]:
        """The formulas violating the given condition (``"tractability"`` or ``"contraction"``)."""
        if condition == "contraction":
            return tuple(
                m for m in self.measures if m.contract_treewidth > self.treewidth_bound
            )
        if condition == "tractability":
            return tuple(
                m
                for m in self.measures
                if m.contract_treewidth > self.treewidth_bound
                or m.core_treewidth > self.treewidth_bound
            )
        raise ClassificationError(f"unknown condition {condition!r}")

    def summary(self) -> str:
        """A one-paragraph human-readable summary."""
        return (
            f"case: {self.case.value}; bound w={self.treewidth_bound}; "
            f"max core treewidth {self.max_core_treewidth}; "
            f"max contract treewidth {self.max_contract_treewidth}; "
            f"{len(self.pp_formulas)} pp-formulas examined"
        )


def check_bounded_arity(formulas: Iterable[PPFormula], bound: int) -> None:
    """Raise :class:`ArityBoundError` unless every relation arity is <= bound."""
    for formula in formulas:
        if formula.max_arity() > bound:
            raise ArityBoundError(
                f"formula {formula} uses arity {formula.max_arity()}, exceeding the bound {bound}"
            )


def measure_pp_class(
    formulas: Sequence[PPFormula], exact_threshold: int | None = None
) -> list[FormulaMeasures]:
    """Compute core and contract treewidths for a collection of pp-formulas."""
    return [
        FormulaMeasures.of(formula, exact_threshold=exact_threshold)
        for formula in formulas
    ]


def classify_pp_class(
    formulas: Sequence[PPFormula],
    treewidth_bound: int,
    arity_bound: int | None = None,
) -> Classification:
    """Classify a class of prenex pp-formulas (Theorems 2.11 / 2.12).

    ``formulas`` is the class (or a representative finite sample of it),
    ``treewidth_bound`` the bound defining "bounded treewidth" for this
    class.  ``arity_bound`` optionally enforces the bounded-arity
    hypothesis of the hardness results.
    """
    if not formulas:
        raise ClassificationError("cannot classify an empty class of formulas")
    if arity_bound is not None:
        check_bounded_arity(formulas, arity_bound)
    measures = measure_pp_class(formulas)
    max_core = max(m.core_treewidth for m in measures)
    max_contract = max(m.contract_treewidth for m in measures)
    if max_contract <= treewidth_bound and max_core <= treewidth_bound:
        case = Case.FPT
    elif max_contract <= treewidth_bound:
        case = Case.CLIQUE_EQUIVALENT
    else:
        case = Case.SHARP_CLIQUE_HARD
    return Classification(
        case=case,
        treewidth_bound=treewidth_bound,
        max_core_treewidth=max_core,
        max_contract_treewidth=max_contract,
        measures=tuple(measures),
        pp_formulas=tuple(formulas),
    )


def classify_ep_class(
    queries: Sequence[EPFormula],
    treewidth_bound: int,
    arity_bound: int | None = None,
) -> Classification:
    """Classify a class of EP formulas via the equivalence theorem (Theorem 3.2).

    Computes ``Phi+`` (the union of the ``phi+`` sets) and applies the
    pp-classification to it; by Theorem 3.1 the complexity of counting
    answers to the EP class is exactly that of the pp class.
    """
    if not queries:
        raise ClassificationError("cannot classify an empty class of queries")
    pp_formulas: list[PPFormula] = []
    seen: set[PPFormula] = set()
    for query in queries:
        for formula in plus_set(query):
            if formula not in seen:
                seen.add(formula)
                pp_formulas.append(formula)
    if not pp_formulas:
        # Degenerate: every query reduced to an empty plus set (e.g. the
        # queries are unsatisfiable-free tautologies); counting is trivially FPT.
        return Classification(
            case=Case.FPT,
            treewidth_bound=treewidth_bound,
            max_core_treewidth=-1,
            max_contract_treewidth=-1,
            measures=(),
            pp_formulas=(),
        )
    return classify_pp_class(pp_formulas, treewidth_bound, arity_bound=arity_bound)


def classify_query(
    query: EPFormula | PPFormula,
    treewidth_bound: int = 2,
) -> Classification:
    """Classify the singleton class containing one query.

    A single query is always fixed-parameter tractable in the formal
    sense (the parameter is constant); the classification is still
    informative because its structural measures tell how the query's
    family scales -- this is the per-query report used by the examples.
    """
    if isinstance(query, PPFormula):
        return classify_pp_class([query], treewidth_bound)
    return classify_ep_class([query], treewidth_bound)


def classify(
    query: EPFormula | PPFormula | str,
    treewidth_bound: int = 2,
) -> Classification:
    """Classify one query (string queries are parsed first).

    The convenience entry point exported at the package root: accepts
    the same query forms as :func:`repro.count_answers` and returns the
    full :class:`Classification` (verdict, measures, witnesses).
    """
    if isinstance(query, str):
        from repro.logic.parser import parse_query

        query = parse_query(query)
    return classify_query(query, treewidth_bound=treewidth_bound)
