"""Homomorphisms between relational structures.

A homomorphism from ``A`` to ``B`` is a map ``h`` on universes such that
every tuple of every relation of ``A`` is mapped to a tuple of the same
relation of ``B``.  Homomorphisms are the computational heart of the
library:

* an answer to a prenex pp-formula ``(A, S)`` on ``B`` is a map
  ``S -> B`` that extends to a homomorphism ``A -> B``;
* logical entailment and equivalence of pp-formulas reduce to
  homomorphism existence between augmented structures (Theorem 2.3);
* counting equivalence reduces to the existence of *surjective*
  renamings extendable to homomorphisms (Theorem 5.4).

The solver is a backtracking search with forward checking over
per-element candidate sets, which is exact and fast enough for the
formula-sized structures that appear as parameters.  Structures that
play the role of data can be large; they only ever appear on the
right-hand side, where they contribute to candidate sets, not to the
branching factor.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.budget import current_budget
from repro.exceptions import SignatureError, StructureError
from repro.structures.indexes import PositionalIndex
from repro.structures.structure import Element, Structure

Assignment = dict[Element, Element]


def _check_compatible(source: Structure, target: Structure) -> None:
    if not source.signature.is_subsignature_of(target.signature):
        raise SignatureError(
            "source signature must be a subsignature of the target signature"
        )


class _HomomorphismSearch:
    """Backtracking search for homomorphisms from ``source`` to ``target``.

    The search maintains, for every source element, the set of target
    elements it may still be mapped to (its *candidates*).  Assigning an
    element triggers forward checking: for every tuple of the source all
    of whose other entries are already assigned, the candidates of the
    remaining entry are pruned to those completing the tuple inside the
    target relation.
    """

    def __init__(
        self,
        source: Structure,
        target: Structure,
        fixed: Mapping[Element, Element] | None = None,
        target_index: PositionalIndex | None = None,
    ):
        _check_compatible(source, target)
        self.source = source
        self.target = target
        self.elements = sorted(source.universe, key=repr)
        self.target_elements = sorted(target.universe, key=repr)
        # The target relations indexed by (relation, position, value);
        # callers that evaluate many searches against the same target
        # (the engine executor) pass a shared prebuilt index.
        if target_index is None:
            target_index = PositionalIndex(target)
        self._index = target_index
        self._target_tuples = {name: target_index.tuples(name) for name in source.signature.names}
        # Constraints: for each source element, the tuples it participates in.
        self._constraints: dict[Element, list[tuple[str, tuple[Element, ...]]]] = {
            e: [] for e in self.elements
        }
        for name, tuples in source.relations.items():
            for t in tuples:
                for e in set(t):
                    self._constraints[e].append((name, t))
        self.fixed = dict(fixed or {})
        for key, value in self.fixed.items():
            if key not in source.universe:
                raise StructureError(f"fixed element {key!r} is not in the source universe")
            if value not in target.universe:
                raise StructureError(f"fixed image {value!r} is not in the target universe")

    # ------------------------------------------------------------------
    def _consistent(self, assignment: Assignment, element: Element, value: Element) -> bool:
        """Check all constraints of ``element`` against the target index.

        Fully assigned tuples are exact membership tests; partially
        assigned tuples are forward-checked: the branch is cut as soon as
        no target tuple is compatible with the assigned positions.
        """
        assignment[element] = value
        try:
            for name, t in self._constraints[element]:
                if all(e in assignment for e in t):
                    image = tuple(assignment[e] for e in t)
                    if image not in self._target_tuples[name]:
                        return False
                else:
                    fixed = {
                        position: assignment[e]
                        for position, e in enumerate(t)
                        if e in assignment
                    }
                    if not self._index.has_compatible_tuple(name, fixed):
                        return False
            return True
        finally:
            del assignment[element]

    def _order(self) -> list[Element]:
        """Assign most-constrained elements first."""
        return sorted(
            self.elements,
            key=lambda e: (-len(self._constraints[e]), repr(e)),
        )

    def solutions(self, restrict_to: frozenset[Element] | None = None) -> Iterator[Assignment]:
        """Yield homomorphisms (as dicts); optionally project to a subset.

        When ``restrict_to`` is given, the iterator yields each distinct
        restriction of a homomorphism to ``restrict_to`` exactly once.
        """
        order = self._order()
        if restrict_to is not None:
            # Assign the projection variables first so that distinct
            # projections can be enumerated without exploring all
            # extensions more than once.
            order = sorted(order, key=lambda e: (e not in restrict_to,))
        assignment: Assignment = {}
        seen_projections: set[tuple[tuple[Element, Element], ...]] = set()
        budget = current_budget()

        def candidates(element: Element) -> Iterable[Element]:
            if element in self.fixed:
                return [self.fixed[element]]
            return self.target_elements

        def backtrack(index: int) -> Iterator[Assignment]:
            if restrict_to is not None and index > 0:
                # If all projection variables are assigned, we only need to
                # know whether *some* extension exists.
                if all(e in assignment for e in restrict_to) and index < len(order):
                    projection = tuple(sorted(((e, assignment[e]) for e in restrict_to), key=repr))
                    if projection in seen_projections:
                        return
                    if _extends(order[index:], dict(assignment)):
                        seen_projections.add(projection)
                        yield {e: assignment[e] for e in restrict_to}
                    return
            if index == len(order):
                if restrict_to is None:
                    yield dict(assignment)
                else:
                    projection = tuple(sorted(((e, assignment[e]) for e in restrict_to), key=repr))
                    if projection not in seen_projections:
                        seen_projections.add(projection)
                        yield {e: assignment[e] for e in restrict_to}
                return
            element = order[index]
            if budget is not None:
                budget.charge(len(self.target_elements))
            for value in candidates(element):
                if self._consistent(assignment, element, value):
                    assignment[element] = value
                    yield from backtrack(index + 1)
                    del assignment[element]

        def _extends(remaining: list[Element], partial: Assignment) -> bool:
            if not remaining:
                return True
            element = remaining[0]
            if budget is not None:
                budget.charge(len(self.target_elements))
            for value in candidates(element):
                if self._consistent(partial, element, value):
                    partial[element] = value
                    if _extends(remaining[1:], partial):
                        del partial[element]
                        return True
                    del partial[element]
            return False

        yield from backtrack(0)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def find_homomorphism(
    source: Structure,
    target: Structure,
    fixed: Mapping[Element, Element] | None = None,
    target_index: PositionalIndex | None = None,
) -> Assignment | None:
    """Return a homomorphism from ``source`` to ``target`` or ``None``.

    ``fixed`` pins the images of selected source elements; this is how
    the library checks whether a partial assignment of liberal variables
    extends to a full homomorphism.  ``target_index`` supplies a prebuilt
    :class:`PositionalIndex` of the target, amortizing the indexing cost
    over many searches against the same structure.
    """
    search = _HomomorphismSearch(source, target, fixed, target_index)
    for solution in search.solutions():
        return solution
    return None


def has_homomorphism(
    source: Structure,
    target: Structure,
    fixed: Mapping[Element, Element] | None = None,
    target_index: PositionalIndex | None = None,
) -> bool:
    """True if a homomorphism from ``source`` to ``target`` exists."""
    return find_homomorphism(source, target, fixed, target_index) is not None


def enumerate_homomorphisms(
    source: Structure,
    target: Structure,
    fixed: Mapping[Element, Element] | None = None,
    target_index: PositionalIndex | None = None,
) -> Iterator[Assignment]:
    """Iterate over all homomorphisms from ``source`` to ``target``."""
    return _HomomorphismSearch(source, target, fixed, target_index).solutions()


def count_homomorphisms(
    source: Structure,
    target: Structure,
    fixed: Mapping[Element, Element] | None = None,
    target_index: PositionalIndex | None = None,
) -> int:
    """Count the homomorphisms from ``source`` to ``target``.

    This is a brute-force count; for the treewidth-aware algorithm see
    :mod:`repro.algorithms.homomorphism_counting`.
    """
    return sum(1 for _ in enumerate_homomorphisms(source, target, fixed, target_index))


def enumerate_extendable_assignments(
    source: Structure,
    target: Structure,
    variables: Iterable[Element],
    target_index: PositionalIndex | None = None,
) -> Iterator[Assignment]:
    """Enumerate maps ``variables -> target`` extendable to homomorphisms.

    ``variables`` must be a subset of the universe of ``source``.  Each
    distinct extendable restriction is produced exactly once; this is
    the answer set of the pp-formula ``(source, variables)`` on
    ``target``, restricted to the variables that occur in the source.
    """
    restrict = frozenset(variables)
    unknown = restrict - source.universe
    if unknown:
        raise StructureError(
            f"projection variables {sorted(map(repr, unknown))} are not in the source universe"
        )
    search = _HomomorphismSearch(source, target, target_index=target_index)
    return search.solutions(restrict_to=restrict)


def count_extendable_assignments(
    source: Structure,
    target: Structure,
    variables: Iterable[Element],
    target_index: PositionalIndex | None = None,
) -> int:
    """Count the maps ``variables -> target`` extendable to homomorphisms."""
    return sum(
        1
        for _ in enumerate_extendable_assignments(source, target, variables, target_index)
    )


def is_homomorphism(
    mapping: Mapping[Element, Element], source: Structure, target: Structure
) -> bool:
    """Check whether ``mapping`` is a homomorphism from ``source`` to ``target``."""
    _check_compatible(source, target)
    for element in source.universe:
        if element not in mapping:
            return False
        if mapping[element] not in target.universe:
            return False
    for name, tuples in source.relations.items():
        target_tuples = target.relation(name)
        for t in tuples:
            if tuple(mapping[e] for e in t) not in target_tuples:
                return False
    return True


def find_surjective_renaming(
    source: Structure,
    target: Structure,
    source_vars: Iterable[Element],
    target_vars: Iterable[Element],
) -> Assignment | None:
    """Find a surjection ``source_vars -> target_vars`` extendable to a homomorphism.

    This is the witness required by renaming equivalence (Definition 5.3
    in the paper): a surjective map between the liberal-variable sets
    that extends to a full homomorphism between the formula structures.
    Returns the restriction of such a homomorphism to ``source_vars``,
    or ``None`` if no witness exists.
    """
    source_set = frozenset(source_vars)
    target_set = frozenset(target_vars)
    if len(source_set) < len(target_set):
        return None
    search = _HomomorphismSearch(source, target)
    for restriction in search.solutions(restrict_to=source_set):
        image = {restriction[v] for v in source_set}
        if target_set <= image and image <= target_set:
            return restriction
    return None


def homomorphic_equivalent(first: Structure, second: Structure) -> bool:
    """True if the structures are homomorphically equivalent."""
    return has_homomorphism(first, second) and has_homomorphism(second, first)


def hom_profile(
    structure: Structure, probes: Iterable[Structure]
) -> tuple[int, ...]:
    """The vector of homomorphism counts from ``structure`` to each probe.

    Provided as a convenience for experiments exploring the classical
    result that homomorphism-count vectors characterize isomorphism.
    """
    return tuple(count_homomorphisms(structure, probe) for probe in probes)
