"""Relational structure substrate: finite structures and their algebra."""

from repro.structures.structure import (
    Structure,
    StructureBuilder,
    complete_structure,
    single_loop_structure,
)
from repro.structures.operations import (
    add_idempotent_copies,
    direct_product,
    disjoint_union,
    idempotent_structure,
    power,
    relabel_to_integers,
    union_relations,
)
from repro.structures.homomorphism import (
    count_extendable_assignments,
    count_homomorphisms,
    enumerate_extendable_assignments,
    enumerate_homomorphisms,
    find_homomorphism,
    find_surjective_renaming,
    has_homomorphism,
    homomorphic_equivalent,
    is_homomorphism,
)
from repro.structures.delta import StructureDelta
from repro.structures.indexes import PositionalIndex
from repro.structures.cores import (
    augmented_structure,
    core,
    core_of_pp_structure,
    is_core,
    is_isomorphic,
    strip_augmentation,
)
from repro.structures.graphs import (
    component_substructures,
    connected_components,
    gaifman_graph,
    is_connected_formula,
    primal_graph_of_atoms,
)
from repro.structures.random_gen import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_cluster_graph,
    random_graph,
    random_structure,
)
from repro.structures.sharding import (
    SHARD_STRATEGIES,
    ShardedStructure,
    combine_shard_counts,
    data_components,
    shard_structure,
)

__all__ = [
    "Structure",
    "StructureBuilder",
    "StructureDelta",
    "complete_structure",
    "single_loop_structure",
    "add_idempotent_copies",
    "direct_product",
    "disjoint_union",
    "idempotent_structure",
    "power",
    "relabel_to_integers",
    "union_relations",
    "count_extendable_assignments",
    "count_homomorphisms",
    "enumerate_extendable_assignments",
    "enumerate_homomorphisms",
    "find_homomorphism",
    "find_surjective_renaming",
    "has_homomorphism",
    "homomorphic_equivalent",
    "is_homomorphism",
    "PositionalIndex",
    "augmented_structure",
    "core",
    "core_of_pp_structure",
    "is_core",
    "is_isomorphic",
    "strip_augmentation",
    "component_substructures",
    "connected_components",
    "gaifman_graph",
    "is_connected_formula",
    "primal_graph_of_atoms",
    "clique_graph",
    "cycle_graph",
    "grid_graph",
    "path_graph",
    "random_cluster_graph",
    "random_graph",
    "random_structure",
    "SHARD_STRATEGIES",
    "ShardedStructure",
    "combine_shard_counts",
    "data_components",
    "shard_structure",
]
