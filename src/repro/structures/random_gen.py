"""Random structure generators.

These generators produce the synthetic "databases" used by the examples,
tests and benchmark harness.  All generators take an explicit
``random.Random`` instance or seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.exceptions import WorkloadError
from repro.logic.signatures import Signature
from repro.structures.structure import Structure


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_graph(
    size: int,
    edge_probability: float,
    seed: int | random.Random | None = None,
    relation: str = "E",
    symmetric: bool = False,
    loops: bool = False,
) -> Structure:
    """An Erdos-Renyi style random directed graph structure.

    Parameters
    ----------
    size:
        Number of vertices (the universe is ``0 .. size-1``).
    edge_probability:
        Probability of each ordered pair being an edge.
    symmetric:
        If true, edges are added in both directions together.
    loops:
        If true, self-loops are eligible.
    """
    if size < 0:
        raise WorkloadError("size must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise WorkloadError("edge_probability must be in [0, 1]")
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    for source in range(size):
        for target in range(size):
            if source == target and not loops:
                continue
            if symmetric and source > target:
                continue
            if rng.random() < edge_probability:
                edges.add((source, target))
                if symmetric:
                    edges.add((target, source))
    signature = Signature.graph(relation)
    return Structure(signature, range(size), {relation: edges})


def random_cluster_graph(
    clusters: int,
    cluster_size: int,
    edge_probability: float,
    seed: int | random.Random | None = None,
    relation: str = "E",
) -> Structure:
    """A disjoint union of dense Erdos-Renyi clusters.

    The universe is ``0 .. clusters*cluster_size - 1``; edges only ever
    connect vertices of the same cluster, so the Gaifman graph has (up
    to) ``clusters`` connected components and the structure shards
    cleanly (:mod:`repro.structures.sharding`).  This is the
    many-tenants data shape of the serving scenario: expected tuple
    count is ``clusters * cluster_size * (cluster_size - 1) *
    edge_probability``, so e.g. ``(60, 16, 0.7)`` yields a ``10^4``-tuple
    structure.
    """
    if clusters < 0 or cluster_size < 0:
        raise WorkloadError("clusters and cluster_size must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise WorkloadError("edge_probability must be in [0, 1]")
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    for cluster in range(clusters):
        offset = cluster * cluster_size
        for source in range(offset, offset + cluster_size):
            for target in range(offset, offset + cluster_size):
                if source != target and rng.random() < edge_probability:
                    edges.add((source, target))
    signature = Signature.graph(relation)
    return Structure(signature, range(clusters * cluster_size), {relation: edges})


def random_structure(
    signature: Signature,
    size: int,
    tuple_probability: float,
    seed: int | random.Random | None = None,
) -> Structure:
    """A random structure over an arbitrary signature.

    For relations of arity ``k`` the expected number of tuples is
    ``tuple_probability * size**k``; to keep generation cheap for higher
    arities, tuples are sampled rather than enumerated when ``size**k``
    is large.
    """
    if size < 0:
        raise WorkloadError("size must be non-negative")
    if not 0.0 <= tuple_probability <= 1.0:
        raise WorkloadError("tuple_probability must be in [0, 1]")
    rng = _rng(seed)
    universe = list(range(size))
    relations: dict[str, set[tuple[int, ...]]] = {}
    for symbol in signature:
        total = size**symbol.arity
        chosen: set[tuple[int, ...]] = set()
        if total <= 100_000:
            from itertools import product as iter_product

            for candidate in iter_product(universe, repeat=symbol.arity):
                if rng.random() < tuple_probability:
                    chosen.add(candidate)
        else:
            expected = int(tuple_probability * total)
            for _ in range(expected):
                chosen.add(tuple(rng.choice(universe) for _ in range(symbol.arity)))
        relations[symbol.name] = chosen
    return Structure(signature, universe, relations)


def path_graph(length: int, relation: str = "E") -> Structure:
    """A directed path with ``length`` edges (``length + 1`` vertices)."""
    if length < 0:
        raise WorkloadError("length must be non-negative")
    edges = [(i, i + 1) for i in range(length)]
    return Structure(Signature.graph(relation), range(length + 1), {relation: edges})


def cycle_graph(length: int, relation: str = "E") -> Structure:
    """A directed cycle on ``length`` vertices."""
    if length < 1:
        raise WorkloadError("length must be at least 1")
    edges = [(i, (i + 1) % length) for i in range(length)]
    return Structure(Signature.graph(relation), range(length), {relation: edges})


def clique_graph(size: int, relation: str = "E", loops: bool = False) -> Structure:
    """The complete directed graph on ``size`` vertices."""
    if size < 0:
        raise WorkloadError("size must be non-negative")
    edges = [
        (i, j) for i in range(size) for j in range(size) if loops or i != j
    ]
    return Structure(Signature.graph(relation), range(size), {relation: edges})


def grid_graph(rows: int, cols: int, relation: str = "E") -> Structure:
    """A directed grid graph; vertices are ``(row, col)`` pairs."""
    if rows < 1 or cols < 1:
        raise WorkloadError("rows and cols must be positive")
    vertices = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
    return Structure(Signature.graph(relation), vertices, {relation: edges})


def random_bipartite_relation(
    left: Sequence[object],
    right: Sequence[object],
    probability: float,
    relation: str,
    seed: int | random.Random | None = None,
) -> Structure:
    """A random binary relation between two disjoint element sets."""
    if not 0.0 <= probability <= 1.0:
        raise WorkloadError("probability must be in [0, 1]")
    rng = _rng(seed)
    tuples = {
        (l, r) for l in left for r in right if rng.random() < probability
    }
    signature = Signature.from_arities({relation: 2})
    return Structure(signature, list(left) + list(right), {relation: tuples})
