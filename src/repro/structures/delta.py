"""Tuple-batch deltas: the unit of change for *live* structures.

A :class:`StructureDelta` is an immutable batch of tuple insertions and
deletions, grouped per relation.  Applying one to a
:class:`~repro.structures.structure.Structure` produces a new structure
*version* whose fingerprint is **chained** -- a digest over the parent
fingerprint plus the delta's canonical byte encoding -- rather than
recomputed from the full content.  Chaining makes the fingerprint of a
versioned structure cost ``O(|delta|)`` instead of ``O(|structure|)``,
which is what lets every fingerprint-keyed cache layer (parent context
cache, worker-resident pins, registry entries) migrate an entry under a
delta instead of rebuilding it.

Deltas are strict by design: deleting an absent tuple or re-inserting a
present one raises :class:`~repro.exceptions.DeltaError` instead of
being silently ignored, so a delta always describes exactly the set
difference between two versions and the per-relation tuple counts in
the chained fingerprint stay exact.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Mapping

from repro.exceptions import DeltaError

Element = Hashable
TupleBatch = frozenset[tuple]


def _canonical_batches(
    label: str, batches: Mapping[str, Iterable[tuple[Element, ...]]] | None
) -> dict[str, TupleBatch]:
    """Validate and canonicalize one side (insert or delete) of a delta."""
    out: dict[str, TupleBatch] = {}
    for name, tuples in (batches or {}).items():
        if not isinstance(name, str) or not name:
            raise DeltaError(f"relation names must be non-empty strings, got {name!r}")
        batch = frozenset(tuple(t) for t in tuples)
        if not batch:
            continue
        arities = {len(t) for t in batch}
        if len(arities) > 1:
            raise DeltaError(
                f"{label} batch for relation {name!r} mixes arities {sorted(arities)}"
            )
        if 0 in arities:
            raise DeltaError(f"{label} batch for relation {name!r} contains an empty tuple")
        out[name] = batch
    return out


class StructureDelta:
    """An immutable insert/delete tuple batch, grouped per relation.

    Parameters
    ----------
    inserts:
        Mapping from relation name to an iterable of tuples to insert.
    deletes:
        Mapping from relation name to an iterable of tuples to delete.

    A tuple may not appear on both sides for the same relation, every
    batch must be arity-consistent, and empty batches are dropped, so
    two deltas describing the same change always compare (and digest)
    equal.
    """

    __slots__ = ("_inserts", "_deletes", "_digest")

    def __init__(
        self,
        inserts: Mapping[str, Iterable[tuple[Element, ...]]] | None = None,
        deletes: Mapping[str, Iterable[tuple[Element, ...]]] | None = None,
    ):
        self._inserts = _canonical_batches("insert", inserts)
        self._deletes = _canonical_batches("delete", deletes)
        for name in self._inserts.keys() & self._deletes.keys():
            both = self._inserts[name] & self._deletes[name]
            if both:
                raise DeltaError(
                    f"tuples appear in both the insert and delete batch of "
                    f"relation {name!r}: {sorted(map(repr, both))}"
                )
            if len(self._inserts[name]) and len(self._deletes[name]):
                arity = len(next(iter(self._inserts[name])))
                if arity != len(next(iter(self._deletes[name]))):
                    raise DeltaError(
                        f"insert and delete batches for relation {name!r} "
                        "disagree on arity"
                    )
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inserts(self) -> dict[str, TupleBatch]:
        """A copy of the relation-name to inserted-tuple-set mapping."""
        return dict(self._inserts)

    @property
    def deletes(self) -> dict[str, TupleBatch]:
        """A copy of the relation-name to deleted-tuple-set mapping."""
        return dict(self._deletes)

    @property
    def relations(self) -> frozenset[str]:
        """The names of every relation the delta touches."""
        return frozenset(self._inserts) | frozenset(self._deletes)

    @property
    def tuple_count(self) -> int:
        """Total tuples across both sides (the delta's "size")."""
        return sum(len(b) for b in self._inserts.values()) + sum(
            len(b) for b in self._deletes.values()
        )

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not self._inserts and not self._deletes

    def inserted_elements(self) -> frozenset[Element]:
        """Every element mentioned by an inserted tuple."""
        out: set[Element] = set()
        for batch in self._inserts.values():
            for t in batch:
                out.update(t)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def canonical_bytes(self) -> bytes:
        """A process-stable byte encoding of the delta's content.

        Relations are visited in sorted name order and tuples in sorted
        ``repr`` order (the same conventions as
        :meth:`Structure.fingerprint`), so equal deltas always encode
        identically across processes and runs.  This encoding is what
        gets folded into the chained fingerprint of a delta-applied
        structure.
        """
        parts: list[bytes] = []
        for label, side in ((b"+", self._inserts), (b"-", self._deletes)):
            for name in sorted(side):
                parts.append(b"\x02" + label + name.encode("utf-8") + b"\x02")
                for t in sorted(map(repr, side[name])):
                    parts.append(t.encode("utf-8", "backslashreplace") + b"\x00")
        return b"".join(parts)

    def digest(self) -> str:
        """BLAKE2 digest of :meth:`canonical_bytes` (memoized)."""
        if self._digest is None:
            self._digest = hashlib.blake2b(
                self.canonical_bytes(), digest_size=16
            ).hexdigest()
        return self._digest

    # ------------------------------------------------------------------
    # Equality / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructureDelta):
            return NotImplemented
        return self._inserts == other._inserts and self._deletes == other._deletes

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted(self._inserts.items())),
                tuple(sorted(self._deletes.items())),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(f"+{name}:{len(b)}" for name, b in sorted(self._inserts.items()))
        dels = ", ".join(f"-{name}:{len(b)}" for name, b in sorted(self._deletes.items()))
        body = ", ".join(p for p in (ins, dels) if p)
        return f"StructureDelta({body or 'empty'})"
