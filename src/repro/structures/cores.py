"""Cores and augmented structures.

A structure is a *core* if it is not homomorphically equivalent to any
proper substructure of itself; a *core of* a structure ``A`` is a
substructure of ``A`` that is a core and is homomorphically equivalent
to ``A``.  All cores of a structure are isomorphic, so one speaks of
"the" core.

For a prenex pp-formula ``(A, S)`` the paper works with the *augmented
structure* ``aug(A, S)``: the expansion of ``A`` by one fresh singleton
relation ``R_a = {(a,)}`` per liberal variable ``a in S``.  Homomorphisms
between augmented structures are exactly the homomorphisms that fix the
liberal variables pointwise, which is what logical entailment between
pp-formulas with the same liberal variables requires (Theorem 2.3).  The
*core of the pp-formula* is defined as the core of its augmented
structure.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import StructureError
from repro.logic.signatures import RelationSymbol, Signature
from repro.structures.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphic_equivalent,
)
from repro.structures.structure import Element, Structure

#: Prefix used for the singleton relations of augmented structures.  The
#: prefix is chosen so it cannot clash with user relation names produced
#: by the parser (which forbids ``@`` in identifiers).
AUGMENT_PREFIX = "@lib_"


def augment_relation_name(variable: Element) -> str:
    """The name of the singleton relation marking a liberal variable."""
    return f"{AUGMENT_PREFIX}{variable}"


def augmented_structure(structure: Structure, liberal: Iterable[Element]) -> Structure:
    """The augmented structure ``aug(A, S)`` of a pp-formula ``(A, S)``.

    Adds, for every liberal variable ``a``, a unary relation containing
    exactly ``(a,)``.  The liberal variables must be elements of the
    structure's universe.
    """
    liberal_set = frozenset(liberal)
    missing = liberal_set - structure.universe
    if missing:
        raise StructureError(
            f"liberal variables {sorted(map(repr, missing))} are not in the universe"
        )
    result = structure
    for variable in sorted(liberal_set, key=repr):
        symbol = RelationSymbol(augment_relation_name(variable), 1)
        result = result.add_relation(symbol, [(variable,)])
    return result


def strip_augmentation(structure: Structure) -> Structure:
    """Remove the singleton relations added by :func:`augmented_structure`."""
    kept = Signature(s for s in structure.signature if not s.name.startswith(AUGMENT_PREFIX))
    return structure.reduct(kept)


def is_core(structure: Structure) -> bool:
    """Decide whether ``structure`` is a core.

    A structure is a core iff every homomorphism from it to itself is
    surjective (equivalently, it has no homomorphism to a proper induced
    substructure).  The check enumerates proper substructures obtained by
    dropping one element at a time, which suffices: if a retraction to a
    smaller substructure exists, one exists to a substructure missing
    some particular element.
    """
    for element in structure.universe:
        smaller = structure.restrict(structure.universe - {element})
        if has_homomorphism(structure, smaller):
            return False
    return True


def core(structure: Structure) -> Structure:
    """Compute a core of ``structure``.

    Greedily removes elements while a homomorphism from the current
    structure into the smaller induced substructure exists.  The result
    is an induced substructure that is a core and is homomorphically
    equivalent to the input (cores are unique up to isomorphism).
    """
    current = structure
    changed = True
    while changed:
        changed = False
        for element in sorted(current.universe, key=repr):
            smaller = current.restrict(current.universe - {element})
            hom = find_homomorphism(current, smaller)
            if hom is not None:
                # Retract: the image of the current structure inside the
                # smaller one is again hom-equivalent to the original.
                image = {hom[e] for e in current.universe}
                current = current.restrict(image)
                changed = True
                break
    return current


def core_of_pp_structure(structure: Structure, liberal: Iterable[Element]) -> Structure:
    """The core of the pp-formula ``(structure, liberal)``.

    Computes the core of the augmented structure and strips the
    augmentation relations, so the result is again a structure over the
    original signature whose universe contains all liberal variables
    (liberal variables can never be dropped, because their singleton
    relations pin them in place).
    """
    augmented = augmented_structure(structure, liberal)
    return strip_augmentation(core(augmented))


def are_homomorphically_equivalent(first: Structure, second: Structure) -> bool:
    """True if each structure maps homomorphically into the other."""
    return homomorphic_equivalent(first, second)


def is_isomorphic(first: Structure, second: Structure) -> bool:
    """Exact isomorphism test via injective-homomorphism search.

    Used only on formula-sized structures (cores), where the universes
    are small.
    """
    if first.signature != second.signature:
        return False
    if len(first.universe) != len(second.universe):
        return False
    if any(
        len(first.relation(name)) != len(second.relation(name))
        for name in first.signature.names
    ):
        return False
    # An isomorphism is a bijective homomorphism whose inverse is a
    # homomorphism.  Enumerate homomorphisms and filter.
    from repro.structures.homomorphism import enumerate_homomorphisms

    for hom in enumerate_homomorphisms(first, second):
        image = set(hom.values())
        if len(image) != len(first.universe):
            continue
        inverse = {v: k for k, v in hom.items()}
        from repro.structures.homomorphism import is_homomorphism

        if is_homomorphism(inverse, second, first):
            return True
    return False
