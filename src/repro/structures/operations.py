"""Algebraic operations on relational structures.

The proofs in the paper repeatedly use three constructions:

* the **direct product** ``A x B`` (Example 4.3 and the Vandermonde
  argument rely on ``|phi(A x B)| = |phi(A)| * |phi(B)|`` for
  pp-formulas),
* the **disjoint union** ``A + B`` and the special case ``B + k.I``
  where ``I`` is the one-element idempotent structure (Section 5.2), and
* **powers** ``C^l`` of a structure (the right-hand sides of the linear
  systems range over ``B x C^l`` for ``l = 0, 1, 2, ...``).

All operations produce plain :class:`~repro.structures.structure.Structure`
objects; product elements are tuples of the factor elements and
disjoint-union elements are ``(index, element)`` pairs, so results stay
hashable and printable.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Hashable, Iterable, Sequence

from repro.exceptions import SignatureError, StructureError
from repro.logic.signatures import Signature
from repro.structures.structure import Element, Structure, single_loop_structure


def _common_signature(structures: Sequence[Structure]) -> Signature:
    if not structures:
        raise StructureError("need at least one structure")
    signature = structures[0].signature
    for other in structures[1:]:
        if other.signature != signature:
            raise SignatureError(
                "all structures must share the same signature; "
                f"got {signature!r} and {other.signature!r}"
            )
    return signature


def direct_product(*structures: Structure) -> Structure:
    """The direct (categorical) product of one or more structures.

    The universe is the cartesian product of the universes, and a tuple
    of product elements is in a relation exactly when it is in the
    relation coordinate-wise.  For every pp-formula ``phi``,
    ``|phi(A x B)| = |phi(A)| * |phi(B)|``.
    """
    signature = _common_signature(structures)
    if len(structures) == 1:
        return structures[0]
    universe = [tuple(combo) for combo in iter_product(*(sorted(s.universe, key=repr) for s in structures))]
    relations: dict[str, list[tuple[Element, ...]]] = {}
    for symbol in signature:
        tuples: list[tuple[Element, ...]] = []
        factor_tuples = [sorted(s.relation(symbol.name), key=repr) for s in structures]
        for combo in iter_product(*factor_tuples):
            # combo is one tuple from each factor; zip them position-wise.
            tuples.append(tuple(zip(*combo)))
        relations[symbol.name] = tuples
    return Structure(signature, universe, relations)


def power(structure: Structure, exponent: int) -> Structure:
    """The ``exponent``-th direct power of a structure.

    ``power(C, 0)`` is the one-element structure in which every relation
    contains the all-``()`` tuple -- the neutral element of the product,
    so that ``B x C^0`` is isomorphic to ``B``.
    """
    if exponent < 0:
        raise StructureError("exponent must be non-negative")
    if exponent == 0:
        return single_loop_structure(structure.signature, element=())
    result = structure
    for _ in range(exponent - 1):
        result = direct_product(result, structure)
    return result


def disjoint_union(*structures: Structure) -> Structure:
    """The disjoint union of one or more structures over the same signature.

    Elements of the ``i``-th summand become pairs ``(i, element)``.
    """
    signature = _common_signature(structures)
    universe: list[Element] = []
    relations: dict[str, list[tuple[Element, ...]]] = {s.name: [] for s in signature}
    for index, structure in enumerate(structures):
        universe.extend((index, e) for e in structure.universe)
        for symbol in signature:
            for t in structure.relation(symbol.name):
                relations[symbol.name].append(tuple((index, e) for e in t))
    return Structure(signature, universe, relations)


def add_idempotent_copies(structure: Structure, count: int) -> Structure:
    """The structure ``B + k.I`` from Section 5.2 of the paper.

    ``I`` is the one-element structure in which every relation holds its
    single reflexive tuple; adding ``count`` disjoint copies of it to
    ``structure`` guarantees that every pp-formula has at least one
    answer, while the answer counts become polynomials in ``count``
    whose coefficients reveal the per-component counts (proof of
    Theorem 5.9).
    """
    if count < 0:
        raise StructureError("count must be non-negative")
    if count == 0:
        return structure
    copies = [
        single_loop_structure(structure.signature, element=f"i{k}") for k in range(count)
    ]
    return disjoint_union(structure, *copies)


def idempotent_structure(signature: Signature, element: Hashable = "a") -> Structure:
    """The structure ``I_tau``: one element, every relation reflexive."""
    return single_loop_structure(signature, element=element)


def relabel_to_integers(structure: Structure) -> Structure:
    """Return an isomorphic copy whose universe is ``0 .. n-1``.

    Useful after chains of products and unions, whose element names grow
    into deeply nested tuples.  The relabeling is deterministic (elements
    are sorted by their ``repr``).
    """
    ordered = sorted(structure.universe, key=repr)
    mapping = {element: index for index, element in enumerate(ordered)}
    relations = {
        name: [tuple(mapping[e] for e in t) for t in tuples]
        for name, tuples in structure.relations.items()
    }
    return Structure(structure.signature, range(len(ordered)), relations)


def union_relations(*structures: Structure) -> Structure:
    """The structure on the union of universes with union of relations.

    Unlike :func:`disjoint_union`, shared elements are identified; this
    is the operation used to take the conjunction of two pp-formulas
    viewed as structures over a common set of variables.
    """
    if not structures:
        raise StructureError("need at least one structure")
    signature = structures[0].signature
    for other in structures[1:]:
        signature = signature | other.signature
    universe: set[Element] = set()
    relations: dict[str, set[tuple[Element, ...]]] = {s.name: set() for s in signature}
    for structure in structures:
        universe |= structure.universe
        for name, tuples in structure.relations.items():
            relations[name] |= tuples
    return Structure(signature, universe, relations)


def induced_substructure(structure: Structure, elements: Iterable[Element]) -> Structure:
    """Alias for :meth:`Structure.restrict`, provided for discoverability."""
    return structure.restrict(elements)
