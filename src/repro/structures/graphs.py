"""Gaifman graphs and connectivity of pp-formulas.

To every prenex pp-formula ``(A, S)`` the paper assigns a graph (its
Gaifman graph) whose vertices are ``A ∪ S`` and whose edges connect two
vertices that occur together in some tuple of a relation of ``A``.  The
graph drives two notions used throughout:

* **components** of a pp-formula: the restrictions of the formula to the
  connected components of its graph.  Answer counts multiply over
  components, which the proofs of Section 5.2 exploit.
* **treewidth** of a pp-formula (treewidth of its graph) and of the
  *contract graph*, which together define the tractability frontier.

This module provides the graph constructions; the treewidth algorithms
live in :mod:`repro.algorithms.treewidth`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable

import networkx as nx

from repro.structures.structure import Element, Structure


def gaifman_graph(structure: Structure, extra_vertices: Iterable[Element] = ()) -> nx.Graph:
    """The Gaifman graph of a structure.

    Vertices are the universe elements plus ``extra_vertices`` (used to
    include liberal variables that occur in no atom); two vertices are
    adjacent when they occur together in a tuple of some relation.
    """
    graph = nx.Graph()
    graph.add_nodes_from(structure.universe)
    graph.add_nodes_from(extra_vertices)
    for tuples in structure.relations.values():
        for t in tuples:
            distinct = sorted(set(t), key=repr)
            for left, right in combinations(distinct, 2):
                graph.add_edge(left, right)
    return graph


def connected_components(structure: Structure, extra_vertices: Iterable[Element] = ()) -> list[frozenset[Element]]:
    """Connected components of the Gaifman graph, as vertex sets.

    Components are returned in a deterministic order (sorted by the
    representation of their smallest vertex).
    """
    graph = gaifman_graph(structure, extra_vertices)
    components = [frozenset(c) for c in nx.connected_components(graph)]
    return sorted(components, key=lambda c: min(repr(v) for v in c))


def component_substructures(
    structure: Structure, liberal: Iterable[Element]
) -> list[tuple[Structure, frozenset[Element]]]:
    """Split a pp-formula ``(structure, liberal)`` into its components.

    Returns a list of pairs ``(A_i, S_i)`` where ``A_i`` is the induced
    substructure on the ``i``-th connected component ``C`` of the graph
    and ``S_i = liberal ∩ C``; this is exactly the definition of
    components in Section 2.1 of the paper.  Liberal variables that occur
    in no atom form singleton components with no tuples.
    """
    liberal_set = frozenset(liberal)
    pieces: list[tuple[Structure, frozenset[Element]]] = []
    for component in connected_components(structure, extra_vertices=liberal_set):
        sub = structure.restrict(component & structure.universe)
        pieces.append((sub, liberal_set & component))
    return pieces


def primal_graph_of_atoms(
    atom_scopes: Iterable[tuple[Hashable, ...]], vertices: Iterable[Hashable] = ()
) -> nx.Graph:
    """The primal graph of a collection of atom scopes.

    Each scope (a tuple of variables) becomes a clique.  This is the
    same construction as :func:`gaifman_graph` but starting from scopes
    rather than a structure, which is convenient for query objects.
    """
    graph = nx.Graph()
    graph.add_nodes_from(vertices)
    for scope in atom_scopes:
        distinct = sorted(set(scope), key=repr)
        graph.add_nodes_from(distinct)
        for left, right in combinations(distinct, 2):
            graph.add_edge(left, right)
    return graph


def is_connected_formula(structure: Structure, liberal: Iterable[Element]) -> bool:
    """True if the pp-formula ``(structure, liberal)`` is connected."""
    return len(component_substructures(structure, liberal)) <= 1
