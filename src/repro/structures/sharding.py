"""Partitioning structures into disjoint-universe shards.

Scaling the data side of counting means splitting one large structure
into pieces that can be executed independently (per process, eventually
per machine) and combining the per-shard numbers exactly.  The split
that makes exact combination possible is the *component-aligned*
partition: shard universes are unions of connected components of the
data's Gaifman graph, so no tuple ever crosses a shard boundary and the
shards are fully independent substructures whose universes partition
the original universe.

The combination rules come straight from the paper's structure theory:

* the count of a pp-formula factorizes over the *query's* connected
  components (Section 2.1: answer counts multiply over components);
* a connected query component with liberal variables maps entirely
  inside one data component, hence inside exactly one shard, so its
  per-shard counts **sum** to the whole-structure count;
* a connected pp-*sentence* component holds on the whole structure iff
  it holds on **some** shard (logical OR);
* the inclusion-exclusion terms of an ``ep-plus`` plan are themselves
  pp-counts, so the term sums distribute over shards unchanged.

:func:`combine_shard_counts` packages these rules; the sharded
execution path in :mod:`repro.engine.executor` produces its inputs.

Two placement strategies are provided: ``"hash"`` assigns each data
component to ``crc32(representative) % shard_count`` (stable across
runs and processes, the right default for distributed settings), and
``"balanced"`` greedily packs components onto the lightest shard by
tuple count (better load balance for the multiprocessing pool when
component sizes are skewed).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import StructureError
from repro.structures.structure import Element, Structure

#: The supported shard-placement strategies.
SHARD_STRATEGIES = ("hash", "balanced")


@dataclass(frozen=True)
class ShardedStructure:
    """A structure together with a component-aligned partition of it.

    ``shards`` may contain empty structures (when ``shard_count``
    exceeds the number of data components); the combination rules and
    the executor handle them uniformly.
    """

    structure: Structure
    shards: tuple[Structure, ...]
    strategy: str

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def universe_size(self) -> int:
        return len(self.structure.universe)

    def non_empty_shards(self) -> tuple[Structure, ...]:
        """The shards with a non-empty universe."""
        return tuple(s for s in self.shards if not s.is_empty())

    def precompute_fingerprints(self) -> "ShardedStructure":
        """Compute and cache every fingerprint (whole + per shard).

        Fingerprints key the worker-resident context caches; computing
        them once at registration time (they are cached on the
        structures) means no later ``count_sharded`` call pays the
        content hash on the request path, and the pickled shards
        shipped to workers always carry their fingerprint along.
        Returns ``self`` for chaining.
        """
        self.structure.fingerprint()
        for shard in self.shards:
            shard.fingerprint()
        return self

    def route_delta(
        self, delta: "StructureDelta"
    ) -> tuple["StructureDelta | None", ...]:
        """Split ``delta`` into per-shard sub-deltas by component ownership.

        Each delta tuple lands on the shard owning its elements: deletes
        go to the shard holding the tuple, inserts to the unique shard
        owning the mentioned existing elements (brand-new elements adopt
        that shard; tuples over *only* new elements are placed by the
        same stable hash :func:`shard_structure` uses).  Returns one
        sub-delta per shard, ``None`` for shards the delta does not
        touch -- which is what lets every untouched shard keep its
        structure, fingerprint, and resident contexts byte-for-byte.

        Raises :class:`~repro.exceptions.DeltaRoutingError` when an
        inserted tuple spans two shards: that is a data-component merge,
        the partition is no longer component-aligned, and the caller
        must re-shard the post-delta structure instead.
        """
        from repro.exceptions import DeltaRoutingError
        from repro.structures.delta import StructureDelta

        placement: dict[Element, int] = {}
        for index, shard in enumerate(self.shards):
            for element in shard.universe:
                placement[element] = index

        inserts: list[dict[str, list[tuple]]] = [{} for _ in self.shards]
        deletes: list[dict[str, list[tuple]]] = [{} for _ in self.shards]
        touched = [False] * len(self.shards)
        for name in sorted(delta.deletes):
            for t in sorted(delta.deletes[name], key=repr):
                owner = placement.get(t[0])
                if owner is None:
                    # Absent tuple; let Structure.apply_delta report it.
                    owner = 0
                deletes[owner].setdefault(name, []).append(t)
                touched[owner] = True
        for name in sorted(delta.inserts):
            for t in sorted(delta.inserts[name], key=repr):
                owners = {placement[e] for e in t if e in placement}
                if len(owners) > 1:
                    raise DeltaRoutingError(
                        f"inserted tuple {t!r} of relation {name!r} connects "
                        f"elements owned by shards {sorted(owners)}; the "
                        "component-aligned partition must be recomputed"
                    )
                if owners:
                    owner = owners.pop()
                else:
                    owner = _stable_hash(frozenset(t)) % len(self.shards)
                for element in t:
                    placement.setdefault(element, owner)
                inserts[owner].setdefault(name, []).append(t)
                touched[owner] = True
        return tuple(
            StructureDelta(inserts[s], deletes[s]) if touched[s] else None
            for s in range(len(self.shards))
        )

    def apply_delta(self, delta: "StructureDelta") -> "ShardedStructure":
        """A new sharded structure with ``delta`` applied through the plan.

        The whole structure and exactly the shards owning delta tuples
        advance to new (chained-fingerprint) versions; untouched shards
        are reused as-is.  Raises
        :class:`~repro.exceptions.DeltaRoutingError` on a component
        merge, in which case the caller should fall back to
        :func:`shard_structure` on the post-delta structure.
        """
        routed = self.route_delta(delta)
        new_structure = self.structure.apply_delta(delta)
        new_shards = tuple(
            shard if sub is None else shard.apply_delta(sub)
            for shard, sub in zip(self.shards, routed)
        )
        return ShardedStructure(new_structure, new_shards, self.strategy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ",".join(str(len(s)) for s in self.shards)
        return f"ShardedStructure({self.structure!r} -> [{sizes}])"


def data_components(structure: Structure) -> list[frozenset[Element]]:
    """Connected components of the data's Gaifman graph, as element sets.

    Isolated universe elements form singleton components.  Computed with
    a union-find pass over the tuples (structures playing the data role
    can be large; building a NetworkX graph with a clique per tuple is
    needlessly heavy there).
    """
    parent: dict[Element, Element] = {e: e for e in structure.universe}

    def find(e: Element) -> Element:
        root = e
        while parent[root] != root:
            root = parent[root]
        while parent[e] != root:
            parent[e], e = root, parent[e]
        return root

    def union(a: Element, b: Element) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for tuples in structure.relations.values():
        for t in tuples:
            first = t[0]
            for other in t[1:]:
                union(first, other)
    groups: dict[Element, set[Element]] = {}
    for element in structure.universe:
        groups.setdefault(find(element), set()).add(element)
    return sorted(
        (frozenset(g) for g in groups.values()),
        key=lambda c: min(repr(e) for e in c),
    )


def _stable_hash(component: frozenset[Element]) -> int:
    """A process- and run-stable hash of a component (via its smallest
    representative's repr; ``hash(str)`` is randomized per process)."""
    representative = min(component, key=repr)
    return zlib.crc32(repr(representative).encode("utf-8"))


def shard_structure(
    structure: Structure, shard_count: int, strategy: str = "hash"
) -> ShardedStructure:
    """Partition ``structure`` into ``shard_count`` disjoint-universe shards.

    Every shard is an induced substructure over a union of data
    components, so shard universes partition the original universe and
    every tuple lands in exactly one shard.  ``shard_count = 1`` returns
    the structure itself as the single shard.
    """
    if shard_count < 1:
        raise StructureError("shard_count must be at least 1")
    if strategy not in SHARD_STRATEGIES:
        raise StructureError(
            f"unknown shard strategy {strategy!r}; choose one of {SHARD_STRATEGIES}"
        )
    if shard_count == 1:
        return ShardedStructure(structure, (structure,), strategy)

    components = data_components(structure)
    placement: dict[Element, int] = {}
    if strategy == "hash":
        for component in components:
            shard = _stable_hash(component) % shard_count
            for element in component:
                placement[element] = shard
    else:  # balanced: heaviest components first onto the lightest shard
        weights = [0] * shard_count
        sized = sorted(
            components, key=lambda c: (-len(c), min(repr(e) for e in c))
        )
        for component in sized:
            shard = min(range(shard_count), key=lambda s: (weights[s], s))
            weights[shard] += len(component)
            for element in component:
                placement[element] = shard

    universes: list[set[Element]] = [set() for _ in range(shard_count)]
    for element, shard in placement.items():
        universes[shard].add(element)
    relations: list[dict[str, list[tuple[Element, ...]]]] = [
        {} for _ in range(shard_count)
    ]
    for name, tuples in structure.relations.items():
        for t in tuples:
            shard = placement[t[0]]
            relations[shard].setdefault(name, []).append(t)
    shards = tuple(
        Structure(structure.signature, universes[s], relations[s])
        for s in range(shard_count)
    )
    return ShardedStructure(structure, shards, strategy)


def combine_shard_counts(
    liberal_rows: Sequence[Sequence[int]],
    sentence_rows: Sequence[Sequence[bool]] = (),
) -> int:
    """Combine per-shard results into the whole-structure count.

    ``liberal_rows[c][s]`` is the count of the ``c``-th liberal query
    component on shard ``s``; ``sentence_rows[c][s]`` says whether the
    ``c``-th pp-sentence component maps into shard ``s``.  The result is
    ``0`` if some sentence component holds on no shard, and otherwise
    the product over liberal components of the sum over shards --
    exactly the factorization described in the module docstring.
    """
    for row in sentence_rows:
        if not any(row):
            return 0
    total = 1
    for row in liberal_rows:
        total *= sum(row)
    return total
