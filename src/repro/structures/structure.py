"""Finite relational structures.

A *structure* ``B`` over a signature ``tau`` consists of a finite
universe ``B`` and, for each relation symbol ``R`` in ``tau``, a relation
``R^B`` which is a set of tuples over the universe.  Structures are the
"databases" of the paper: a query is evaluated on a structure, and the
library counts the satisfying assignments.

The :class:`Structure` class is immutable once built; use
:class:`StructureBuilder` (or :meth:`Structure.from_relations`) to build
structures incrementally.  Immutability lets structures be hashed,
cached and shared safely by the counting algorithms.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.exceptions import SignatureError, StructureError
from repro.logic.signatures import RelationSymbol, Signature

Element = Hashable
Tuple_ = tuple


class Structure:
    """An immutable finite relational structure.

    Parameters
    ----------
    signature:
        The vocabulary of the structure.
    universe:
        The (finite) universe; any iterable of hashable elements.
    relations:
        A mapping from relation names to iterables of tuples.  Every
        relation name must belong to the signature, every tuple must
        have the right arity, and every element of every tuple must be
        in the universe.  Relations absent from the mapping are empty.
    """

    __slots__ = ("_signature", "_universe", "_relations", "_hash", "_fingerprint")

    def __init__(
        self,
        signature: Signature,
        universe: Iterable[Element],
        relations: Mapping[str, Iterable[tuple[Element, ...]]] | None = None,
    ):
        self._signature = signature
        self._universe: frozenset[Element] = frozenset(universe)
        rels: dict[str, frozenset[tuple[Element, ...]]] = {}
        provided = relations or {}
        for name in provided:
            if name not in signature:
                raise SignatureError(
                    f"relation {name!r} is not in the signature {signature!r}"
                )
        for symbol in signature:
            tuples = frozenset(tuple(t) for t in provided.get(symbol.name, ()))
            for t in tuples:
                if len(t) != symbol.arity:
                    raise StructureError(
                        f"tuple {t!r} has arity {len(t)}, but relation "
                        f"{symbol.name!r} has arity {symbol.arity}"
                    )
                for element in t:
                    if element not in self._universe:
                        raise StructureError(
                            f"tuple {t!r} of relation {symbol.name!r} mentions "
                            f"{element!r}, which is not in the universe"
                        )
            rels[symbol.name] = tuples
        self._relations = rels
        self._hash: int | None = None
        self._fingerprint: tuple | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_relations(
        cls,
        relations: Mapping[str, Iterable[tuple[Element, ...]]],
        universe: Iterable[Element] | None = None,
    ) -> "Structure":
        """Build a structure, inferring the signature from the relations.

        The universe defaults to the set of elements mentioned in any
        tuple; pass ``universe`` explicitly to add isolated elements.
        """
        materialized = {name: [tuple(t) for t in tuples] for name, tuples in relations.items()}
        symbols = []
        elements: set[Element] = set(universe or ())
        for name, tuples in materialized.items():
            arities = {len(t) for t in tuples}
            if len(arities) > 1:
                raise StructureError(
                    f"relation {name!r} contains tuples of different arities: {sorted(arities)}"
                )
            if not tuples:
                raise StructureError(
                    f"cannot infer the arity of empty relation {name!r}; "
                    "construct the Structure with an explicit Signature instead"
                )
            symbols.append(RelationSymbol(name, arities.pop()))
            for t in tuples:
                elements.update(t)
        return cls(Signature(symbols), elements, materialized)

    @classmethod
    def empty(cls, signature: Signature) -> "Structure":
        """The structure with an empty universe over ``signature``."""
        return cls(signature, (), {})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def signature(self) -> Signature:
        """The signature (vocabulary) of the structure."""
        return self._signature

    @property
    def universe(self) -> frozenset[Element]:
        """The universe of the structure."""
        return self._universe

    def relation(self, name: str) -> frozenset[tuple[Element, ...]]:
        """The interpretation of the relation named ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SignatureError(f"unknown relation {name!r}") from None

    @property
    def relations(self) -> dict[str, frozenset[tuple[Element, ...]]]:
        """A copy of the relation-name to tuple-set mapping."""
        return dict(self._relations)

    def __contains__(self, element: object) -> bool:
        return element in self._universe

    def __len__(self) -> int:
        return len(self._universe)

    @property
    def size(self) -> int:
        """The number of elements in the universe."""
        return len(self._universe)

    @property
    def total_tuples(self) -> int:
        """The total number of tuples over all relations."""
        return sum(len(tuples) for tuples in self._relations.values())

    def tuples(self) -> Iterator[tuple[str, tuple[Element, ...]]]:
        """Iterate over ``(relation_name, tuple)`` pairs."""
        for name in sorted(self._relations):
            for t in sorted(self._relations[name], key=repr):
                yield name, t

    def has_tuple(self, name: str, t: tuple[Element, ...]) -> bool:
        """True if ``t`` belongs to the relation named ``name``."""
        return tuple(t) in self.relation(name)

    def is_empty(self) -> bool:
        """True if the universe is empty."""
        return not self._universe

    def elements_in_tuples(self) -> frozenset[Element]:
        """The set of universe elements that occur in at least one tuple."""
        used: set[Element] = set()
        for tuples in self._relations.values():
            for t in tuples:
                used.update(t)
        return frozenset(used)

    def isolated_elements(self) -> frozenset[Element]:
        """Universe elements that occur in no tuple of any relation."""
        return self._universe - self.elements_in_tuples()

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def restrict(self, elements: Iterable[Element]) -> "Structure":
        """The induced substructure on ``elements``.

        Keeps exactly the tuples all of whose entries lie in ``elements``.
        """
        kept = frozenset(elements)
        unknown = kept - self._universe
        if unknown:
            raise StructureError(
                f"cannot restrict to elements not in the universe: {sorted(map(repr, unknown))}"
            )
        relations = {
            name: [t for t in tuples if all(e in kept for e in t)]
            for name, tuples in self._relations.items()
        }
        return Structure(self._signature, kept, relations)

    def rename(self, mapping: Mapping[Element, Element]) -> "Structure":
        """Apply an injective renaming to the universe.

        Elements absent from ``mapping`` keep their identity.  The
        renaming must not merge distinct elements.
        """
        def image(e: Element) -> Element:
            return mapping.get(e, e)

        new_universe = [image(e) for e in self._universe]
        if len(set(new_universe)) != len(self._universe):
            raise StructureError("rename mapping must be injective on the universe")
        relations = {
            name: [tuple(image(e) for e in t) for t in tuples]
            for name, tuples in self._relations.items()
        }
        return Structure(self._signature, new_universe, relations)

    def with_signature(self, signature: Signature) -> "Structure":
        """Reinterpret this structure over a larger signature.

        New relation symbols are interpreted as empty relations.  The
        given signature must extend the current one.
        """
        if not self._signature.is_subsignature_of(signature):
            raise SignatureError(
                "target signature must extend the structure's signature"
            )
        return Structure(signature, self._universe, self._relations)

    def add_relation(
        self, symbol: RelationSymbol, tuples: Iterable[tuple[Element, ...]]
    ) -> "Structure":
        """Return a copy with an additional relation.

        The new relation symbol must not clash with an existing one of a
        different arity; if the symbol already exists, the tuples are
        unioned into it.
        """
        signature = self._signature | Signature([symbol])
        relations: dict[str, list[tuple[Element, ...]]] = {
            name: list(ts) for name, ts in self._relations.items()
        }
        relations.setdefault(symbol.name, []).extend(tuple(t) for t in tuples)
        return Structure(signature, self._universe, relations)

    def reduct(self, signature: Signature) -> "Structure":
        """The reduct of this structure to a subsignature."""
        for symbol in signature:
            if self._signature.get(symbol.name) != symbol:
                raise SignatureError(
                    f"cannot take reduct: {symbol} is not in the structure's signature"
                )
        relations = {s.name: self._relations[s.name] for s in signature}
        return Structure(signature, self._universe, relations)

    # ------------------------------------------------------------------
    # Versioning: delta application
    # ------------------------------------------------------------------
    def apply_delta(self, delta: "StructureDelta") -> "Structure":
        """A new structure version with ``delta``'s tuple batches applied.

        Inserted tuples may mention new elements, which extend the
        universe; deletions never shrink it (elements stay resident once
        seen).  The delta is strict: inserting a tuple that is already
        present, or deleting one that is absent, raises
        :class:`~repro.exceptions.DeltaError` -- so a delta always
        describes the exact difference between the two versions.

        The returned structure's fingerprint is **chained**, not
        recomputed: its digest hashes the parent fingerprint's digest
        plus the delta's canonical encoding, costing ``O(|delta|)``
        instead of ``O(|structure|)``.  Two structures with equal
        content but different delta histories therefore carry different
        fingerprints -- under versioning, identity is (content lineage),
        not content alone, which is exactly what lets caches keyed by
        fingerprint migrate entries per delta instead of rebuilding.
        """
        from repro.exceptions import DeltaError

        if delta.is_empty:
            return self
        relations = dict(self._relations)
        for name in sorted(delta.relations):
            symbol = self._signature.get(name)
            if symbol is None:
                raise SignatureError(
                    f"delta touches relation {name!r}, which is not in the "
                    f"signature {self._signature!r}"
                )
            current = relations[name]
            removed = delta.deletes.get(name, frozenset())
            added = delta.inserts.get(name, frozenset())
            for t in added | removed:
                if len(t) != symbol.arity:
                    raise DeltaError(
                        f"delta tuple {t!r} has arity {len(t)}, but relation "
                        f"{name!r} has arity {symbol.arity}"
                    )
            missing = removed - current
            if missing:
                raise DeltaError(
                    f"delta deletes tuples absent from relation {name!r}: "
                    f"{sorted(map(repr, missing))}"
                )
            present = added & current
            if present:
                raise DeltaError(
                    f"delta inserts tuples already present in relation "
                    f"{name!r}: {sorted(map(repr, present))}"
                )
            relations[name] = (current - removed) | added
        universe = self._universe | delta.inserted_elements()

        # Invariants were checked above, so bypass __init__'s full
        # O(|structure|) revalidation and seed the chained fingerprint.
        import hashlib

        parent = self.fingerprint()
        digest = hashlib.blake2b(digest_size=16)
        digest.update(parent[2].encode("ascii"))
        digest.update(delta.canonical_bytes())
        counts = tuple(
            (symbol.name, symbol.arity, len(relations[symbol.name]))
            for symbol in sorted(self._signature, key=lambda s: s.name)
        )
        new = object.__new__(Structure)
        new._signature = self._signature
        new._universe = universe
        new._relations = relations
        new._hash = None
        new._fingerprint = (len(universe), counts, digest.hexdigest())
        return new

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def fingerprint(self) -> tuple[int, tuple, str]:
        """A cheap, process-stable fingerprint of the structure.

        ``(universe size, per-relation (name, arity, tuple count)s,
        content digest)``, where the digest is a BLAKE2 hash over the
        ``repr``-sorted universe and relation tuples.  Unlike ``hash()``
        (salted per process for strings), the fingerprint is identical
        across processes and runs, so it can key caches that outlive a
        single process -- in particular the worker-resident execution
        context caches of :mod:`repro.engine.pool`, which reuse a
        structure's positional index and boundary memos across pool jobs
        by shipping fingerprints instead of rebuilding.

        Equal structures always share a fingerprint; distinct structures
        collide only if BLAKE2 collides (or two universe elements share
        a ``repr``), which consumers treat as negligible.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.blake2b(digest_size=16)
            for element in sorted(map(repr, self._universe)):
                digest.update(element.encode("utf-8", "backslashreplace"))
                digest.update(b"\x00")
            counts = []
            for symbol in sorted(self._signature, key=lambda s: s.name):
                tuples = self._relations[symbol.name]
                counts.append((symbol.name, symbol.arity, len(tuples)))
                digest.update(f"\x01{symbol.name}/{symbol.arity}".encode("utf-8"))
                for t in sorted(map(repr, tuples)):
                    digest.update(t.encode("utf-8", "backslashreplace"))
                    digest.update(b"\x00")
            self._fingerprint = (
                len(self._universe),
                tuple(counts),
                digest.hexdigest(),
            )
        return self._fingerprint

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._signature == other._signature
            and self._universe == other._universe
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._signature,
                    self._universe,
                    tuple(sorted((k, v) for k, v in self._relations.items())),
                )
            )
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = ", ".join(f"{name}:{len(ts)}" for name, ts in sorted(self._relations.items()))
        return f"Structure(|U|={len(self._universe)}, {rels})"

    def describe(self) -> str:
        """A human-readable multi-line description of the structure."""
        lines = [f"universe ({len(self._universe)}): {sorted(map(repr, self._universe))}"]
        for name in sorted(self._relations):
            tuples = sorted(self._relations[name], key=repr)
            lines.append(f"{name} ({len(tuples)}): {tuples}")
        return "\n".join(lines)


class StructureBuilder:
    """A mutable builder for :class:`Structure`.

    Example
    -------
    >>> builder = StructureBuilder()
    >>> builder.add_edge("E", 1, 2).add_edge("E", 2, 3)  # doctest: +ELLIPSIS
    <repro.structures.structure.StructureBuilder object at ...>
    >>> structure = builder.build()
    >>> structure.size
    3
    """

    def __init__(self, signature: Signature | None = None):
        self._signature = signature
        self._universe: set[Element] = set()
        self._relations: dict[str, set[tuple[Element, ...]]] = {}
        self._arities: dict[str, int] = {}
        if signature is not None:
            for symbol in signature:
                self._arities[symbol.name] = symbol.arity
                self._relations[symbol.name] = set()

    def add_element(self, *elements: Element) -> "StructureBuilder":
        """Add one or more isolated elements to the universe."""
        self._universe.update(elements)
        return self

    def add_tuple(self, relation: str, values: Iterable[Element]) -> "StructureBuilder":
        """Add a tuple to a relation, creating the relation if needed."""
        t = tuple(values)
        if not t:
            raise StructureError("cannot add an empty tuple")
        known_arity = self._arities.get(relation)
        if known_arity is None:
            if self._signature is not None:
                raise SignatureError(
                    f"relation {relation!r} is not in the builder's signature"
                )
            self._arities[relation] = len(t)
            self._relations[relation] = set()
        elif known_arity != len(t):
            raise StructureError(
                f"tuple {t!r} has arity {len(t)}, but relation {relation!r} "
                f"has arity {known_arity}"
            )
        self._relations[relation].add(t)
        self._universe.update(t)
        return self

    def add_edge(self, relation: str, source: Element, target: Element) -> "StructureBuilder":
        """Convenience wrapper for adding a binary tuple."""
        return self.add_tuple(relation, (source, target))

    def add_fact(self, relation: str, *values: Element) -> "StructureBuilder":
        """Convenience wrapper: ``add_fact("R", a, b, c)``."""
        return self.add_tuple(relation, values)

    def build(self) -> Structure:
        """Construct the immutable :class:`Structure`."""
        signature = self._signature or Signature(
            RelationSymbol(name, arity) for name, arity in self._arities.items()
        )
        return Structure(signature, self._universe, self._relations)


def complete_structure(signature: Signature, domain: Iterable[Element]) -> Structure:
    """The structure interpreting every relation as all tuples over ``domain``.

    This is the structure used in Observation 5.5 of the paper: on it, a
    pp-formula with liberal variables ``V`` has exactly ``|domain|**|V|``
    answers, which pins down the number of liberal variables.
    """
    from itertools import product as iter_product

    elements = list(domain)
    relations = {
        symbol.name: [tuple(t) for t in iter_product(elements, repeat=symbol.arity)]
        for symbol in signature
    }
    return Structure(signature, elements, relations)


def single_loop_structure(signature: Signature, element: Any = "a") -> Structure:
    """The idempotent structure ``I_tau`` from the paper.

    Its universe is a single element and every relation holds the
    all-``element`` tuple.  Every pp-formula has at least one answer on
    it, which makes it the basic building block for the ``B + k.I``
    construction used in Section 5.2.
    """
    relations = {
        symbol.name: [tuple(element for _ in range(symbol.arity))] for symbol in signature
    }
    return Structure(signature, [element], relations)
