"""Dense-integer encoding of structures: columnar relations, backends.

The object-path evaluators (:mod:`repro.engine.context`,
:mod:`repro.algorithms.fpt_counting`) operate on Python object tuples
inside ``dict``-of-``frozenset`` relations.  That is flexible but pays
object hashing and pointer chasing on every join probe.  This module
interns a structure's universe to the dense integers ``0..n-1`` and
re-stores every relation column-major as sorted ``array('q')`` columns,
so the hot evaluators can run over machine integers and -- when numpy
is importable -- over vectorized ``int64`` arrays.

Exactness is by construction: the decode table is the universe sorted
by ``repr``, which is *identical* to the order
:attr:`repro.engine.context.ExecutionContext.domain` uses, so encoding
is a bijection between the object domain and ``range(n)`` and every
count computed over encoded values equals the object-path count.
Decoding happens only at result boundaries (decoded boundary
relations); counts never need decoding at all.

Backend selection
-----------------
``resolve_backend`` maps a requested backend name (or the
``REPRO_ENCODING`` environment variable when ``None`` is passed) to one
of the canonical backends:

``"object"``
    The pre-existing object-tuple path; encoding is off.
``"array"``
    Pure-python execution over the integer encoding (``array('q')``
    columns, int-tuple hash joins).  No third-party dependencies.
``"numpy"``
    Vectorized joins/semijoins over zero-copy ``int64`` views of the
    columns.  Requesting it explicitly without numpy installed raises
    :class:`~repro.exceptions.ReproError`.
``"auto"``
    ``"numpy"`` when numpy imports, ``"array"`` otherwise.

The numpy probe goes through :func:`_import_numpy` so tests can
monkeypatch the import to simulate a numpy-less interpreter.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Iterator, Sequence

from repro.budget import current_budget
from repro.exceptions import ReproError, SignatureError
from repro.structures.structure import Element, Structure

#: Environment variable consulted when no backend is requested explicitly.
ENCODING_ENV_VAR = "REPRO_ENCODING"

#: The canonical backend names ``resolve_backend`` can return.
BACKENDS = ("object", "array", "numpy")

#: Sentinel meaning "the numpy probe has not run yet".
_UNPROBED = object()

#: Cached numpy module (or ``None`` when the probe failed).  Tests reset
#: this to ``_UNPROBED`` together with monkeypatching ``_import_numpy``.
_numpy_module: object = _UNPROBED


def _import_numpy():
    """Import and return numpy.  Monkeypatched by tests to simulate
    an interpreter without numpy; keep this a separate function."""
    import numpy

    return numpy


def get_numpy():
    """The numpy module, or ``None`` when it is not importable."""
    global _numpy_module
    if _numpy_module is _UNPROBED:
        try:
            _numpy_module = _import_numpy()
        except Exception:
            _numpy_module = None
    return _numpy_module


def numpy_available() -> bool:
    """Does the vectorized backend have its dependency?"""
    return get_numpy() is not None


def resolve_backend(requested: str | None = None) -> str:
    """Resolve a requested backend name to a canonical backend.

    ``None`` falls back to the ``REPRO_ENCODING`` environment variable
    and then to ``"object"``.  ``"off"``/``"none"``/empty are aliases
    for ``"object"``; ``"auto"`` picks ``"numpy"`` when available and
    ``"array"`` otherwise; an explicit ``"numpy"`` without numpy raises.
    """
    if requested is None:
        requested = os.environ.get(ENCODING_ENV_VAR) or "object"
    name = str(requested).strip().lower()
    if name in ("", "off", "none", "object"):
        return "object"
    if name == "auto":
        return "numpy" if numpy_available() else "array"
    if name == "array":
        return "array"
    if name == "numpy":
        if not numpy_available():
            raise ReproError(
                "encoding backend 'numpy' was requested but numpy is not "
                "importable; use 'array' (pure python) or 'auto'"
            )
        return "numpy"
    raise ReproError(
        f"unknown encoding backend {requested!r}; expected one of "
        "'object', 'array', 'numpy', 'auto' or 'off'"
    )


class TableOverflow(Exception):
    """Internal: an intermediate encoded join table exceeded the row cap."""


# ----------------------------------------------------------------------
# Columnar storage
# ----------------------------------------------------------------------
class EncodedRelation:
    """One relation stored column-major as sorted ``array('q')`` columns.

    Rows are sorted lexicographically before the columns are split, so
    ``columns[0]`` is non-decreasing and equal-prefix runs are
    contiguous -- the layout the vectorized backend's sorted-array
    probes rely on.
    """

    __slots__ = ("name", "arity", "columns", "row_count")

    def __init__(
        self,
        name: str,
        arity: int,
        columns: tuple[array, ...],
        row_count: int,
    ):
        self.name = name
        self.arity = arity
        self.columns = columns
        self.row_count = row_count

    @classmethod
    def from_rows(
        cls, name: str, arity: int, rows: Iterable[tuple[int, ...]]
    ) -> "EncodedRelation":
        ordered = sorted(rows)
        columns = tuple(
            array("q", (row[i] for row in ordered)) for i in range(arity)
        )
        return cls(name, arity, columns, len(ordered))

    def iter_rows(self) -> Iterator[tuple[int, ...]]:
        if self.arity == 0:  # pragma: no cover - arity-0 symbols unused
            return iter(() for _ in range(self.row_count))
        return zip(*self.columns)

    @property
    def nbytes(self) -> int:
        return sum(col.itemsize * len(col) for col in self.columns)


class EncodedStructure:
    """A structure interned to the dense integer universe ``0..n-1``.

    ``decode`` is the universe sorted by ``repr`` -- the same order the
    execution context's ``domain`` uses -- so ``decode[i]`` inverts the
    encoding and counting over ``range(n)`` is exact by bijection.
    Relations are stored as :class:`EncodedRelation` columns; derived
    views (int-tuple frozensets, an all-integer :class:`Structure`,
    numpy column views) are built lazily and excluded from pickling, so
    a pinned encoded context ships to workers as compact machine arrays
    rather than object-tuple frozensets.
    """

    __slots__ = (
        "signature",
        "decode",
        "size",
        "relations",
        "_encode",
        "_tuple_sets",
        "_int_structure",
        "_np_columns",
    )

    def __init__(self, structure: Structure):
        decode = tuple(sorted(structure.universe, key=repr))
        arities = {symbol.name: symbol.arity for symbol in structure.signature}
        encode = {element: i for i, element in enumerate(decode)}
        relations = {
            name: EncodedRelation.from_rows(
                name,
                arities[name],
                (tuple(encode[v] for v in t) for t in tuples),
            )
            for name, tuples in structure.relations.items()
        }
        self._init_from_parts(structure.signature, decode, relations)

    def _init_from_parts(self, signature, decode, relations) -> None:
        self.signature = signature
        self.decode = decode
        self.size = len(decode)
        self.relations = relations
        self._encode: dict[Element, int] | None = None
        self._tuple_sets: dict[str, frozenset[tuple[int, ...]]] = {}
        self._int_structure: Structure | None = None
        self._np_columns: dict[str, tuple] = {}

    # -- encoding / decoding -------------------------------------------
    @property
    def encode(self) -> dict[Element, int]:
        if self._encode is None:
            self._encode = {element: i for i, element in enumerate(self.decode)}
        return self._encode

    def decode_rows(
        self, rows: Iterable[tuple[int, ...]]
    ) -> frozenset[tuple[Element, ...]]:
        """Map int-tuple rows back to object-tuple rows."""
        decode = self.decode
        return frozenset(tuple(decode[v] for v in row) for row in rows)

    # -- delta application ----------------------------------------------
    def apply_delta(self, delta: "StructureDelta") -> "EncodedStructure":
        """A new encoded structure with ``delta`` applied incrementally.

        Instead of re-encoding the whole post-delta structure, this

        * **extends the decode table**: new universe elements are
          appended (in ``repr`` order among themselves), so every
          existing code -- and with it every untouched column, memoized
          base table, and boundary relation expressed in codes -- stays
          valid;
        * **merges into the sorted columns**: each touched relation's
          columns are rebuilt by a single merge pass over its sorted
          rows (deletes tombstoned out, sorted encoded inserts merged
          in), costing ``O(|relation| + |delta|)``;
        * **reuses untouched relations' columns** by reference.

        Note the decode table of a delta-applied encoding is no longer
        globally ``repr``-sorted (appended elements sort after the base
        block).  That is safe because the execution context's ``domain``
        *is* ``decode`` whenever an encoding is active, so the
        encode/decode bijection and the count semantics are unchanged.
        """
        from repro.exceptions import DeltaError

        if delta.is_empty:
            return self
        encode = dict(self.encode)
        decode = list(self.decode)
        for element in sorted(
            (e for e in delta.inserted_elements() if e not in encode), key=repr
        ):
            encode[element] = len(decode)
            decode.append(element)
        relations = dict(self.relations)
        for name in delta.relations:
            if name not in relations:
                raise SignatureError(f"unknown relation {name!r}")
            rel = relations[name]
            try:
                removed = {
                    tuple(encode[v] for v in t)
                    for t in delta.deletes.get(name, ())
                }
                added = sorted(
                    tuple(encode[v] for v in t)
                    for t in delta.inserts.get(name, ())
                )
            except KeyError as error:
                raise DeltaError(
                    f"delta deletes a tuple of relation {name!r} mentioning "
                    f"unknown element {error.args[0]!r}"
                ) from None
            survivors: Iterable[tuple[int, ...]] = rel.iter_rows()
            if removed:
                survivors = (row for row in survivors if row not in removed)
            if added:
                import heapq

                merged = heapq.merge(survivors, added)
            else:
                merged = survivors
            columns = tuple(array("q") for _ in range(rel.arity))
            row_count = 0
            previous: tuple[int, ...] | None = None
            for row in merged:
                if row == previous:
                    raise DeltaError(
                        f"delta inserts a tuple already present in relation "
                        f"{name!r}"
                    )
                previous = row
                for i, value in enumerate(row):
                    columns[i].append(value)
                row_count += 1
            if row_count != rel.row_count - len(removed) + len(added):
                raise DeltaError(
                    f"delta does not apply to relation {name!r}: deletes "
                    "must name present rows and inserts absent ones"
                )
            relations[name] = EncodedRelation(name, rel.arity, columns, row_count)
        new = object.__new__(EncodedStructure)
        new._init_from_parts(self.signature, tuple(decode), relations)
        new._encode = encode
        return new

    # -- derived views --------------------------------------------------
    def relation_rows(self, name: str) -> frozenset[tuple[int, ...]]:
        """The relation as a frozenset of int tuples (lazily built).

        Raises :class:`SignatureError` for unknown names, mirroring
        :meth:`Structure.relation`.
        """
        if name not in self.relations:
            raise SignatureError(f"unknown relation {name!r}")
        if name not in self._tuple_sets:
            self._tuple_sets[name] = frozenset(self.relations[name].iter_rows())
        return self._tuple_sets[name]

    def int_structure(self) -> Structure:
        """The isomorphic all-integer structure (for backtracking and
        sentence satisfiability, which are element-agnostic)."""
        if self._int_structure is None:
            self._int_structure = Structure(
                self.signature,
                range(self.size),
                {name: self.relation_rows(name) for name in self.relations},
            )
        return self._int_structure

    def np_columns(self, name: str) -> tuple:
        """Zero-copy ``int64`` numpy views of a relation's columns."""
        if name not in self._np_columns:
            np = get_numpy()
            rel = self.relations[name]
            self._np_columns[name] = tuple(
                np.frombuffer(col, dtype=np.int64) for col in rel.columns
            )
        return self._np_columns[name]

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the columnar storage (decode
        table counted as one pointer per element)."""
        return 8 * self.size + sum(
            rel.nbytes for rel in self.relations.values()
        )

    # -- pickling: ship only the compact columnar state -----------------
    def __getstate__(self):
        return (
            self.signature,
            self.decode,
            {
                name: (rel.name, rel.arity, rel.columns, rel.row_count)
                for name, rel in self.relations.items()
            },
        )

    def __setstate__(self, state) -> None:
        signature, decode, relations = state
        self._init_from_parts(
            signature,
            decode,
            {
                name: EncodedRelation(*parts)
                for name, parts in relations.items()
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodedStructure(|U|={self.size}, "
            f"{len(self.relations)} relations, {self.nbytes} bytes)"
        )


# ----------------------------------------------------------------------
# Vectorized table operations (numpy backend)
# ----------------------------------------------------------------------
class NumpyTableOps:
    """Vectorized ``(columns, int64 row matrix)`` tables for the
    semijoin sweep.

    Joins pack the shared-column values of each side into a single
    mixed-radix ``int64`` key (radix ``n``; falls back to python tuple
    keys when ``n**k`` would overflow 63 bits), sort one side, and
    expand matches with ``searchsorted`` + ``repeat`` -- no python-level
    loop over rows.  Tables keep rows unique (base tables deduplicate,
    joins of unique inputs on shared columns are unique, projections
    run through ``unique``), so row counts equal set cardinalities and
    the row cap has the same meaning as on the object path.
    """

    __slots__ = ("encoded", "np", "row_cap", "memo")

    def __init__(
        self,
        encoded: EncodedStructure,
        row_cap: int,
        memo: dict | None = None,
    ):
        self.encoded = encoded
        self.np = get_numpy()
        self.row_cap = row_cap
        self.memo = memo

    # -- table constructors ---------------------------------------------
    def base_table(self, name: str, scope: tuple) -> tuple[tuple, object]:
        """One atom as a (columns, rows) table; repeated scope variables
        become equality filters, memoized per ``(name, scope)``."""
        key = (name, scope)
        if self.memo is not None and key in self.memo:
            return self.memo[key]
        np = self.np
        raw = self.encoded.np_columns(name)
        columns: list = []
        first_pos: list[int] = []
        for pos, variable in enumerate(scope):
            if variable not in columns:
                columns.append(variable)
                first_pos.append(pos)
        mask = None
        for pos, variable in enumerate(scope):
            anchor = first_pos[columns.index(variable)]
            if anchor != pos:
                equal = raw[anchor] == raw[pos]
                mask = equal if mask is None else (mask & equal)
        picked = [raw[p] if mask is None else raw[p][mask] for p in first_pos]
        if picked:
            rows = np.stack(picked, axis=1)
        else:  # pragma: no cover - arity-0 symbols unused
            rows = np.empty((0, 0), dtype=np.int64)
        if len(set(scope)) != len(scope):
            # Equality filtering can leave duplicate projected rows.
            rows = self._dedup(rows)
        table = (tuple(columns), rows)
        if self.memo is not None:
            self.memo[key] = table
        return table

    def is_empty(self, table: tuple[tuple, object]) -> bool:
        return table[1].shape[0] == 0

    # -- core operations -------------------------------------------------
    def join(
        self, left: tuple[tuple, object], right: tuple[tuple, object]
    ) -> tuple[tuple, object]:
        np = self.np
        left_cols, left_rows = left
        right_cols, right_rows = right
        shared = [c for c in right_cols if c in left_cols]
        extra = [i for i, c in enumerate(right_cols) if c not in left_cols]
        out_cols = tuple(left_cols) + tuple(right_cols[i] for i in extra)
        left_n = left_rows.shape[0]
        right_n = right_rows.shape[0]
        if left_n == 0 or right_n == 0:
            return out_cols, np.empty((0, len(out_cols)), dtype=np.int64)
        budget = current_budget()
        if not shared:
            if left_n * right_n > self.row_cap:
                raise TableOverflow
            if budget is not None:
                budget.charge(left_n * right_n)
            left_idx = np.repeat(np.arange(left_n), right_n)
            right_idx = np.tile(np.arange(right_n), left_n)
        else:
            left_key = self._pack(left_rows, [left_cols.index(c) for c in shared])
            right_key = self._pack(right_rows, [right_cols.index(c) for c in shared])
            if left_key is None or right_key is None:
                return self._join_tuples(left, right, shared, extra, out_cols)
            order = np.argsort(right_key, kind="stable")
            right_sorted = right_key[order]
            lo = np.searchsorted(right_sorted, left_key, side="left")
            hi = np.searchsorted(right_sorted, left_key, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total > self.row_cap:
                raise TableOverflow
            if budget is not None:
                budget.charge(left_n + right_n + total)
            left_idx = np.repeat(np.arange(left_n), counts)
            starts = np.repeat(lo, counts)
            offsets = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            right_idx = order[starts + offsets]
        if extra:
            out = np.concatenate(
                [left_rows[left_idx], right_rows[right_idx][:, extra]], axis=1
            )
        else:
            out = left_rows[left_idx]
        return out_cols, out

    def project(
        self, table: tuple[tuple, object], keep: tuple
    ) -> tuple[tuple, object]:
        columns, rows = table
        positions = [columns.index(c) for c in keep]
        if not positions:
            # Zero columns: the projection is {()} iff any row survives.
            return tuple(keep), rows[:0, :0] if rows.shape[0] == 0 else rows[:1, :0]
        return tuple(keep), self._dedup(rows[:, positions])

    def finalize(self, table: tuple[tuple, object], boundary: tuple) -> frozenset:
        """Decode-free exit: project and freeze into int tuples."""
        _, rows = self.project(table, tuple(boundary))
        return frozenset(map(tuple, rows.tolist()))

    # -- helpers ---------------------------------------------------------
    def _dedup(self, rows):
        np = self.np
        if rows.shape[0] <= 1:
            return rows
        key = self._pack(rows, list(range(rows.shape[1])))
        if key is None:
            return np.unique(rows, axis=0)
        _, index = np.unique(key, return_index=True)
        return rows[index]

    def _pack(self, rows, positions: Sequence[int]):
        """Mixed-radix int64 key over ``positions``; ``None`` when the
        packed width would overflow 63 bits."""
        np = self.np
        radix = max(self.encoded.size, 1)
        if radix ** len(positions) >= 2**63:
            return None
        key = rows[:, positions[0]].astype(np.int64, copy=True)
        for position in positions[1:]:
            key *= radix
            key += rows[:, position]
        return key

    def _join_tuples(self, left, right, shared, extra, out_cols):
        """Python-tuple fallback join for unpackable key widths."""
        np = self.np
        left_cols, left_rows = left
        right_cols, right_rows = right
        left_pos = [left_cols.index(c) for c in shared]
        right_pos = [right_cols.index(c) for c in shared]
        budget = current_budget()
        buckets: dict[tuple, list[tuple]] = {}
        for row in map(tuple, right_rows.tolist()):
            key = tuple(row[i] for i in right_pos)
            buckets.setdefault(key, []).append(tuple(row[i] for i in extra))
        out: list[tuple] = []
        for row in map(tuple, left_rows.tolist()):
            key = tuple(row[i] for i in left_pos)
            if budget is not None:
                budget.charge(1)
            for extras in buckets.get(key, ()):
                out.append(row + extras)
                if len(out) > self.row_cap:
                    raise TableOverflow
        if not out:
            return out_cols, np.empty((0, len(out_cols)), dtype=np.int64)
        return out_cols, np.array(out, dtype=np.int64)
