"""Positional indexes over structure relations.

A :class:`PositionalIndex` stores, for every relation of a structure,
the mapping ``(relation, position, value) -> tuples having value at
position``.  Two consumers share it:

* the homomorphism search (:mod:`repro.structures.homomorphism`) uses it
  for forward checking: as soon as *some* entries of a source tuple are
  assigned, the index tells whether any target tuple is still compatible,
  pruning dead branches long before the tuple is fully assigned;
* the counting engine (:mod:`repro.engine.cache`) caches one index per
  data structure so repeated executions of compiled plans against the
  same structure skip re-scanning the relations.

Building the index is a single pass over the tuples; ``tuples`` and
``matching`` are O(1) dictionary accesses returning frozensets, and
``has_compatible_tuple`` intersects the (pre-sorted-by-size) candidate
sets of the pinned positions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.structures.structure import Element, Structure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.structures.encoding import EncodedStructure


class _PositionalLookup:
    """The shared (relation, position, value) lookup machinery.

    Subclasses fill ``_tuples`` (relation name to frozenset of rows) and
    ``_by_position`` (``(relation, position, value)`` to the rows
    carrying ``value`` at ``position``); the lookup methods are
    value-agnostic, so the same code serves object tuples
    (:class:`PositionalIndex`) and dense-int tuples
    (:class:`EncodedPositionalIndex`).
    """

    __slots__ = ()

    @staticmethod
    def _build_by_position(
        tuples_by_relation: Mapping[str, frozenset],
    ) -> dict[tuple[str, int, Element], frozenset]:
        by_position: dict[tuple[str, int, Element], set] = {}
        for name, tuples in tuples_by_relation.items():
            for t in tuples:
                for position, value in enumerate(t):
                    by_position.setdefault((name, position, value), set()).add(t)
        return {key: frozenset(values) for key, values in by_position.items()}

    def tuples(self, relation: str) -> frozenset[tuple[Element, ...]]:
        """All tuples of ``relation`` (empty frozenset if unknown)."""
        return self._tuples.get(relation, frozenset())

    def matching(
        self, relation: str, position: int, value: Element
    ) -> frozenset[tuple[Element, ...]]:
        """The tuples of ``relation`` carrying ``value`` at ``position``."""
        return self._by_position.get((relation, position, value), frozenset())

    def has_compatible_tuple(
        self, relation: str, fixed: Mapping[int, Element]
    ) -> bool:
        """Is some tuple of ``relation`` compatible with the partial row?

        ``fixed`` maps tuple positions to required values.  With an empty
        ``fixed`` the answer is whether the relation is non-empty.  This
        is the forward-checking primitive: an existence test that never
        materializes the intersection unless more than one position is
        pinned.
        """
        if not fixed:
            return bool(self._tuples.get(relation))
        candidate_sets = [
            self._by_position.get((relation, position, value), frozenset())
            for position, value in fixed.items()
        ]
        candidate_sets.sort(key=len)
        if not candidate_sets[0]:
            return False
        if len(candidate_sets) == 1:
            return True
        survivors = candidate_sets[0]
        for other in candidate_sets[1:]:
            survivors = survivors & other
            if not survivors:
                return False
        return True


class PositionalIndex(_PositionalLookup):
    """An immutable (relation, position, value) index of one structure."""

    __slots__ = ("_structure", "_tuples", "_by_position")

    def __init__(self, structure: Structure):
        self._structure = structure
        self._tuples: dict[str, frozenset[tuple[Element, ...]]] = dict(
            structure.relations
        )
        self._by_position = self._build_by_position(self._tuples)

    @property
    def structure(self) -> Structure:
        """The indexed structure."""
        return self._structure

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PositionalIndex({len(self._tuples)} relations, "
            f"{len(self._by_position)} keys)"
        )


class EncodedPositionalIndex(_PositionalLookup):
    """The positional index over a dense-int encoded structure.

    Same API as :class:`PositionalIndex` but keyed by the encoded
    integer values, so forward checking
    (:meth:`_PositionalLookup.has_compatible_tuple`) during encoded
    eliminations hashes machine ints instead of arbitrary objects.
    """

    __slots__ = ("_encoded", "_tuples", "_by_position")

    def __init__(self, encoded: "EncodedStructure"):
        self._encoded = encoded
        self._tuples: dict[str, frozenset[tuple[int, ...]]] = {
            name: encoded.relation_rows(name) for name in encoded.relations
        }
        self._by_position = self._build_by_position(self._tuples)

    @property
    def encoded(self) -> "EncodedStructure":
        """The indexed encoded structure."""
        return self._encoded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodedPositionalIndex({len(self._tuples)} relations, "
            f"{len(self._by_position)} keys)"
        )
