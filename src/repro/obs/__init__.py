"""Observability for the counting stack: tracing, logging, metrics.

Three dependency-free pillars (see ``docs/observability.md``):

* :mod:`repro.obs.trace` -- per-request span trace trees with a
  process-wide :class:`~repro.obs.trace.Tracer`, ambient propagation
  via :mod:`contextvars`, worker-side capture across the pool's
  process boundary, and a bounded ring buffer behind
  ``GET /debug/traces``;
* :mod:`repro.obs.log` -- JSON-lines structured logging on stdlib
  ``logging`` (request-completion records, slow-query dumps);
* :mod:`repro.obs.prom` -- Prometheus text exposition (format 0.0.4)
  of the ``/metrics`` payload, plus the parser/validator the CI
  scrape check uses.
"""

from repro.obs.log import JsonLineFormatter, configure, get_logger
from repro.obs.prom import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
)
from repro.obs.prom import (
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    Span,
    Trace,
    Tracer,
    attach_foreign,
    capture,
    get_tracer,
    span,
    span_or_trace,
)

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "JsonLineFormatter",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "Trace",
    "Tracer",
    "attach_foreign",
    "capture",
    "configure",
    "get_logger",
    "get_tracer",
    "parse_exposition",
    "render_prometheus",
    "span",
    "span_or_trace",
    "validate_exposition",
]
