"""Per-request span tracing for the counting stack.

A :class:`Tracer` produces **trace trees**: one :class:`Trace` per
request, holding named :class:`Span` records (start time, duration,
attributes, error) linked by parent ids.  The ambient trace travels in
a :mod:`contextvars` variable, so instrumentation points anywhere in
the stack -- the HTTP layer, the engine, the execution context deep
inside a semijoin -- call :func:`span` without threading a handle
through every signature.  Crossing the process boundary into pool
workers works differently: a worker opens a :meth:`Tracer.capture`
around its task, serializes the finished spans to plain dicts, and
ships them back alongside the result (the existing job-result path of
:mod:`repro.engine.pool`), where :meth:`Tracer.attach_foreign`
re-parents them under the caller's current span.

The canonical span names, one per pipeline stage (documented with
their attributes in ``docs/observability.md``):

``admission.queue``
    waiting for an execution slot in the serving layer;
``plan.compile``
    plan-cache lookup + compilation (attrs: ``cache`` hit/miss,
    ``kind``, ``strategy``);
``context.build``
    positional-index construction for one structure;
``context.encode``
    one-time dense-int interning of an encoded execution context
    (attrs: ``universe``, ``tuples``, ``backend``);
``context.semijoin``
    one semijoin ∃-component elimination attempt;
``shard.fanout``
    shipping shard jobs to the pool and collecting results;
``shard.execute[i]``
    one shard's evaluation, recorded *inside* the worker that ran it
    (``[i]`` is the shard index, suffixed at re-parenting time);
``count.block[i]``
    one ``count_many`` block, likewise worker-recorded;
``combine``
    exact recombination of the per-shard results.

Tracing is **on by default**; ``REPRO_TRACE=off`` (or ``0`` / ``false``
/ ``no``) disables it process-wide, and forked pool workers inherit the
setting.  When disabled, every hook degrades to a shared no-op object,
so the cost is one :class:`~contextvars.ContextVar` read per
instrumentation point.  Finished traces land in a bounded ring buffer
(newest win), which ``GET /debug/traces`` serves.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from collections import deque
from typing import Iterator, Mapping, Sequence

#: How many finished traces the ring buffer retains by default.
DEFAULT_TRACE_CAPACITY = 256

#: Environment variable gating tracing process-wide.
TRACE_ENV_VAR = "REPRO_TRACE"

_DISABLED_VALUES = ("off", "0", "false", "no")


def _env_enabled() -> bool:
    """Whether ``REPRO_TRACE`` leaves tracing on (the default)."""
    return os.environ.get(TRACE_ENV_VAR, "on").strip().lower() not in (
        _DISABLED_VALUES
    )


class Span:
    """One named, timed segment of a trace.

    ``started_at`` is wall-clock (``time.time()``) for display;
    durations come from ``perf_counter`` so they are monotonic.
    ``error`` is ``None`` for a clean span or a short
    ``"ExceptionType: message"`` description.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "started_at",
        "duration_seconds",
        "attributes",
        "error",
        "_start_perf",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        attributes: Mapping | None = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = time.time()
        self._start_perf = time.perf_counter()
        self.duration_seconds: float | None = None
        self.attributes: dict = dict(attributes) if attributes else {}
        self.error: str | None = None

    def set(self, key: str, value) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def finish(self, error: str | None = None) -> None:
        """Close the span (idempotent; the first finish wins)."""
        if self.duration_seconds is None:
            self.duration_seconds = time.perf_counter() - self._start_perf
            if error is not None:
                self.error = error

    def to_dict(self) -> dict:
        """The flat (non-tree) JSON form; ``as_dict`` trees live on traces."""
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration_seconds})"
        )


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is inactive."""

    __slots__ = ()
    name = ""
    span_id = ""
    parent_id = None
    started_at = 0.0
    duration_seconds = None
    attributes: dict = {}
    error = None

    def set(self, key: str, value) -> None:
        pass

    def finish(self, error: str | None = None) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Trace:
    """One request's tree of spans.

    Spans are stored flat (insertion order; a parent always precedes
    its children) and treed on demand by :meth:`as_dict`.  Mutation is
    locked: the serving layer appends from both the event loop
    (admission spans) and executor threads (engine spans), and an
    abandoned request's thread may still be appending while the trace
    is read from the debug endpoint.
    """

    __slots__ = (
        "trace_id",
        "request_id",
        "started_at",
        "finished",
        "root",
        "_spans",
        "_counter",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        trace_id: str | None = None,
        request_id: str | None = None,
        attributes: Mapping | None = None,
    ):
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.request_id = request_id
        self.started_at = time.time()
        self.finished = False
        self._spans: list[Span] = []
        self._counter = 0
        self._lock = threading.Lock()
        self.root = self.new_span(name, parent=None, attributes=attributes)

    # ------------------------------------------------------------------
    def new_span(
        self,
        name: str,
        parent: Span | None,
        attributes: Mapping | None = None,
    ) -> Span:
        """Open a new span under ``parent`` (``None`` only for the root)."""
        with self._lock:
            self._counter += 1
            span = Span(
                name,
                span_id=f"s{self._counter}",
                parent_id=parent.span_id if parent is not None else None,
                attributes=attributes,
            )
            self._spans.append(span)
            return span

    def attach_serialized(
        self,
        spans: Sequence[Mapping],
        parent: Span,
        suffix: str = "",
    ) -> None:
        """Re-parent foreign (worker-recorded) spans under ``parent``.

        ``spans`` is the flat ``to_dict`` list a worker shipped back:
        parents precede children, ids are local to the worker's capture.
        Fresh ids are allocated from this trace, the worker's root spans
        hang off ``parent`` with ``suffix`` appended to their names
        (e.g. ``"[3]"`` for shard 3), and recorded start/duration are
        kept as-is -- worker and parent share a host clock.
        """
        with self._lock:
            id_map: dict[str, str] = {}
            for record in spans:
                self._counter += 1
                new_id = f"s{self._counter}"
                old_id = str(record.get("span_id", new_id))
                id_map[old_id] = new_id
                old_parent = record.get("parent_id")
                if old_parent is None:
                    parent_id = parent.span_id
                    name = f"{record['name']}{suffix}"
                else:
                    parent_id = id_map.get(str(old_parent), parent.span_id)
                    name = str(record["name"])
                span = Span(
                    name,
                    span_id=new_id,
                    parent_id=parent_id,
                    attributes=record.get("attributes"),
                )
                span.started_at = float(record.get("started_at", 0.0))
                span.duration_seconds = record.get("duration_seconds")
                span.error = record.get("error")
                self._spans.append(span)

    def set(self, key: str, value) -> None:
        """Attach one attribute to the root span (span-compatible API)."""
        self.root.set(key, value)

    # ------------------------------------------------------------------
    def finish(self, error: str | None = None) -> None:
        self.root.finish(error)
        self.finished = True

    @property
    def duration_seconds(self) -> float | None:
        return self.root.duration_seconds

    def spans(self) -> list[Span]:
        """A snapshot of the flat span list."""
        with self._lock:
            return list(self._spans)

    def serialized_spans(self) -> list[dict]:
        """The flat ``to_dict`` list (what a worker capture ships back)."""
        return [span.to_dict() for span in self.spans()]

    def stage_breakdown(self) -> dict[str, float]:
        """Duration by name of the root's *direct* children, summed.

        This is the request-completion log's ``stages`` field: where a
        request spent its time, one level deep.
        """
        root_id = self.root.span_id
        out: dict[str, float] = {}
        for span in self.spans():
            if span.parent_id == root_id and span.duration_seconds is not None:
                out[span.name] = out.get(span.name, 0.0) + span.duration_seconds
        return out

    def summary(self) -> dict:
        """The listing row ``GET /debug/traces`` serves."""
        spans = self.spans()
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "name": self.root.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "span_count": len(spans),
            "error": self.root.error,
        }

    def as_dict(self) -> dict:
        """The full trace tree (the ``/debug/traces/<id>`` payload)."""
        spans = self.spans()
        children: dict[str | None, list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        known = {span.span_id for span in spans}

        def node(span: Span) -> dict:
            out = span.to_dict()
            out.pop("parent_id", None)
            kids = children.get(span.span_id, [])
            if kids:
                out["children"] = [node(child) for child in kids]
            return out

        tree = node(self.root)
        # Orphans (parent id lost in a partial foreign batch) still show
        # up, directly under the root, instead of silently vanishing.
        for span in spans:
            if span.parent_id is not None and span.parent_id not in known:
                tree.setdefault("children", []).append(node(span))
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "span_count": len(spans),
            "root": tree,
        }


class _NoopTrace:
    """Stands in for a trace when tracing is disabled.

    Shaped like :class:`Trace` where the serving layer touches it, so
    request handling does not branch on the tracing switch.
    """

    __slots__ = ()
    trace_id = None
    request_id = None
    finished = True
    root = NOOP_SPAN
    duration_seconds = None

    def set(self, key: str, value) -> None:
        pass

    def finish(self, error: str | None = None) -> None:
        pass

    def stage_breakdown(self) -> dict:
        return {}

    def summary(self) -> dict:
        return {}

    def as_dict(self) -> dict:
        return {}


NOOP_TRACE = _NoopTrace()


# ----------------------------------------------------------------------
# Context managers
# ----------------------------------------------------------------------
class _TraceHandle:
    """CM for a root trace: sets the ambient context, retains on exit."""

    __slots__ = ("_tracer", "_trace", "_token", "_retain")

    def __init__(self, tracer: "Tracer", trace: Trace, retain: bool):
        self._tracer = tracer
        self._trace = trace
        self._retain = retain
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Trace:
        self._token = self._tracer._var.set((self._trace, self._trace.root))
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            self._tracer._var.reset(self._token)
        error = f"{exc_type.__name__}: {exc}" if exc_type is not None else None
        self._trace.finish(error)
        if self._retain:
            self._tracer._retain(self._trace)


class _SpanHandle:
    """CM for a child span of the ambient trace."""

    __slots__ = ("_tracer", "_trace", "_span", "_token")

    def __init__(self, tracer: "Tracer", trace: Trace, span: Span):
        self._tracer = tracer
        self._trace = trace
        self._span = span
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._token = self._tracer._var.set((self._trace, self._span))
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            self._tracer._var.reset(self._token)
        error = f"{exc_type.__name__}: {exc}" if exc_type is not None else None
        self._span.finish(error)


class _NoopHandle:
    """Shared no-op CM for inactive tracing (no trace, or disabled)."""

    __slots__ = ()

    def __enter__(self):
        return NOOP_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_HANDLE = _NoopHandle()


class _NoopTraceHandle:
    """No-op CM where a :class:`Trace` object is expected back."""

    __slots__ = ()

    def __enter__(self):
        return NOOP_TRACE

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_TRACE_HANDLE = _NoopTraceHandle()


class _Capture:
    """CM recording a worker-local trace and serializing it on exit.

    After the ``with`` block, :attr:`spans` holds the flat serialized
    span list (``None`` when tracing is disabled), ready to ship across
    the process boundary.  The capture's trace is never retained in the
    ring buffer -- it only exists to be re-parented by the caller.
    """

    __slots__ = ("_handle", "_trace", "spans")

    def __init__(self, tracer: "Tracer", name: str, attributes: Mapping | None):
        self._trace = Trace(name, attributes=attributes)
        self._handle = _TraceHandle(tracer, self._trace, retain=False)
        self.spans: list[dict] | None = None

    @property
    def root(self) -> Span:
        return self._trace.root

    def __enter__(self) -> "_Capture":
        self._handle.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._handle.__exit__(exc_type, exc, tb)
        self.spans = self._trace.serialized_spans()


class _NoopCapture:
    """Disabled-tracing capture: records nothing, ships ``None``."""

    __slots__ = ()
    spans = None
    root = NOOP_SPAN

    def __enter__(self) -> "_NoopCapture":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_CAPTURE = _NoopCapture()


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------
class Tracer:
    """Produces traces, tracks the ambient span, retains finished traces.

    Parameters
    ----------
    capacity:
        Ring-buffer size for finished traces (oldest evicted first).
    enabled:
        ``None`` (the default) reads ``REPRO_TRACE`` from the
        environment; booleans override it.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        enabled: bool | None = None,
    ):
        self._buffer: deque[Trace] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self._enabled = _env_enabled() if enabled is None else bool(enabled)
        self._var: contextvars.ContextVar[tuple[Trace, Span] | None] = (
            contextvars.ContextVar("repro_trace", default=None)
        )

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool | None) -> None:
        """Flip tracing; ``None`` re-reads ``REPRO_TRACE``.

        Only affects traces started afterwards -- and pool workers
        forked afterwards; already-running workers keep the setting
        they inherited at fork time.
        """
        self._enabled = _env_enabled() if enabled is None else bool(enabled)

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    def set_capacity(self, capacity: int) -> None:
        """Resize the ring buffer, keeping the newest retained traces."""
        with self._lock:
            self._buffer = deque(self._buffer, maxlen=max(1, capacity))

    # ------------------------------------------------------------------
    # Starting traces and spans
    # ------------------------------------------------------------------
    def trace(
        self,
        name: str,
        request_id: str | None = None,
        retain: bool = True,
        **attributes,
    ):
        """Start a fresh root trace (the per-request entry point)."""
        if not self._enabled:
            return _NOOP_TRACE_HANDLE
        return _TraceHandle(
            self,
            Trace(name, request_id=request_id, attributes=attributes or None),
            retain=retain,
        )

    def span(self, name: str, **attributes):
        """A child span of the ambient trace; a no-op without one."""
        current = self._var.get()
        if current is None:
            return _NOOP_HANDLE
        trace, parent = current
        return _SpanHandle(
            self, trace, trace.new_span(name, parent, attributes or None)
        )

    def span_or_trace(self, name: str, **attributes):
        """A child span when a trace is active, else a fresh root trace.

        The engine's entry points use this: under the HTTP layer they
        nest into the request trace; called directly as a library they
        still produce a complete, retained trace of their own.
        """
        if self._var.get() is not None:
            return self.span(name, **attributes)
        return self.trace(name, **attributes)

    def capture(self, name: str, **attributes):
        """A worker-side capture: a local trace serialized on exit."""
        if not self._enabled:
            return _NOOP_CAPTURE
        return _Capture(self, name, attributes or None)

    # ------------------------------------------------------------------
    # The ambient context
    # ------------------------------------------------------------------
    def current_trace(self) -> Trace | None:
        current = self._var.get()
        return current[0] if current is not None else None

    def current_span(self) -> Span | None:
        current = self._var.get()
        return current[1] if current is not None else None

    def attach_foreign(
        self, spans: Sequence[Mapping] | None, suffix: str = ""
    ) -> bool:
        """Re-parent worker-shipped spans under the ambient span.

        Returns ``False`` (dropping the spans) when no trace is active
        -- e.g. the executor was called with tracing disabled
        parent-side while the forked workers still had it on.
        """
        if not spans:
            return False
        current = self._var.get()
        if current is None:
            return False
        trace, parent = current
        trace.attach_serialized(spans, parent, suffix=suffix)
        return True

    # ------------------------------------------------------------------
    # The ring buffer
    # ------------------------------------------------------------------
    def _retain(self, trace: Trace) -> None:
        with self._lock:
            self._buffer.append(trace)

    def finished_traces(self) -> list[Trace]:
        """Retained traces, newest first."""
        with self._lock:
            return list(reversed(self._buffer))

    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            for trace in self._buffer:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.finished_traces())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(enabled={self._enabled}, retained={len(self)}/"
            f"{self.capacity})"
        )


#: The process-wide default tracer every layer shares.
_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


def span(name: str, **attributes):
    """Module-level shortcut: a child span on the default tracer."""
    return _tracer.span(name, **attributes)


def span_or_trace(name: str, **attributes):
    """Module-level shortcut: :meth:`Tracer.span_or_trace` on the default."""
    return _tracer.span_or_trace(name, **attributes)


def capture(name: str, **attributes):
    """Module-level shortcut: a worker-side capture on the default tracer."""
    return _tracer.capture(name, **attributes)


def attach_foreign(spans, suffix: str = "") -> bool:
    """Module-level shortcut: re-parent worker spans on the default tracer."""
    return _tracer.attach_foreign(spans, suffix=suffix)
