"""Prometheus text exposition (format 0.0.4) for the metrics payload.

:func:`render_prometheus` turns the JSON metrics dict produced by
:meth:`repro.serve.service.CountingService.metrics` into the Prometheus
text format: ``# HELP`` / ``# TYPE`` headers, counter and gauge
samples, and the per-endpoint latency histograms as cumulative
``_bucket{le=...}`` series closed by ``le="+Inf"`` plus ``_sum`` /
``_count``.  The HTTP layer serves it from ``/metrics`` under content
negotiation (``Accept: text/plain`` or ``?format=prometheus``); the
JSON payload stays the default.

Everything is derived from the metrics dict -- rendering never touches
live engine state, so a rendered page is exactly as coherent as the
snapshot it came from.  Every family is emitted on every scrape (zero
samples included), keeping the exposed family set deterministic; the
docs-freshness check relies on that to diff ``docs/observability.md``
against a live render.

:func:`parse_exposition` / :func:`validate_exposition` implement the
reverse direction for tests and the CI scrape check: a line-by-line
parser and a validator asserting the invariants scrapers rely on
(headers present, buckets cumulative and capped by ``+Inf`` == count,
label values escaped).
"""

from __future__ import annotations

import math
import re
from typing import Mapping

#: The content type a compliant scraper expects for text format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: EngineStats counters exposed as ``repro_engine_<name>_total``.
ENGINE_COUNTERS = (
    "count_calls",
    "batch_calls",
    "sharded_calls",
    "plan_hits",
    "plan_misses",
    "context_hits",
    "context_misses",
    "index_builds",
    "boundary_memo_hits",
    "boundary_memo_misses",
    "semijoin_eliminations",
    "backtracking_eliminations",
    "encoded_eliminations",
    "worker_context_hits",
    "worker_context_misses",
    "persist_hits",
    "persist_misses",
    "persist_stores",
    "registry_hits",
    "registry_misses",
    "registry_registrations",
    "registry_evictions",
    "delta_applies",
    "memo_evictions",
    "context_invalidations",
    "classifications",
    "policy_rejections",
    "budget_aborts",
)

#: Cluster-coordinator counters exposed as
#: ``repro_cluster_<name>_total`` (all zero when no cluster is
#: attached, keeping the family set deterministic).
_CLUSTER_COUNTERS = (
    "registrations",
    "registrations_refused",
    "heartbeats",
    "heartbeat_timeouts",
    "worker_failures",
    "reassignments",
    "jobs_dispatched",
    "jobs_completed",
    "jobs_failed",
)

#: The trichotomy verdicts always present in the labeled verdict
#: family, so the exposed series set stays deterministic even before
#: the first classification.
_VERDICT_CASES = ("FPT", "CLIQUE_EQUIVALENT", "SHARP_CLIQUE_HARD")

#: Request outcome counters inside each endpoint block, with the label
#: value each is exposed under.
_OUTCOMES = (
    ("completed", "completed"),
    ("rejected", "rejected"),
    ("timeouts", "timeout"),
    ("errors", "error"),
)

_GAUGES = (
    # (family, help, block, key)
    ("repro_service_uptime_seconds", "Seconds since the service started.",
     "service", "uptime_seconds"),
    ("repro_service_closed", "1 when the service no longer admits requests.",
     "service", "closed"),
    ("repro_service_max_in_flight", "Concurrent-execution budget.",
     "service", "max_in_flight"),
    ("repro_service_max_queue", "Admitted-but-waiting budget.",
     "service", "max_queue"),
    ("repro_service_pending_requests", "Admitted requests (queued + executing).",
     "service", "pending"),
    ("repro_service_executing_requests", "Requests currently executing.",
     "service", "executing"),
    ("repro_service_abandoned_requests",
     "Timed-out requests whose threads still hold a slot.",
     "service", "abandoned"),
    ("repro_registry_entries", "Resident named structures.",
     "registry", "entries"),
    ("repro_registry_max_entries", "Registry entry capacity.",
     "registry", "max_entries"),
    ("repro_registry_resident_bytes",
     "Approximate bytes of all resident structures.",
     "registry", "resident_bytes"),
    ("repro_registry_max_bytes", "Registry byte capacity.",
     "registry", "max_bytes"),
    ("repro_registry_pinned_entries", "Resident entries exempt from eviction.",
     "registry", "pinned_entries"),
    ("repro_engine_encoded_resident_bytes",
     "Approximate bytes of integer-encoded structures resident in the "
     "engine's context cache.",
     "engine", "encoded_resident_bytes"),
    ("repro_pool_processes", "Configured worker-pool size.",
     "pool", "processes"),
    ("repro_pool_started", "1 when the worker pool has live processes.",
     "pool", "started"),
    ("repro_pool_pinned_structures",
     "Structure fingerprints pinned in every worker.",
     "pool", "pinned_structures"),
    ("repro_tracing_enabled", "1 when span tracing is on.",
     "obs", "tracing_enabled"),
    ("repro_traces_retained", "Finished traces in the debug ring buffer.",
     "obs", "traces_retained"),
    ("repro_trace_capacity", "Capacity of the trace ring buffer.",
     "obs", "trace_capacity"),
    ("repro_cluster_attached", "1 when an execution cluster is attached.",
     "cluster", "attached"),
    ("repro_cluster_workers", "Live registered cluster workers.",
     "cluster", "workers"),
    ("repro_cluster_capacity_slots",
     "Total concurrent-job capacity across live workers.",
     "cluster", "capacity_slots"),
    ("repro_cluster_in_flight_jobs",
     "Shard units currently executing on cluster workers.",
     "cluster", "in_flight"),
    ("repro_cluster_pending_jobs",
     "Shard units waiting for a free worker slot.",
     "cluster", "pending_jobs"),
    ("repro_cluster_placed_fingerprints",
     "Shard fingerprints resident somewhere in the cluster.",
     "cluster", "placements"),
    ("repro_cluster_replication",
     "Configured placement replication factor.",
     "cluster", "replication"),
)


def escape_label_value(value) -> str:
    """Escape one label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value) -> str:
    if value is None:
        return "0"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _sample(name: str, labels: Mapping | None, value) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{escape_label_value(val)}"'
            for key, val in labels.items()
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Family:
    """One metric family: header lines plus its samples, in order."""

    __slots__ = ("name", "kind", "help", "lines")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: list[str] = []

    def add(self, value, labels: Mapping | None = None, suffix: str = "") -> None:
        self.lines.append(_sample(self.name + suffix, labels, value))

    def render(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
            *self.lines,
        ]


def _histogram(
    family: _Family, labels: dict, latency: Mapping
) -> None:
    """Append one endpoint's cumulative histogram series to ``family``."""
    cumulative = 0
    for bucket in latency.get("buckets", ()):
        if "cumulative" in bucket:
            cumulative = bucket["cumulative"]
        else:
            cumulative += bucket.get("count", 0)
        bound = bucket.get("le")
        le = "+Inf" if bound is None else _format_value(float(bound))
        family.add(cumulative, {**labels, "le": le}, suffix="_bucket")
    family.add(latency.get("sum_seconds", 0.0), labels, suffix="_sum")
    family.add(latency.get("count", 0), labels, suffix="_count")


def render_prometheus(metrics: Mapping) -> str:
    """The metrics dict as Prometheus text format 0.0.4."""
    service = metrics.get("service", {})
    engine = metrics.get("engine", {})
    families: list[_Family] = []

    requests = _Family(
        "repro_requests_total", "counter",
        "Requests received, per endpoint (admitted or not).",
    )
    outcomes = _Family(
        "repro_request_outcomes_total", "counter",
        "Finished requests by outcome (completed, rejected, timeout, error).",
    )
    latency = _Family(
        "repro_request_latency_seconds", "histogram",
        "Completed-request latency (queueing + execution), per endpoint.",
    )
    for endpoint, counters in sorted(service.get("endpoints", {}).items()):
        labels = {"endpoint": endpoint}
        requests.add(counters.get("requests", 0), labels)
        for key, outcome in _OUTCOMES:
            outcomes.add(
                counters.get(key, 0), {**labels, "outcome": outcome}
            )
        _histogram(latency, labels, counters.get("latency", {}))
    families += [requests, outcomes, latency]

    for counter in ENGINE_COUNTERS:
        family = _Family(
            f"repro_engine_{counter}_total", "counter",
            f"Engine counter `{counter}`; see docs/operations.md.",
        )
        family.add(engine.get(counter, 0))
        families.append(family)
    for phase in ("compile", "execute"):
        family = _Family(
            f"repro_engine_{phase}_seconds_total", "counter",
            f"Total seconds the engine spent in its {phase} phase.",
        )
        family.add(engine.get(f"{phase}_seconds", 0.0))
        families.append(family)
    strategies = _Family(
        "repro_engine_strategy_calls_total", "counter",
        "Counting calls by requested strategy.",
    )
    for strategy, calls in sorted(engine.get("strategies", {}).items()):
        strategies.add(calls, {"strategy": strategy})
    families.append(strategies)
    verdicts = _Family(
        "repro_plan_verdicts_total", "counter",
        "Plans classified at compile time, by trichotomy verdict.",
    )
    observed = engine.get("verdicts", {})
    for case in sorted(set(_VERDICT_CASES) | set(observed)):
        verdicts.add(observed.get(case, 0), {"verdict": case})
    families.append(verdicts)

    cluster = metrics.get("cluster", {})
    for counter in _CLUSTER_COUNTERS:
        family = _Family(
            f"repro_cluster_{counter}_total", "counter",
            f"Cluster coordinator counter `{counter}`; see docs/cluster.md.",
        )
        family.add(cluster.get(counter, 0))
        families.append(family)

    for name, help_text, block, key in _GAUGES:
        family = _Family(name, "gauge", help_text)
        family.add(metrics.get(block, {}).get(key, 0))
        families.append(family)

    lines: list[str] = []
    for family in families:
        lines.extend(family.render())
    return "\n".join(lines) + "\n"


def family_names() -> set[str]:
    """Every family name a render emits (the documented metric set)."""
    names = {
        "repro_requests_total",
        "repro_request_outcomes_total",
        "repro_request_latency_seconds",
        "repro_engine_strategy_calls_total",
        "repro_plan_verdicts_total",
    }
    names.update(f"repro_engine_{c}_total" for c in ENGINE_COUNTERS)
    names.update(f"repro_engine_{p}_seconds_total" for p in ("compile", "execute"))
    names.update(f"repro_cluster_{c}_total" for c in _CLUSTER_COUNTERS)
    names.update(entry[0] for entry in _GAUGES)
    return names


# ----------------------------------------------------------------------
# Parsing / validation (tests and the CI scrape check)
# ----------------------------------------------------------------------
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def parse_exposition(text: str) -> dict:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``;
    histogram ``_bucket`` / ``_sum`` / ``_count`` samples land under
    their family name.  Raises ``ValueError`` on a malformed line.
    """
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        return families.setdefault(
            base, {"type": None, "help": None, "samples": []}
        )

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {number}: malformed HELP: {line!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {number}: malformed TYPE: {line!r}")
            families.setdefault(
                parts[2], {"type": None, "help": None, "samples": []}
            )["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL.finditer(raw_labels):
                labels[pair.group(1)] = _unescape(pair.group(2))
                consumed = pair.end()
            remainder = raw_labels[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(
                    f"line {number}: malformed labels: {raw_labels!r}"
                )
        family(match.group("name"))["samples"].append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return families


def validate_exposition(text: str) -> list[str]:
    """The scraper-invariant violations in ``text`` (empty when valid).

    Checks, per family: ``# TYPE`` and ``# HELP`` present for every
    sampled family; histogram buckets cumulative (non-decreasing in
    ``le`` order), closed by ``le="+Inf"`` whose value equals the
    matching ``_count``; and a ``_sum`` sample present.
    """
    problems: list[str] = []
    try:
        families = parse_exposition(text)
    except ValueError as exc:
        return [str(exc)]
    if not families:
        return ["no metric families found"]
    for name, info in sorted(families.items()):
        if not info["samples"]:
            continue
        if info["type"] is None:
            problems.append(f"{name}: sampled without a # TYPE header")
        if info["help"] is None:
            problems.append(f"{name}: sampled without a # HELP header")
        if info["type"] != "histogram":
            continue
        # Group histogram series by their non-`le` labels.
        series: dict[tuple, dict] = {}
        for sample_name, labels, value in info["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            bucket = series.setdefault(
                key, {"buckets": [], "sum": None, "count": None}
            )
            if sample_name == f"{name}_bucket":
                bucket["buckets"].append((labels.get("le"), value))
            elif sample_name == f"{name}_sum":
                bucket["sum"] = value
            elif sample_name == f"{name}_count":
                bucket["count"] = value
        for key, data in series.items():
            where = f"{name}{dict(key)}"
            if not data["buckets"]:
                problems.append(f"{where}: histogram with no _bucket samples")
                continue
            bounds = [_parse_value(le) for le, _ in data["buckets"]]
            if bounds != sorted(bounds):
                problems.append(f"{where}: bucket bounds not ascending")
            counts = [value for _, value in data["buckets"]]
            if counts != sorted(counts):
                problems.append(f"{where}: bucket counts not cumulative")
            if not math.isinf(bounds[-1]):
                problems.append(f"{where}: last bucket is not le=\"+Inf\"")
            if data["count"] is None:
                problems.append(f"{where}: missing _count sample")
            elif counts and counts[-1] != data["count"]:
                problems.append(
                    f"{where}: +Inf bucket ({counts[-1]}) != _count "
                    f"({data['count']})"
                )
            if data["sum"] is None:
                problems.append(f"{where}: missing _sum sample")
    return problems
