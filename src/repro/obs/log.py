"""Structured (JSON-lines) logging on top of the stdlib ``logging``.

The stack logs through ordinary ``logging.Logger`` objects obtained via
:func:`get_logger`, all children of the ``repro`` root logger.  What
this module adds is the *format*: :class:`JsonLineFormatter` renders
each record as one JSON object per line, folding in every attribute
passed via ``extra=`` -- so a call like ::

    log.info("request complete", extra={"request_id": rid, "status": 200})

produces ::

    {"ts": ..., "level": "INFO", "logger": "repro.serve.request",
     "message": "request complete", "request_id": "...", "status": 200}

:func:`configure` wires a handler onto the ``repro`` root exactly once
(idempotent, re-configurable) and is called by the server CLI
(``--log-level`` / ``--log-json``); library use never configures
logging at import time, per stdlib convention.

The two well-known record streams (documented in
``docs/observability.md``):

``repro.serve.request``
    one INFO record per completed HTTP request -- fields
    ``request_id``, ``trace_id``, ``method``, ``endpoint``, ``status``,
    ``duration_seconds``, ``stages`` (stage-name → seconds);
``repro.serve.slowquery``
    one WARNING record per request over the slow-query threshold,
    carrying the full span tree under ``trace``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

#: The root logger name every stack logger descends from.
ROOT_LOGGER = "repro"

#: ``LogRecord`` attributes that are plumbing, not payload.  Anything
#: on a record that is not in this set came from ``extra=`` and is
#: folded into the JSON object.
_STANDARD_ATTRS = frozenset(
    (
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    )
)


def _jsonable(value):
    """Coerce one extra-attribute value to something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class JsonLineFormatter(logging.Formatter):
    """Render each log record as a single-line JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and key not in out:
                out[key] = _jsonable(value)
        if record.exc_info and record.exc_info[0] is not None:
            out["exception"] = self.formatException(record.exc_info)
        return json.dumps(out, default=repr)


class KeyValueFormatter(logging.Formatter):
    """Human-oriented default: timestamp, level, message, then extras."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.created)
        )
        parts = [
            f"{stamp} {record.levelname:<7} {record.name}: "
            f"{record.getMessage()}"
        ]
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS:
                parts.append(f"{key}={_jsonable(value)!r}")
        line = " ".join(parts)
        if record.exc_info and record.exc_info[0] is not None:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def get_logger(name: str) -> logging.Logger:
    """A stack logger: ``get_logger("serve.request")`` → ``repro.serve.request``."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure(
    level: int | str = logging.INFO,
    json_lines: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: calling again replaces the previously attached handler
    (recognized by a marker attribute) instead of stacking duplicates,
    so tests and re-entrant CLIs can reconfigure freely.  Returns the
    root logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.strip().upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(
        JsonLineFormatter() if json_lines else KeyValueFormatter()
    )
    root.addHandler(handler)
    root.setLevel(level)
    # Keep stack records out of the (possibly differently formatted)
    # global root logger.
    root.propagate = False
    return root
