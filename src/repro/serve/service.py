"""The asyncio serving facade over :class:`~repro.engine.api.Engine`.

:class:`CountingService` turns the engine's blocking ``count`` /
``count_many`` / ``count_sharded`` calls into awaitables with the three
properties a front end needs under load:

* **a bounded worker budget** -- engine calls run on a thread pool of
  ``max_in_flight`` threads (the engine's own process pool provides the
  CPU parallelism; the threads only keep the event loop unblocked), so
  a burst can never fork an unbounded number of concurrent executions;
* **admission control** -- at most ``max_in_flight`` requests execute
  while at most ``max_queue`` wait; a request arriving beyond that is
  rejected *immediately* with :class:`ServiceSaturated` (the HTTP layer
  maps it to 429) instead of queueing without bound until the process
  collapses;
* **per-request timeouts** -- the deadline covers queueing *and*
  execution; a request that cannot finish inside
  ``request_timeout_seconds`` fails with :class:`ServiceTimeout` (504).
  A timed-out execution cannot be killed mid-count, so its worker slot
  stays held until the thread actually returns (``abandoned`` in the
  metrics counts such zombies); admission control therefore stays
  truthful even when clients have long given up.

Every request's latency is recorded in a per-endpoint
:class:`LatencyHistogram`, and :meth:`CountingService.metrics` merges
those with a coherent :meth:`Engine.stats` snapshot -- the payload
``/metrics`` serves.
"""

from __future__ import annotations

import asyncio
import contextvars
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from dataclasses import replace as _replace

from repro.engine.api import Engine
from repro.engine.policy import ExecutionPolicy
from repro.exceptions import ReproError
from repro.obs import trace as _trace
from repro.obs.log import get_logger

_log = get_logger("serve.service")

#: Upper bounds (seconds) of the latency histogram buckets; the last
#: bucket is unbounded.  Log-spaced from 0.5ms to 60s.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class ServiceError(ReproError):
    """Base class for serving-layer failures."""


class ServiceSaturated(ServiceError):
    """The service is at ``max_in_flight + max_queue``; retry later.

    The HTTP layer maps this to ``429 Too Many Requests``.
    """


class ServiceTimeout(ServiceError):
    """The request missed its deadline (queueing + execution).

    The HTTP layer maps this to ``504 Gateway Timeout``.
    """


class ServiceClosed(ServiceError):
    """The service is shutting down and no longer admits requests.

    The HTTP layer maps this to ``503 Service Unavailable``.
    """


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`CountingService`.

    ``max_in_flight`` bounds concurrently *executing* requests (and
    sizes the thread pool); ``max_queue`` bounds requests *waiting* for
    a slot; anything beyond the sum is rejected outright.
    ``request_timeout_seconds`` is the per-request deadline across
    queueing and execution; ``drain_timeout_seconds`` is how long
    :meth:`CountingService.aclose` waits for in-flight work before
    giving up on stragglers.  ``slow_request_seconds`` is the
    slow-query threshold: a completed HTTP request slower than this
    gets its full span tree dumped to the ``repro.serve.slowquery``
    log (``None`` or non-positive disables the dump).
    """

    max_in_flight: int = 4
    max_queue: int = 16
    request_timeout_seconds: float = 30.0
    drain_timeout_seconds: float = 10.0
    latency_buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    slow_request_seconds: float | None = 1.0

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ReproError("max_in_flight must be at least 1")
        if self.max_queue < 0:
            raise ReproError("max_queue must be non-negative")
        if self.request_timeout_seconds <= 0:
            raise ReproError("request_timeout_seconds must be positive")
        if tuple(self.latency_buckets) != tuple(sorted(self.latency_buckets)):
            raise ReproError("latency_buckets must be sorted ascending")


class LatencyHistogram:
    """A fixed-bucket latency histogram with percentile estimates.

    Thread-safe: observations land under a lock (requests complete on
    the event loop, but benchmark harnesses observe from worker
    threads), and :meth:`as_dict` / :meth:`percentile` read a coherent
    copy.  Percentiles are bucket-resolution estimates: the value
    returned is the upper bound of the bucket containing the requested
    quantile, which is the usual Prometheus-style approximation.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.bounds = tuple(buckets)
        self._counts = [0] * (len(self.bounds) + 1)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    def _bucket_value(self, index: int, maximum: float) -> float:
        """A bucket's reported value: its upper bound, or the true max
        for the unbounded overflow bucket."""
        return self.bounds[index] if index < len(self.bounds) else maximum

    def _percentile_from(
        self, counts: Sequence[int], total: int, maximum: float, quantile: float
    ) -> float | None:
        if not total:
            return None
        if quantile >= 1.0:
            # The top quantile is the genuinely observed maximum, even
            # when the largest observation fell in a bounded bucket.
            return maximum
        if quantile <= 0.0:
            # The minimum estimate: the first non-empty bucket.  (With
            # rank 0 the old code reported bounds[0] even when that
            # bucket was empty.)
            for i, count in enumerate(counts):
                if count:
                    return self._bucket_value(i, maximum)
            return maximum  # unreachable with total > 0
        # Nearest-rank: the value at position ceil(q * total), 1-based.
        rank = max(1, math.ceil(quantile * total))
        cumulative = 0
        for i, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank:
                return self._bucket_value(i, maximum)
        return maximum

    def percentile(self, quantile: float) -> float | None:
        """The latency at ``quantile`` in [0, 1], or ``None`` if empty."""
        with self._lock:
            total = self._total
            counts = list(self._counts)
            maximum = self._max
        return self._percentile_from(counts, total, maximum, quantile)

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    @property
    def sum_seconds(self) -> float:
        """The summed observed seconds (the Prometheus ``_sum`` series)."""
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> list[dict]:
        """Cumulative ``{le, count}`` pairs, closed by the ``le=None``
        (+Inf) bucket whose count equals the total -- the exact shape
        of a Prometheus histogram's ``_bucket`` series."""
        with self._lock:
            counts = list(self._counts)
        out: list[dict] = []
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            out.append({"le": bound, "count": cumulative})
        out.append({"le": None, "count": cumulative + counts[-1]})
        return out

    def as_dict(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total = self._total
            seconds_sum = self._sum
            maximum = self._max
        # Percentiles from the copied counts, so the payload is one
        # coherent snapshot even while observations keep landing.
        cumulative = 0
        buckets = []
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            buckets.append(
                {"le": bound, "count": count, "cumulative": cumulative}
            )
        buckets.append(
            {"le": None, "count": counts[-1], "cumulative": total}
        )
        return {
            "count": total,
            "sum_seconds": seconds_sum,
            "max_seconds": maximum,
            "mean_seconds": seconds_sum / total if total else None,
            "p50_seconds": self._percentile_from(counts, total, maximum, 0.50),
            "p90_seconds": self._percentile_from(counts, total, maximum, 0.90),
            "p99_seconds": self._percentile_from(counts, total, maximum, 0.99),
            "buckets": buckets,
        }


@dataclass
class _EndpointCounters:
    """Per-endpoint request accounting (mutated on the event loop)."""

    requests: int = 0
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "latency": self.latency.as_dict(),
        }


class CountingService:
    """An asyncio facade serving one :class:`~repro.engine.api.Engine`.

    Parameters
    ----------
    engine:
        The engine to serve.  When omitted the service creates (and
        *owns*) one -- :meth:`aclose` then also shuts the engine's
        worker pool down, so a served process exits without child
        processes.  A caller-provided engine is left running on close
        unless ``owns_engine=True`` transfers it to the service.
    config:
        Admission / timeout knobs; see :class:`ServiceConfig`.
    owns_engine:
        Whether shutdown closes the engine's worker pool.  Defaults to
        whether the service created the engine itself.

    All request methods (:meth:`count`, :meth:`count_many`,
    :meth:`count_sharded`) are coroutines and must run on one event
    loop; the blocking engine work happens on the service's bounded
    thread pool.
    """

    def __init__(
        self,
        engine: Engine | None = None,
        config: ServiceConfig | None = None,
        owns_engine: bool | None = None,
    ):
        self.config = config or ServiceConfig()
        self._owns_engine = owns_engine if owns_engine is not None else engine is None
        self.engine = engine if engine is not None else Engine()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_in_flight,
            thread_name_prefix="repro-serve",
        )
        self._slots = asyncio.Semaphore(self.config.max_in_flight)
        self._closed = False
        self._pending = 0  # admitted: queued + executing
        self._executing = 0
        self._abandoned = 0  # timed-out threads still occupying a slot
        self._endpoints = {
            name: _EndpointCounters()
            for name in ("count", "count_many", "count_sharded", "classify")
        }
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def _effective_policy(self, policy):
        """Resolve the request's policy, coupling budgets to the deadline.

        A budget-aware policy (``budget``/``degrade``) whose
        ``max_seconds`` is unset or beyond the request timeout is capped
        at the timeout: the cooperative budget then aborts the worker
        thread at roughly the moment the HTTP deadline fires, so a
        deadline-exceeded count stops consuming its slot instead of
        running detached (the ``abandoned`` gauge drains instead of
        growing).  ``None`` with a non-budget engine default passes
        through unchanged (the engine applies its own default).
        """
        resolved = (
            self.engine.policy
            if policy is None
            else ExecutionPolicy.from_request(policy)
        )
        if resolved.mode not in ("budget", "degrade"):
            return policy
        timeout = self.config.request_timeout_seconds
        if resolved.max_seconds is None or resolved.max_seconds > timeout:
            return _replace(resolved, max_seconds=timeout)
        return resolved

    async def count(
        self,
        query,
        structure,
        strategy: str = "auto",
        policy=None,
    ) -> int:
        """``Engine.count`` under admission control and the deadline."""
        policy = self._effective_policy(policy)
        return await self._submit(
            "count",
            lambda: self.engine.count(query, structure, strategy, policy=policy),
        )

    async def count_many(
        self,
        queries: Sequence,
        structures: Sequence,
        strategy: str = "auto",
        parallel: bool | None = None,
        policy=None,
    ) -> list[list[int]]:
        """``Engine.count_many`` under admission control and the deadline."""
        policy = self._effective_policy(policy)
        return await self._submit(
            "count_many",
            lambda: self.engine.count_many(
                queries,
                structures,
                strategy=strategy,
                parallel=parallel,
                policy=policy,
            ),
        )

    async def count_sharded(
        self,
        query,
        structure,
        shard_count: int | None = None,
        strategy: str = "auto",
        shard_strategy: str = "hash",
        parallel: bool | None = None,
        policy=None,
    ) -> int:
        """``Engine.count_sharded`` under admission control and the deadline."""
        policy = self._effective_policy(policy)
        return await self._submit(
            "count_sharded",
            lambda: self.engine.count_sharded(
                query,
                structure,
                shard_count=shard_count,
                strategy=strategy,
                shard_strategy=shard_strategy,
                parallel=parallel,
                policy=policy,
            ),
        )

    async def classify(
        self,
        query,
        strategy: str = "auto",
        policy=None,
    ) -> dict:
        """Dry-run complexity classification: no execution happens.

        Compiles ``query`` through the plan cache (so a later ``count``
        of the same query reuses the plan *and* its memoized profile)
        and reports the trichotomy verdict, the structural measures,
        and what the given policy (default: the engine's) would decide.
        """
        return await self._submit(
            "classify",
            lambda: self._classify_blocking(query, strategy, policy),
        )

    def _classify_blocking(self, query, strategy, policy) -> dict:
        profile = self.engine.classify(query, strategy)
        resolved = (
            self.engine.policy
            if policy is None
            else ExecutionPolicy.from_request(policy)
        )
        case = profile.case_for(resolved.treewidth_bound)
        admitted = not (
            resolved.mode == "reject" and case.name in resolved.reject_cases
        )
        return {
            "verdict": case.name,
            "admitted": admitted,
            "profile": profile.as_dict(),
            "policy": resolved.as_dict(),
        }

    # ------------------------------------------------------------------
    # Structure registry management
    # ------------------------------------------------------------------
    async def register_structure(
        self,
        name: str,
        structure,
        pin: bool = True,
        shard_count: int | None = None,
    ) -> dict:
        """Register a named resident structure; returns its entry view.

        Management operations bypass the admission-controlled request
        slots (they are rare and must not compete with traffic for the
        bounded worker budget) but still run off the event loop: a
        registration materializes contexts, computes the shard plan,
        and may broadcast pins into the worker pool -- all blocking
        work.
        """
        if self._closed:
            raise ServiceClosed("service is shut down")
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(
            None,
            lambda: self.engine.register_structure(
                name, structure, pin=pin, shard_count=shard_count
            ),
        )
        return entry.as_dict()

    async def apply_delta(
        self,
        name: str,
        delta,
        expect_version: int | None = None,
    ) -> dict:
        """Apply a delta to a registered structure; returns the new entry view.

        A management operation like registration (same executor, same
        shutdown gate): applying a delta rebuilds encoded columns,
        migrates contexts, and may broadcast into the worker pool.  A
        stale ``expect_version`` surfaces as
        :class:`~repro.engine.registry.VersionConflict` (HTTP 409).
        """
        if self._closed:
            raise ServiceClosed("service is shut down")
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(
            None,
            lambda: self.engine.apply_delta(
                name, delta, expect_version=expect_version
            ),
        )
        return entry.as_dict()

    async def unregister_structure(self, name: str) -> bool:
        """Drop a registered structure; ``False`` when the name is unknown."""
        if self._closed:
            raise ServiceClosed("service is shut down")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.engine.unregister_structure(name)
        )

    def get_structure(self, name: str) -> dict:
        """The entry view of one registered structure (404 if unknown)."""
        entry = self.engine.registry.peek(name)
        if entry is None:
            from repro.engine.registry import UnknownStructureError

            raise UnknownStructureError(name, self.engine.registry.names())
        return entry.as_dict()

    def list_structures(self) -> dict:
        """The registry block: aggregate stats plus every entry view."""
        return self.engine.registry.stats()

    # ------------------------------------------------------------------
    async def _submit(self, endpoint: str, call: Callable[[], object]):
        """Admission control + deadline around one blocking engine call."""
        counters = self._endpoints[endpoint]
        counters.requests += 1
        if self._closed:
            raise ServiceClosed("service is shut down")
        if self._pending >= self.config.max_in_flight + self.config.max_queue:
            counters.rejected += 1
            raise ServiceSaturated(
                f"{self._pending} requests already admitted "
                f"(max_in_flight={self.config.max_in_flight}, "
                f"max_queue={self.config.max_queue})"
            )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.request_timeout_seconds
        started = time.perf_counter()
        self._pending += 1
        try:
            # Wait for an execution slot, but never past the deadline:
            # a request that spends its whole budget queued times out
            # without ever occupying a worker.
            try:
                with _trace.span("admission.queue", endpoint=endpoint):
                    await asyncio.wait_for(
                        self._slots.acquire(), deadline - loop.time()
                    )
            except (asyncio.TimeoutError, TimeoutError):
                counters.timeouts += 1
                raise ServiceTimeout(
                    f"request queued past its "
                    f"{self.config.request_timeout_seconds}s deadline"
                ) from None
            self._executing += 1

            def guarded():
                # Runs on the executor thread.  A straggler finishing
                # after shutdown may have re-forked the engine's worker
                # pool mid-call (pool.map lazily restarts a closed
                # pool); re-close it here, thread-side, so a stopped
                # service never leaves child processes behind even when
                # the event loop is already gone.
                try:
                    return call()
                finally:
                    if self._closed and self._owns_engine:
                        self.engine.close()

            # run_in_executor does not propagate contextvars (unlike
            # asyncio.to_thread); carry the caller's context -- above
            # all the ambient trace -- onto the executor thread, so
            # engine spans land in the request's trace.
            run_context = contextvars.copy_context()
            try:
                future = loop.run_in_executor(
                    self._executor, lambda: run_context.run(guarded)
                )
            except RuntimeError as exc:
                # The executor was shut down while this request waited
                # for its slot; release it and answer as a shutdown.
                counters.errors += 1
                self._release_slot()
                raise ServiceClosed("service is shut down") from exc
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(future), deadline - loop.time()
                )
            except (asyncio.TimeoutError, TimeoutError):
                # The thread cannot be killed mid-count; keep its slot
                # held until it actually finishes so admission control
                # keeps matching the real worker budget.
                counters.timeouts += 1
                self._abandoned += 1
                future.add_done_callback(self._reap_abandoned)
                raise ServiceTimeout(
                    f"request exceeded its "
                    f"{self.config.request_timeout_seconds}s deadline "
                    "(execution continues detached)"
                ) from None
            except Exception:
                counters.errors += 1
                self._release_slot()
                raise
            else:
                counters.completed += 1
                counters.latency.observe(time.perf_counter() - started)
                self._release_slot()
                return result
        finally:
            self._pending -= 1

    def _release_slot(self) -> None:
        self._executing -= 1
        self._slots.release()

    def _reap_abandoned(self, future) -> None:
        """Release the slot of a timed-out call once its thread ends."""
        self._abandoned -= 1
        self._release_slot()
        # The result (or error) has no waiter anymore; retrieve it so
        # the event loop does not log "exception was never retrieved",
        # but keep the dropped error visible at debug level.
        if not future.cancelled():
            error = future.exception()
            if error is not None:
                _log.debug(
                    "abandoned request finished with an error",
                    extra={"error": f"{type(error).__name__}: {error}"},
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """A cheap liveness payload (no engine work)."""
        status = "closed" if self._closed else "ok"
        return {
            "status": status,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "pending": self._pending,
            "executing": self._executing,
            "abandoned": self._abandoned,
            "pool_started": self.engine.pool.started,
            "registry_entries": len(self.engine.registry),
            "registry_bytes": self.engine.registry.resident_bytes,
            "cluster": self._cluster_block(),
        }

    def metrics(self) -> dict:
        """The full metrics payload: service + engine + pool stats.

        The engine half is a coherent :meth:`Engine.stats` snapshot
        (each cache/pool/store counter pair read under its lock); the
        service half is the per-endpoint request/latency accounting.
        """
        return {
            "service": {
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "closed": self._closed,
                "max_in_flight": self.config.max_in_flight,
                "max_queue": self.config.max_queue,
                "request_timeout_seconds": self.config.request_timeout_seconds,
                "pending": self._pending,
                "executing": self._executing,
                "abandoned": self._abandoned,
                "endpoints": {
                    name: counters.as_dict()
                    for name, counters in self._endpoints.items()
                },
            },
            "engine": self.engine.stats().as_dict(),
            "registry": self.engine.registry.stats(),
            "pool": {
                "processes": self.engine.pool.processes,
                "started": self.engine.pool.started,
                "pinned_structures": len(self.engine.pool.pinned_fingerprints()),
            },
            "obs": {
                "tracing_enabled": _trace.get_tracer().enabled,
                "traces_retained": len(_trace.get_tracer()),
                "trace_capacity": _trace.get_tracer().capacity,
            },
            "cluster": self._cluster_block(),
        }

    def _cluster_block(self) -> dict:
        """The attached cluster's status, or ``{"attached": False}``."""
        cluster = getattr(self.engine, "cluster", None)
        if cluster is None:
            return {"attached": False}
        return cluster.status()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Stop admitting, drain in-flight work, release all resources.

        Admitted requests get up to ``drain_timeout_seconds`` to finish
        (their own deadlines usually fire first); the thread pool is
        then shut down and, if the service owns its engine, the
        engine's worker pool is closed -- its child processes joined --
        so a clean shutdown leaves nothing behind.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + self.config.drain_timeout_seconds
        # Wait for queued/executing requests *and* abandoned threads:
        # an abandoned call still runs engine work whose worker pool
        # must not outlive (or be re-forked after) the close below.
        while (self._pending or self._executing) and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Anything still executing past the drain deadline (abandoned
        # or not) must not block the event loop; its done-callback
        # releases the slot whenever the thread finally returns.
        self._executor.shutdown(
            wait=self._executing == 0 and self._abandoned == 0,
            cancel_futures=True,
        )
        if self._owns_engine:
            self.engine.close()

    def close(self) -> None:
        """Synchronous shutdown for non-async callers (no draining)."""
        self._closed = True
        self._executor.shutdown(
            wait=self._executing == 0 and self._abandoned == 0,
            cancel_futures=True,
        )
        if self._owns_engine:
            self.engine.close()

    async def __aenter__(self) -> "CountingService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CountingService(in_flight={self._executing}/"
            f"{self.config.max_in_flight}, pending={self._pending}, "
            f"closed={self._closed})"
        )
