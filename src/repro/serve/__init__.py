"""The async serving front end over :class:`~repro.engine.api.Engine`.

Two layers, both stdlib-only:

* :mod:`repro.serve.service` -- :class:`CountingService`, the asyncio
  facade that runs engine calls on a bounded worker budget with
  admission control (max in-flight + bounded queue, immediate
  :class:`ServiceSaturated` rejection beyond it) and per-request
  deadlines (:class:`ServiceTimeout`), recording per-endpoint latency
  histograms;
* :mod:`repro.serve.httpd` -- :class:`CountingServer`, the hand-rolled
  asyncio HTTP server exposing ``/count``, ``/count_many``,
  ``/count_sharded``, the ``/structures`` registry routes,
  ``/healthz``, and ``/metrics`` as JSON, plus
  :class:`BackgroundServer` for driving a live server from blocking
  code (tests, benchmarks, the ``--smoke`` check).

Run one from the command line with ``python -m repro.serve``.  The
full endpoint reference lives in ``docs/http_api.md`` (kept in sync
with :data:`repro.serve.httpd.ROUTES` by CI).
"""

from repro.serve.httpd import (
    ROUTES,
    BackgroundServer,
    BadRequest,
    CountingServer,
    structure_from_json,
    structure_or_ref_from_json,
)
from repro.serve.service import (
    CountingService,
    LatencyHistogram,
    ServiceClosed,
    ServiceConfig,
    ServiceError,
    ServiceSaturated,
    ServiceTimeout,
)

__all__ = [
    "ROUTES",
    "BackgroundServer",
    "BadRequest",
    "CountingServer",
    "CountingService",
    "LatencyHistogram",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "ServiceSaturated",
    "ServiceTimeout",
    "structure_from_json",
    "structure_or_ref_from_json",
]
