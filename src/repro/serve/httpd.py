"""A thin, stdlib-only HTTP front end for :class:`CountingService`.

No web framework: requests are parsed by hand on top of
``asyncio.start_server`` (HTTP/1.1, JSON bodies, keep-alive), which is
all a counting service needs and keeps the dependency set empty.

Endpoints
---------
``POST /count``
    ``{"query": "...", "structure": {...}, "strategy"?: "auto"}`` ->
    ``{"count": N}``.
``POST /count_many``
    ``{"queries": [...], "structures": [...], "strategy"?}`` ->
    ``{"counts": [[...], ...]}`` with ``counts[i][j] = |q_i(B_j)|``.
``POST /count_sharded``
    ``{"query", "structure", "shard_count"?, "strategy"?,``
    ``"shard_strategy"?, "parallel"?}`` -> ``{"count": N}``.
``POST /classify``
    ``{"query": "...", "strategy"?, "policy"?}`` -> the query's
    trichotomy verdict, its structural measures, and whether the
    (resolved) execution policy would admit it -- a dry run of the
    routing decision that never touches a structure.
``PUT /structures/<name>`` / ``GET`` / ``DELETE``
    Register, inspect, or drop a named resident structure; with a
    registered name, every ``structure`` above may instead be the
    reference form ``{"ref": "<name>"}`` -- the request then ships no
    data and counts against the pinned, worker-resident entry.
``PATCH /structures/<name>``
    Apply a delta to a registered structure in place:
    ``{"insert"?: {rel: [[...], ...]}, "delete"?: {...},``
    ``"expect_version"?: N}`` -> the updated entry view (with its new
    ``version`` and ``fingerprint``).  A stale ``expect_version``
    answers ``409`` with the entry's actual version.
``GET /structures``
    The registry: aggregate stats plus every entry's metadata.
``GET /healthz``
    Liveness: status, in-flight gauges, pool state, registry size.
``GET /metrics``
    The full JSON metrics payload: per-endpoint request counters and
    latency histograms (p50/p90/p99), plus a coherent
    :meth:`~repro.engine.api.Engine.stats` snapshot, the registry
    block, pool info, and the tracing gauges.  With
    ``?format=prometheus`` (or ``Accept: text/plain``) the same
    snapshot is served as Prometheus text exposition format 0.0.4
    instead (see :mod:`repro.obs.prom`).
``GET /debug/traces``
    Summaries of the finished request traces retained in the tracer's
    ring buffer (newest first).
``GET /debug/traces/<trace_id>``
    One retained trace as its full span tree.

Every response carries an ``X-Request-Id`` header -- echoed from the
request when the client sent one, generated otherwise -- which is also
the ``request_id`` of the request's trace and of its
``repro.serve.request`` completion log record.

The canonical route list is :data:`ROUTES` (CI asserts that
``docs/http_api.md`` matches it exactly; see
``tools/check_docs_freshness.py``).

Structures travel as ``{"relations": {name: [[elem, ...], ...]},``
``"universe"?: [...]}`` (or bare relation mappings) or as
``{"ref": "<registered name>"}``; elements are JSON scalars.
Saturation maps to ``429`` (with ``Retry-After``), deadline misses to
``504``, shutdown to ``503``, malformed input to ``400``, an unknown
path or structure reference to ``404`` (with ``known_paths`` /
``known_structures``), a stale ``expect_version`` on a delta to
``409``, a wrong method to ``405`` (with ``allowed`` and an ``Allow``
header).  The counting endpoints additionally accept a ``policy``
field (a mode string or policy object; see ``docs/http_api.md``): a
plan-time policy rejection answers ``422`` with the query's verdict
and measures, and a cost-budget abort mid-execution answers ``504``
with the partial-progress stats at the abort point.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse
import uuid
from dataclasses import dataclass
from typing import Mapping

from repro.engine.pool import WorkerTaskError
from repro.engine.registry import (
    UnknownStructureError,
    VersionConflict,
    validate_structure_name,
)
from repro.exceptions import BudgetExceeded, PolicyRejection, ReproError
from repro.obs import trace as _trace
from repro.obs.log import get_logger
from repro.obs.prom import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.prom import render_prometheus
from repro.serve.service import (
    CountingService,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
    ServiceTimeout,
)
from repro.structures.delta import StructureDelta
from repro.structures.structure import Structure

_request_log = get_logger("serve.request")
_slowquery_log = get_logger("serve.slowquery")
_connection_log = get_logger("serve.httpd")

#: Largest accepted request body, in bytes.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: How long an idle keep-alive connection is held open.
KEEPALIVE_IDLE_SECONDS = 30.0

_SERVER_NAME = "repro-serve"

_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: The canonical route table: every ``(method, path pattern)`` the
#: server answers.  ``<name>`` marks the path segment carrying a
#: structure name.  This is the single source of truth -- dispatch,
#: the ``known_paths`` / ``allowed`` error fields, and the CI
#: docs-freshness check (``tools/check_docs_freshness.py``) all derive
#: from it.
ROUTES: tuple[tuple[str, str], ...] = (
    ("POST", "/count"),
    ("POST", "/count_many"),
    ("POST", "/count_sharded"),
    ("POST", "/classify"),
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("GET", "/structures"),
    ("PUT", "/structures/<name>"),
    ("PATCH", "/structures/<name>"),
    ("GET", "/structures/<name>"),
    ("DELETE", "/structures/<name>"),
    ("GET", "/debug/traces"),
    ("GET", "/debug/traces/<trace_id>"),
)

#: The path patterns, deduplicated in route-table order.
KNOWN_PATHS: tuple[str, ...] = tuple(dict.fromkeys(p for _, p in ROUTES))


class BadRequest(ReproError):
    """The request body or parameters cannot be interpreted."""


@dataclass(frozen=True)
class _TextPayload:
    """A non-JSON response body (the Prometheus exposition page)."""

    text: str
    content_type: str


# ----------------------------------------------------------------------
# JSON <-> domain objects
# ----------------------------------------------------------------------
def structure_from_json(payload) -> Structure:
    """Decode the wire form of a structure.

    Accepts ``{"relations": {...}, "universe": [...]}`` or a bare
    ``{name: [[...], ...]}`` relation mapping.  Tuples arrive as JSON
    arrays; elements are scalars (ints, strings).
    """
    if not isinstance(payload, Mapping):
        raise BadRequest("structure must be a JSON object")
    if "relations" in payload:
        relations = payload["relations"]
        universe = payload.get("universe")
    else:
        relations, universe = payload, None
    if not isinstance(relations, Mapping):
        raise BadRequest("structure relations must be an object")
    decoded = {}
    for name, tuples in relations.items():
        if not isinstance(tuples, list):
            raise BadRequest(f"relation {name!r} must be a list of tuples")
        rows = []
        for row in tuples:
            if not isinstance(row, list):
                raise BadRequest(f"relation {name!r} contains a non-tuple row")
            rows.append(tuple(row))
        decoded[str(name)] = rows
    try:
        return Structure.from_relations(decoded, universe=universe)
    except (ReproError, TypeError) as exc:
        # TypeError covers unhashable elements (nested arrays etc.) --
        # still the client's data, still a 400.
        raise BadRequest(str(exc)) from exc


def structure_or_ref_from_json(payload) -> Structure | str:
    """Decode a structure *or* the ``{"ref": "<name>"}`` reference form.

    A reference resolves against the engine's structure registry at
    execution time; an unknown name surfaces as
    :class:`~repro.engine.registry.UnknownStructureError` (HTTP 404).
    """
    if isinstance(payload, Mapping) and "ref" in payload:
        if len(payload) != 1:
            raise BadRequest(
                'a structure reference must be exactly {"ref": "<name>"}'
            )
        ref = payload["ref"]
        if not isinstance(ref, str) or not ref:
            raise BadRequest("structure ref must be a non-empty string")
        return ref
    return structure_from_json(payload)


def _delta_batches(payload: Mapping, field: str) -> dict:
    """Decode one side (``insert`` / ``delete``) of a wire-form delta."""
    batches = payload.get(field)
    if batches is None:
        return {}
    if not isinstance(batches, Mapping):
        raise BadRequest(f"{field} must map relation names to tuple lists")
    decoded = {}
    for name, tuples in batches.items():
        if not isinstance(tuples, list):
            raise BadRequest(f"{field}[{name!r}] must be a list of tuples")
        rows = []
        for row in tuples:
            if not isinstance(row, list):
                raise BadRequest(
                    f"{field}[{name!r}] contains a non-tuple row"
                )
            rows.append(tuple(row))
        decoded[str(name)] = rows
    return decoded


def delta_from_json(payload) -> StructureDelta:
    """Decode the wire form of a structure delta.

    ``{"insert"?: {rel: [[...], ...]}, "delete"?: {...}}``; at least
    one side must be present and non-empty, and elements are JSON
    scalars exactly as in :func:`structure_from_json`.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest("delta must be a JSON object")
    inserts = _delta_batches(payload, "insert")
    deletes = _delta_batches(payload, "delete")
    if not inserts and not deletes:
        raise BadRequest(
            'delta must carry at least one "insert" or "delete" tuple'
        )
    try:
        return StructureDelta(inserts=inserts, deletes=deletes)
    except (ReproError, TypeError) as exc:
        raise BadRequest(str(exc)) from exc


def _require(payload: Mapping, field: str):
    try:
        return payload[field]
    except (KeyError, TypeError):
        raise BadRequest(f"missing required field {field!r}") from None


def _query_from_json(value) -> str:
    if not isinstance(value, str) or not value.strip():
        raise BadRequest("query must be a non-empty string")
    return value


def _policy_from_json(payload: Mapping):
    """The optional ``policy`` field: a mode string or a policy object.

    Only the JSON shape is checked here; field-level validation (known
    mode, positive limits, ...) happens in
    :meth:`~repro.engine.policy.ExecutionPolicy.from_request`, whose
    :class:`ReproError` maps to ``400`` like any other malformed input.
    """
    value = payload.get("policy")
    if value is None:
        return None
    if not isinstance(value, (str, Mapping)):
        raise BadRequest("policy must be a string or an object")
    return value


def _optional_int(payload: Mapping, field: str) -> int | None:
    """An optional integer field (JSON booleans are *not* integers)."""
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{field} must be an integer")
    return value


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class CountingServer:
    """An asyncio HTTP server publishing one :class:`CountingService`.

    Parameters
    ----------
    service:
        The service to publish; when omitted one is created (owning its
        own engine) from ``engine`` / ``config``.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; the real one
        is available from :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        service: CountingService | None = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        engine=None,
        config: ServiceConfig | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.service = (
            service
            if service is not None
            else CountingService(engine=engine, config=config)
        )
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self._server: asyncio.base_events.Server | None = None
        # Handlers keyed by (method, path pattern).
        self._handlers = {
            ("POST", "/count"): self._route_count,
            ("POST", "/count_many"): self._route_count_many,
            ("POST", "/count_sharded"): self._route_count_sharded,
            ("POST", "/classify"): self._route_classify,
            ("GET", "/healthz"): None,
            ("GET", "/metrics"): None,
            ("GET", "/structures"): None,
            ("PUT", "/structures/<name>"): self._route_register_structure,
            ("PATCH", "/structures/<name>"): self._route_apply_delta,
            ("GET", "/structures/<name>"): None,
            ("DELETE", "/structures/<name>"): None,
            ("GET", "/debug/traces"): None,
            ("GET", "/debug/traces/<trace_id>"): None,
        }
        if set(self._handlers) != set(ROUTES):
            # ROUTES is what dispatch, the error bodies, and the CI
            # docs check trust; a handler table that drifted from it
            # would 500 at request time -- fail at construction instead.
            raise ReproError(
                "CountingServer handler table drifted from ROUTES"
            )

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        return host, port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then drain and close the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    async def __aenter__(self) -> "CountingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), KEEPALIVE_IDLE_SECONDS
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
                if request is None:  # clean EOF between requests
                    break
                method, raw_path, headers, body, parse_error = request
                keep_alive = headers.get("connection", "").lower() != "close"
                path, _, query = raw_path.partition("?")
                request_id = (
                    headers.get("x-request-id") or uuid.uuid4().hex[:16]
                )
                started = time.perf_counter()
                tracer = _trace.get_tracer()
                if parse_error is not None:
                    trace = _trace.NOOP_TRACE
                    status, payload, extra = 400, {"error": parse_error}, {}
                    keep_alive = False
                else:
                    with tracer.trace(
                        f"{method} {path}", request_id=request_id
                    ) as trace:
                        status, payload, extra = await self._dispatch(
                            method, path, query, headers, body
                        )
                duration = time.perf_counter() - started
                extra = {**extra, "X-Request-Id": request_id}
                self._log_request(
                    method, path, status, duration, request_id, trace
                )
                await self._write_response(
                    writer, status, payload, keep_alive, extra
                )
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ) as exc:  # pragma: no cover - client went away mid-request
            _connection_log.debug(
                "client connection dropped mid-request",
                extra={"error": f"{type(exc).__name__}: {exc}"},
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError) as exc:  # pragma: no cover
                _connection_log.debug(
                    "connection close handshake failed",
                    extra={"error": f"{type(exc).__name__}: {exc}"},
                )

    def _log_request(
        self,
        method: str,
        path: str,
        status: int,
        duration: float,
        request_id: str,
        trace,
    ) -> None:
        """One completion record per request, plus the slow-query dump."""
        _request_log.info(
            "request complete",
            extra={
                "request_id": request_id,
                "trace_id": trace.trace_id,
                "method": method,
                "endpoint": path,
                "status": status,
                "duration_seconds": round(duration, 6),
                "stages": {
                    name: round(seconds, 6)
                    for name, seconds in trace.stage_breakdown().items()
                },
            },
        )
        threshold = self.service.config.slow_request_seconds
        if threshold is not None and threshold > 0 and duration > threshold:
            _slowquery_log.warning(
                "slow request",
                extra={
                    "request_id": request_id,
                    "trace_id": trace.trace_id,
                    "method": method,
                    "endpoint": path,
                    "status": status,
                    "duration_seconds": round(duration, 6),
                    "threshold_seconds": threshold,
                    "trace": trace.as_dict(),
                },
            )

    async def _read_request(self, reader: asyncio.StreamReader):
        """One parsed request, ``None`` on EOF, or a parse-error tuple."""
        try:
            request_line = await reader.readline()
        except ValueError:
            # The StreamReader's line limit fired (absurdly long
            # request line): answer 400 instead of dropping the socket.
            return "GET", "/", {}, b"", "request line too long"
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("ascii").split()
        except ValueError:
            return "GET", "/", {}, b"", "malformed request line"
        headers: dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                return method, path, headers, b"", "header line too long"
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            # Only Content-Length framing is supported; reading on
            # would misparse the chunk stream as the next request.
            return (
                method, path, headers, b"",
                "chunked transfer encoding is not supported",
            )
        body = b""
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError:
            return method, path, headers, b"", "bad Content-Length"
        if length < 0:
            return method, path, headers, b"", "bad Content-Length"
        if length > self.max_body_bytes:
            return method, path, headers, b"", "request body too large"
        if length:
            body = await reader.readexactly(length)
        # The query string stays attached; dispatch splits it off (the
        # /metrics format negotiation reads it).
        return method, path, headers, body, None

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | _TextPayload,
        keep_alive: bool,
        extra_headers: Mapping | None = None,
    ) -> None:
        if isinstance(payload, _TextPayload):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8") + b"\n"
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {status} {_STATUS_REASONS.get(status, 'Unknown')}",
            f"Server: {_SERVER_NAME}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        if status == 429:
            head.append("Retry-After: 1")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _match_path(path: str) -> tuple[str | None, dict]:
        """``(pattern, params)`` for ``path``, ``(None, {})`` if unknown."""
        if path in KNOWN_PATHS and "<" not in path:
            return path, {}
        prefix = "/structures/"
        if path.startswith(prefix) and len(path) > len(prefix):
            return "/structures/<name>", {"name": path[len(prefix) :]}
        prefix = "/debug/traces/"
        if path.startswith(prefix) and len(path) > len(prefix):
            return "/debug/traces/<trace_id>", {"trace_id": path[len(prefix) :]}
        return None, {}

    @staticmethod
    def _wants_prometheus(query: str, headers: Mapping) -> bool:
        """Content negotiation for ``/metrics``: JSON unless asked.

        ``?format=prometheus`` (or ``format=openmetrics``) wins over
        headers; otherwise an ``Accept`` preferring ``text/plain`` over
        JSON (what a Prometheus scraper sends) selects the exposition
        format.
        """
        params = urllib.parse.parse_qs(query)
        fmt = params.get("format", [None])[0]
        if fmt is not None:
            return fmt.lower() in ("prometheus", "openmetrics")
        accept = headers.get("accept", "")
        return "text/plain" in accept and "application/json" not in accept

    async def _dispatch(
        self, method: str, path: str, query: str, headers: Mapping, body: bytes
    ) -> tuple[int, dict | _TextPayload, dict]:
        """``(status, payload, extra response headers)`` for a request."""
        pattern, params = self._match_path(path)
        if pattern is None:
            return (
                404,
                {
                    "error": f"unknown path {path!r}",
                    "known_paths": list(KNOWN_PATHS),
                },
                {},
            )
        allowed = sorted({m for m, p in ROUTES if p == pattern})
        if method not in allowed:
            return (
                405,
                {
                    "error": f"{pattern} does not accept {method}",
                    "allowed": allowed,
                },
                {"Allow": ", ".join(allowed)},
            )
        try:
            if (method, pattern) == ("GET", "/healthz"):
                health = self.service.healthz()
                return (200 if health["status"] == "ok" else 503), health, {}
            if (method, pattern) == ("GET", "/metrics"):
                metrics = self.service.metrics()
                if self._wants_prometheus(query, headers):
                    return (
                        200,
                        _TextPayload(
                            render_prometheus(metrics), _PROM_CONTENT_TYPE
                        ),
                        {},
                    )
                return 200, metrics, {}
            if (method, pattern) == ("GET", "/debug/traces"):
                tracer = _trace.get_tracer()
                return (
                    200,
                    {
                        "tracing_enabled": tracer.enabled,
                        "capacity": tracer.capacity,
                        "traces": [
                            t.summary() for t in tracer.finished_traces()
                        ],
                    },
                    {},
                )
            if (method, pattern) == ("GET", "/debug/traces/<trace_id>"):
                found = _trace.get_tracer().get(params["trace_id"])
                if found is None:
                    return (
                        404,
                        {"error": f"unknown trace {params['trace_id']!r}"},
                        {},
                    )
                return 200, found.as_dict(), {}
            if (method, pattern) == ("GET", "/structures"):
                return 200, self.service.list_structures(), {}
            if (method, pattern) == ("GET", "/structures/<name>"):
                return 200, self.service.get_structure(params["name"]), {}
            if (method, pattern) == ("DELETE", "/structures/<name>"):
                name = params["name"]
                if not await self.service.unregister_structure(name):
                    raise UnknownStructureError(
                        name, self.service.engine.registry.names()
                    )
                return 200, {"deleted": name}, {}
            payload = json.loads(body.decode("utf-8")) if body else None
            if not isinstance(payload, Mapping):
                raise BadRequest("request body must be a JSON object")
            handler = self._handlers[(method, pattern)]
            assert handler is not None
            return 200, await handler(payload, **params), {}
        except BadRequest as exc:
            return 400, {"error": str(exc)}, {}
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}, {}
        except UnicodeDecodeError:
            return 400, {"error": "request body must be UTF-8"}, {}
        except VersionConflict as exc:
            # A stale expect_version on PATCH: the caller's view of the
            # entry is out of date.  Must precede the generic ReproError
            # branch -- a version conflict is not a malformed request.
            return (
                409,
                {
                    "error": str(exc),
                    "expected_version": exc.expected,
                    "actual_version": exc.actual,
                },
                {},
            )
        except UnknownStructureError as exc:
            # An unregistered reference is the JSON-body analogue of an
            # unknown path: a 404 listing what *would* have resolved.
            return (
                404,
                {"error": str(exc), "known_structures": sorted(exc.known)},
                {},
            )
        except ServiceSaturated as exc:
            return 429, {"error": str(exc)}, {}
        except ServiceClosed as exc:
            return 503, {"error": str(exc)}, {}
        except ServiceTimeout as exc:
            return 504, {"error": str(exc)}, {}
        except PolicyRejection as exc:
            # The execution policy refused the query at plan time: the
            # request is well-formed but names work the operator chose
            # not to run.  Must precede the generic ReproError branch.
            return (
                422,
                {
                    "error": str(exc),
                    "verdict": exc.verdict,
                    "measures": exc.measures,
                    "policy": exc.policy,
                },
                {},
            )
        except BudgetExceeded as exc:
            # The cooperative cost budget fired mid-execution (possibly
            # inside a pool worker): the request timed out by the
            # operator's cost clock, with partial-progress stats from
            # the abort point.  Must precede the ReproError branch.
            return (
                504,
                {"error": str(exc), "progress": exc.progress},
                {},
            )
        except WorkerTaskError as exc:
            # A failure *inside* a pool worker is a server-side problem
            # with a well-formed request, never the client's fault.
            return 500, {"error": str(exc)}, {}
        except ReproError as exc:
            # Engine-level rejection of well-formed JSON that names an
            # unparsable query, unknown strategy, bad shard count, ...
            return 400, {"error": str(exc)}, {}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    async def _route_count(self, payload: Mapping) -> dict:
        count = await self.service.count(
            _query_from_json(_require(payload, "query")),
            structure_or_ref_from_json(_require(payload, "structure")),
            strategy=str(payload.get("strategy", "auto")),
            policy=_policy_from_json(payload),
        )
        return {"count": count}

    async def _route_classify(self, payload: Mapping) -> dict:
        return await self.service.classify(
            _query_from_json(_require(payload, "query")),
            strategy=str(payload.get("strategy", "auto")),
            policy=_policy_from_json(payload),
        )

    async def _route_count_many(self, payload: Mapping) -> dict:
        queries = _require(payload, "queries")
        structures = _require(payload, "structures")
        if not isinstance(queries, list) or not queries:
            raise BadRequest("queries must be a non-empty list")
        if not isinstance(structures, list) or not structures:
            raise BadRequest("structures must be a non-empty list")
        counts = await self.service.count_many(
            [_query_from_json(q) for q in queries],
            [structure_or_ref_from_json(s) for s in structures],
            strategy=str(payload.get("strategy", "auto")),
            parallel=payload.get("parallel"),
            policy=_policy_from_json(payload),
        )
        return {"counts": counts}

    async def _route_count_sharded(self, payload: Mapping) -> dict:
        shard_count = _optional_int(payload, "shard_count")
        count = await self.service.count_sharded(
            _query_from_json(_require(payload, "query")),
            structure_or_ref_from_json(_require(payload, "structure")),
            shard_count=shard_count,
            strategy=str(payload.get("strategy", "auto")),
            shard_strategy=str(payload.get("shard_strategy", "hash")),
            parallel=payload.get("parallel"),
            policy=_policy_from_json(payload),
        )
        return {"count": count}

    async def _route_register_structure(self, payload: Mapping, name: str) -> dict:
        """``PUT /structures/<name>``: make a structure resident.

        Body: ``{"structure": {...}, "pin"?: true, "shard_count"?: N}``.
        The structure must be inline data (a reference cannot register a
        reference); the response is the entry's metadata view.
        """
        try:
            validate_structure_name(name)
        except ReproError as exc:
            raise BadRequest(str(exc)) from exc
        structure = structure_from_json(_require(payload, "structure"))
        pin = payload.get("pin", True)
        if not isinstance(pin, bool):
            raise BadRequest("pin must be a boolean")
        shard_count = _optional_int(payload, "shard_count")
        return await self.service.register_structure(
            name, structure, pin=pin, shard_count=shard_count
        )

    async def _route_apply_delta(self, payload: Mapping, name: str) -> dict:
        """``PATCH /structures/<name>``: apply a delta to a resident entry.

        Body: ``{"insert"?: {...}, "delete"?: {...},``
        ``"expect_version"?: N}``.  The response is the updated entry
        view; a stale ``expect_version`` maps to ``409`` and an unknown
        name to ``404``, exactly like the other ``/structures`` verbs.
        """
        delta = delta_from_json(payload)
        expect_version = _optional_int(payload, "expect_version")
        return await self.service.apply_delta(
            name, delta, expect_version=expect_version
        )


# ----------------------------------------------------------------------
# Background runner (tests, benchmarks, examples)
# ----------------------------------------------------------------------
class BackgroundServer:
    """Run a :class:`CountingServer` on a dedicated event-loop thread.

    The blocking-world adapter: tests, the benchmark harness, and the
    ``--smoke`` check talk to a real listening socket while their own
    thread stays synchronous.  Use as a context manager; ``stop()``
    performs the full graceful shutdown (drain, close pools) and joins
    the loop thread.
    """

    def __init__(self, server: CountingServer):
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover
            raise ReproError("server failed to start within 30s")
        if self._startup_error is not None:
            # Binding failed on the loop thread (port in use, bad
            # host, ...); fail fast with the real cause instead of a
            # generic timeout.
            self._thread.join(timeout=10)
            self._thread = None
            raise self._startup_error
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:
                self._startup_error = exc
                self._loop = None
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            loop.close()

    def stop(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None:
            return
        try:
            future = asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
            future.result(timeout=60)
        finally:
            # Even when the graceful stop failed or timed out, the loop
            # must still be stopped and the thread joined -- otherwise
            # the port stays bound forever with no way to retry.
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=30)
                self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
