"""Command-line entry point: ``python -m repro.serve``.

Boots a :class:`~repro.serve.httpd.CountingServer` and serves until
interrupted.  ``--smoke`` instead runs the CI smoke check: bind an
ephemeral port, serve one ``/count`` and the introspection endpoints
over a real socket, shut down gracefully, and verify that no worker
child processes survive.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import urllib.request

from repro.engine.api import Engine
from repro.obs import trace as _trace
from repro.obs.log import configure as configure_logging
from repro.serve.httpd import BackgroundServer, CountingServer
from repro.serve.service import CountingService, ServiceConfig


def _build_server(args: argparse.Namespace) -> CountingServer:
    configure_logging(level=args.log_level, json_lines=args.log_json)
    tracer = _trace.get_tracer()
    if args.trace_buffer <= 0:
        tracer.set_enabled(False)
    else:
        tracer.set_capacity(args.trace_buffer)
    registry_knobs = {
        knob: value
        for knob, value in (
            ("registry_max_entries", args.registry_max_entries),
            ("registry_max_bytes", args.registry_max_bytes),
        )
        if value is not None
    }
    engine = Engine(processes=args.processes, **registry_knobs)
    slow = args.slow_query_threshold
    config = ServiceConfig(
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        request_timeout_seconds=args.timeout,
        slow_request_seconds=slow if slow and slow > 0 else None,
    )
    service = CountingService(engine=engine, config=config, owns_engine=True)
    return CountingServer(service=service, host=args.host, port=args.port)


def _smoke(args: argparse.Namespace) -> int:
    """Boot, count inline and by reference, shut down clean, no children."""
    import multiprocessing

    args.port = 0
    server = _build_server(args)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        last_headers: dict = {}

        def call(method: str, path: str, payload: dict | None = None) -> dict:
            request = urllib.request.Request(
                f"{base}{path}",
                data=None if payload is None else json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method=method,
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                last_headers.clear()
                last_headers.update(response.headers.items())
                return json.load(response)

        query = "exists z. (E(x, z) & E(z, y))"
        triangle = {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}}
        count = call("POST", "/count", {"query": query, "structure": triangle})[
            "count"
        ]
        if count != 3:
            print(f"smoke FAILED: /count returned {count}, expected 3")
            return 1
        request_id = last_headers.get("X-Request-Id")
        if not request_id:
            print("smoke FAILED: /count response carried no X-Request-Id")
            return 1
        # Register the structure, then count against the reference: the
        # second request ships zero structure bytes.
        entry = call("PUT", "/structures/smoke", {"structure": triangle})
        if entry["name"] != "smoke" or not entry["pinned"]:
            print(f"smoke FAILED: registration returned {entry}")
            return 1
        by_ref = call(
            "POST", "/count", {"query": query, "structure": {"ref": "smoke"}}
        )["count"]
        if by_ref != 3:
            print(f"smoke FAILED: /count by ref returned {by_ref}, expected 3")
            return 1
        health = call("GET", "/healthz")
        metrics = call("GET", "/metrics")
        if health["status"] != "ok" or health["registry_entries"] != 1:
            print(f"smoke FAILED: /healthz reported {health}")
            return 1
        if metrics["service"]["endpoints"]["count"]["completed"] != 2:
            print("smoke FAILED: metrics did not record the requests")
            return 1
        if metrics["registry"]["entries"] != 1:
            print(f"smoke FAILED: registry metrics: {metrics['registry']}")
            return 1
        # Prometheus exposition via content negotiation.
        from repro.obs.prom import validate_exposition

        with urllib.request.urlopen(
            f"{base}/metrics?format=prometheus", timeout=30
        ) as response:
            content_type = response.headers.get("Content-Type", "")
            exposition = response.read().decode("utf-8")
        if "version=0.0.4" not in content_type:
            print(f"smoke FAILED: /metrics content type {content_type!r}")
            return 1
        problems = validate_exposition(exposition)
        if problems:
            print(f"smoke FAILED: invalid Prometheus exposition: {problems}")
            return 1
        # Tracing: the requests above should be retained and retrievable.
        traces = call("GET", "/debug/traces")
        if traces["tracing_enabled"] and traces["traces"]:
            newest = traces["traces"][0]["trace_id"]
            tree = call("GET", f"/debug/traces/{newest}")
            if tree.get("trace_id") != newest:
                print(f"smoke FAILED: trace lookup returned {tree}")
                return 1
        call("DELETE", "/structures/smoke")
    children = multiprocessing.active_children()
    if children:
        print(f"smoke FAILED: live children after shutdown: {children}")
        return 1
    print(
        "serve smoke OK: /count == 3 inline and by ref, "
        "graceful shutdown, zero children"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="engine worker-pool size (default: one per CPU)",
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=4,
        help="concurrently executing requests (sizes the thread budget)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait for a slot before 429s start",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds (queueing + execution)",
    )
    parser.add_argument(
        "--registry-max-entries",
        type=int,
        default=None,
        help="how many named structures may be resident at once",
    )
    parser.add_argument(
        "--registry-max-bytes",
        type=int,
        default=None,
        help="cap on the registry's summed approximate resident bytes",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="log verbosity for the repro.* loggers",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log line instead of key=value text",
    )
    parser.add_argument(
        "--slow-query-threshold",
        type=float,
        default=1.0,
        help="dump the full span tree for requests slower than this many "
        "seconds (0 or negative disables the slow-query log)",
    )
    parser.add_argument(
        "--trace-buffer",
        type=int,
        default=_trace.DEFAULT_TRACE_CAPACITY,
        help="finished traces retained for /debug/traces "
        "(0 disables tracing entirely)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="boot on an ephemeral port, count inline and by ref, exit",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke(args)

    server = _build_server(args)

    async def _serve() -> None:
        host, port = await server.start()
        print(f"repro-serve listening on http://{host}:{port}")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
