"""Command-line entry point: ``python -m repro.serve``.

Boots a :class:`~repro.serve.httpd.CountingServer` and serves until
interrupted.  ``--smoke`` instead runs the CI smoke check: bind an
ephemeral port, serve one ``/count`` and the introspection endpoints
over a real socket, shut down gracefully, and verify that no worker
child processes survive.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import urllib.request

from repro.engine.api import Engine
from repro.serve.httpd import BackgroundServer, CountingServer
from repro.serve.service import CountingService, ServiceConfig


def _build_server(args: argparse.Namespace) -> CountingServer:
    engine = Engine(processes=args.processes)
    config = ServiceConfig(
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        request_timeout_seconds=args.timeout,
    )
    service = CountingService(engine=engine, config=config, owns_engine=True)
    return CountingServer(service=service, host=args.host, port=args.port)


def _smoke(args: argparse.Namespace) -> int:
    """Boot, serve one /count, shut down clean, verify zero children."""
    import multiprocessing

    args.port = 0
    server = _build_server(args)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        body = json.dumps(
            {
                "query": "exists z. (E(x, z) & E(z, y))",
                "structure": {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}},
            }
        ).encode()
        request = urllib.request.Request(
            f"{base}/count",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            count = json.load(response)["count"]
        if count != 3:
            print(f"smoke FAILED: /count returned {count}, expected 3")
            return 1
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as response:
            health = json.load(response)
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
            metrics = json.load(response)
        if health["status"] != "ok":
            print(f"smoke FAILED: /healthz reported {health}")
            return 1
        if metrics["service"]["endpoints"]["count"]["completed"] != 1:
            print(f"smoke FAILED: metrics did not record the request")
            return 1
    children = multiprocessing.active_children()
    if children:
        print(f"smoke FAILED: live children after shutdown: {children}")
        return 1
    print("serve smoke OK: /count == 3, graceful shutdown, zero children")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="engine worker-pool size (default: one per CPU)",
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=4,
        help="concurrently executing requests (sizes the thread budget)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait for a slot before 429s start",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds (queueing + execution)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="boot on an ephemeral port, serve one /count, exit",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke(args)

    server = _build_server(args)

    async def _serve() -> None:
        host, port = await server.start()
        print(f"repro-serve listening on http://{host}:{port}")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
