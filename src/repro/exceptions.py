"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single exception type at API boundaries.  More
specific subclasses communicate which subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SignatureError(ReproError):
    """A relation symbol or signature was used inconsistently.

    Raised, for example, when a tuple of the wrong arity is added to a
    relation, or when two formulas over different vocabularies are
    combined in an operation that requires a common vocabulary.
    """


class StructureError(ReproError):
    """A relational structure was constructed or used incorrectly."""


class DeltaError(StructureError):
    """A structure delta is malformed or does not apply.

    Deltas are strict: deleting a tuple that is absent, inserting one
    that is already present, or mixing arities within a batch all raise
    this instead of being silently ignored, so a delta always describes
    the exact difference between two structure versions.
    """


class DeltaRoutingError(DeltaError):
    """A delta cannot be routed through an existing shard plan.

    Raised when an inserted tuple would connect elements owned by
    different shards (a data-component merge): the component-aligned
    partition the exact combine rules rely on no longer holds, so the
    caller must fall back to re-sharding the post-delta structure.
    """


class FormulaError(ReproError):
    """A formula is malformed or used outside its supported fragment."""


class ParseError(FormulaError):
    """The query parser could not parse the input text."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class LiberalVariableError(FormulaError):
    """The liberal-variable set of a formula is inconsistent.

    The liberal variables of a formula must always be a superset of its
    free variables and must be disjoint from its quantified variables.
    """


class NotPrenexError(FormulaError):
    """An operation required a prenex primitive positive formula."""


class ArityBoundError(FormulaError):
    """A bounded-arity requirement was violated."""


class DecompositionError(ReproError):
    """A tree decomposition is invalid or could not be constructed."""


class ClassificationError(ReproError):
    """The trichotomy classifier received an input it cannot classify."""


class OracleError(ReproError):
    """An oracle reduction failed, e.g. due to an inconsistent oracle."""


class DistinguishingStructureError(ReproError):
    """No distinguishing structure could be found within the search budget.

    The theory guarantees that a distinguishing structure exists for
    pairwise non-(semi-)counting-equivalent formulas; this error signals
    that the bounded search used by the implementation was exhausted
    before finding one, not that none exists.
    """


class PolicyRejection(ReproError):
    """An execution policy refused to run a query at plan time.

    Carries the trichotomy verdict and the structural measures that
    triggered the rejection, so serving layers can surface *why* the
    query was refused (HTTP 422) without ever executing it.
    """

    def __init__(
        self,
        message: str,
        verdict: str | None = None,
        measures: dict | None = None,
        policy: str | None = None,
    ):
        super().__init__(message)
        self.verdict = verdict
        self.measures = dict(measures or {})
        self.policy = policy


class BudgetExceeded(ReproError):
    """A cooperative cost budget ran out mid-execution.

    Raised from inside the hot loops (junction-tree DP, backtracking
    search, encoded-table joins) when the ambient
    :class:`repro.budget.CostBudget` exhausts its step count or
    deadline.  ``progress`` records how far execution got -- steps
    charged, elapsed seconds, and the limits -- so a serving layer can
    return partial-progress stats with its 504.  Instances pickle
    cleanly (attributes ride in ``__dict__``), so a budget abort inside
    a forked pool worker surfaces parent-side as itself.
    """

    def __init__(self, message: str, progress: dict | None = None):
        super().__init__(message)
        self.progress = dict(progress or {})


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class DatabaseError(ReproError):
    """The relational-database facade was used incorrectly."""
