#!/usr/bin/env python
"""The engine benchmark: cold vs. warm counting over realistic workloads.

Runs the scenario query mixes (social network, triple store, movies,
tenant network) and the generator query families (paths, stars, grids,
random UCQs) through two paths:

* **cold** -- a fresh compile for every call, i.e. what every
  ``count_answers`` call cost before :mod:`repro.engine` existed;
* **warm** -- one compile, then repeated execution of the cached plan
  (the engine's batch path).

On top of that, three data-side comparisons of the context/shard/pool
layers:

* **sharded counting** -- a 10^4+-tuple clustered structure counted
  whole in one process vs. sharded over all cores;
* **memoized semijoin ∃-elimination** -- a repeated-term ``ep-plus``
  plan executed with the context's semijoin evaluator + boundary memo
  vs. the per-term backtracking the executor used before contexts;
* **warm workers** -- repeated sharded queries on the 10^4-tuple
  structure through a throwaway pool per call (fork + context rebuild
  every time) vs. the engine's long-lived resident pool (fork once,
  worker-resident contexts keyed by structure fingerprint).

And two end-to-end serving measurements:

* **serving** -- concurrent client threads mixing ``/count`` and
  ``/count_sharded`` against a live :mod:`repro.serve` HTTP server
  with bounded admission; records client-observed p50/p99 latencies,
  throughput, and explicit 429 rejection counts;
* **registry_serving** -- the count-by-reference economics on the
  10^4-tuple clustered structure: sequential ``/count`` requests
  shipping the whole structure as JSON vs. the same counts via
  ``{"ref": ...}`` against the registered, pinned entry (target: the
  ref path wins client-observed p50 by >= 5x).

Plus one observability measurement:

* **tracing_overhead** -- the per-call p50 cost of span tracing
  (``repro.obs.trace``, on by default) on repeated sharded counting:
  traced vs. tracer-disabled-before-fork (target: < 5% overhead).

And the integer-encoding comparison:

* **columnar_core** -- repeated sequential sharded counting on
  string-element clustered structures at 10^4 / 10^5 / 10^6 tuples,
  object path vs. the ``array`` (pure python) and ``numpy`` encoded
  backends (target: >= 3x encoded-vs-object at >= 10^5 tuples), plus a
  shard-count sweep and per-scenario peak RSS.

And the live-update comparison:

* **live_updates** -- single-tuple ``StructureDelta`` + repeated query
  through ``Engine.apply_delta`` (chained fingerprints, migrated
  contexts and worker pins) vs. full re-registration of the rebuilt
  structure, on clustered graphs whose small label relation takes the
  update stream, at 10^4 and 10^5 tuples per encoding backend (target:
  >= 10x for the delta path at 10^5 tuples, counts identical to a
  from-scratch rebuild on every backend).

And the policy-routing comparison:

* **routing** -- the classification-driven routing economics on the
  matched frontier pairs of ``repro.workloads.frontier_query_pair``:
  warm-plan FPT counting under an armed ``budget`` policy vs. plain
  ``allow`` (target: <= 3% p50 overhead), client-observed p99 of the
  hard clique query coming back ``422`` over live HTTP under
  ``policy: "reject"`` (target: < 50ms), and the wall-clock of a
  ``budget`` abort on the hard query vs. its requested ``max_seconds``
  (target: within 2x).

And the distributed-cluster measurement:

* **cluster** -- ``count_sharded`` by reference through real TCP
  worker subprocesses, 1 vs. 3 workers on the 10^5-tuple clustered
  structure (cold routing/wire overhead vs. the local ``WorkerPool``
  fallback tier; no speedup claim on a 1-CPU runner), plus the
  worker-kill recovery
  latency: a 3-worker count timed unperturbed and again while the
  busiest worker is SIGKILLed mid-count (target: < 2x with >= 1
  reassignment).

Reports are **appended** to ``BENCH_engine.json`` as keyed entries under
``"runs"`` (key = version + mode), never overwriting earlier baselines;
a pre-``runs`` report found in the file is migrated to its own key, and
a run whose key already exists in the store **fails** instead of
clobbering it (pass ``--force`` to overwrite deliberately).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --only columnar_core                                 # one section
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import BudgetExceeded, Engine, __version__
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute, execute_sharded
from repro.engine.plan import compile_plan
from repro.engine.pool import WorkerPool
from repro.structures.random_gen import random_cluster_graph, random_graph
from repro.structures.sharding import shard_structure
from repro.workloads.generators import (
    example_4_2_query,
    example_5_21_query,
    grid_query,
    path_query,
    random_ucq,
    star_query,
    union_of_paths_query,
)
from repro.workloads.scenarios import all_scenarios


def _time(callable_, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        before = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - before)
    return best, result


def bench_scenarios(quick: bool) -> list[dict]:
    """Every scenario query, cold compile+execute vs. warm execute."""
    out: list[dict] = []
    for scenario in all_scenarios():
        structure = scenario.structure()
        engine = Engine()
        for name, query in scenario.queries.items():
            ep = query.to_ep()
            cold_seconds, count = _time(
                lambda: execute(compile_plan(ep), structure)
            )
            engine.count(ep, structure)  # warm the caches
            warm_seconds, warm_count = _time(
                lambda: engine.count(ep, structure), repeats=1 if quick else 3
            )
            assert count == warm_count, (scenario.name, name)
            out.append(
                {
                    "scenario": scenario.name,
                    "query": name,
                    "count": count,
                    "cold_seconds": cold_seconds,
                    "warm_seconds": warm_seconds,
                    "speedup": cold_seconds / warm_seconds if warm_seconds else None,
                }
            )
    return out


def bench_families(quick: bool) -> list[dict]:
    """Generator families over random graphs: compile cost vs. execute cost."""
    sizes = [10] if quick else [10, 20]
    families = {
        "path4_pairs": path_query(4, quantify_interior=True),
        "star4_centers": star_query(4, quantify_leaves=True),
        "grid2x3": grid_query(2, 3),
        "union_paths_123": union_of_paths_query([1, 2, 3]),
        "example_4_2": example_4_2_query(),
        "example_5_21": example_5_21_query(),
        "random_ucq": random_ucq(3, 4, 3, liberal_count=2, seed=7),
    }
    out: list[dict] = []
    for name, query in families.items():
        for size in sizes:
            structure = random_graph(size, 0.25, seed=size)
            compile_seconds, plan = _time(lambda: compile_plan(query))
            execute_seconds, count = _time(
                lambda: execute(plan, structure), repeats=1 if quick else 3
            )
            out.append(
                {
                    "family": name,
                    "structure_size": size,
                    "count": count,
                    "compile_seconds": compile_seconds,
                    "execute_seconds": execute_seconds,
                    "compile_share": compile_seconds
                    / (compile_seconds + execute_seconds),
                }
            )
    return out


def bench_repeated_query(quick: bool) -> dict:
    """The headline benchmark: one query served against many structures.

    Cold path: compile + execute per call (the pre-engine behavior of
    ``count_answers``).  Warm path: the engine's ``count_many`` with the
    plan compiled once.  This is the serving pattern the ROADMAP's
    traffic scenario cares about.
    """
    query = example_5_21_query()
    structure_count = 8 if quick else 24
    structures = [
        random_graph(8, 0.3, seed=seed) for seed in range(structure_count)
    ]

    def cold() -> list[int]:
        # A fresh compilation per call, exactly like the seed pipeline.
        return [execute(compile_plan(query), s) for s in structures]

    engine = Engine()
    engine.compile(query)  # warm the plan cache

    def warm() -> list[int]:
        return engine.count_many([query], structures, parallel=False)[0]

    cold_seconds, cold_counts = _time(cold)
    warm_seconds, warm_counts = _time(warm, repeats=1 if quick else 3)
    assert cold_counts == warm_counts
    return {
        "query": "example_5_21",
        "structures": structure_count,
        "structure_size": 8,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "counts_checksum": sum(cold_counts),
        "engine_stats": engine.stats().as_dict(),
    }


def bench_sharded_counting(quick: bool) -> dict:
    """Whole-structure single-process vs. sharded multi-core counting.

    The data is the clustered many-tenants shape (disjoint dense
    clusters; 10^4+ tuples on the full run), the query a quantified
    2-path.  All three measured paths return the identical count; the
    contest is wall time: sharding wins twice over, from the per-shard
    domains being tiny (the junction-tree DP is quadratic in the domain
    here) and from the shards saturating every core.
    """
    clusters, size, p = (8, 10, 0.3) if quick else (60, 16, 0.7)
    structure = random_cluster_graph(clusters, size, p, seed=7)
    plan = compile_plan(path_query(2, quantify_interior=True))
    sharded = shard_structure(structure, clusters)

    whole_seconds, whole_count = _time(
        lambda: execute(plan, structure, ExecutionContext(structure))
    )
    sharded_seq_seconds, sharded_seq_count = _time(
        lambda: execute_sharded(plan, sharded, parallel=False)
    )
    sharded_par_seconds, sharded_par_count = _time(
        lambda: execute_sharded(plan, sharded, parallel=True),
        repeats=1 if quick else 3,
    )
    assert whole_count == sharded_seq_count == sharded_par_count
    return {
        "query": "path2_pairs",
        "clusters": clusters,
        "cluster_size": size,
        "tuples": structure.total_tuples,
        "universe": len(structure.universe),
        "count": whole_count,
        "whole_single_process_seconds": whole_seconds,
        "sharded_sequential_seconds": sharded_seq_seconds,
        "sharded_parallel_seconds": sharded_par_seconds,
        "sharded_speedup": (
            whole_seconds / sharded_par_seconds if sharded_par_seconds else None
        ),
    }


def bench_semijoin_memo(quick: bool) -> dict:
    """Memoized semijoin ∃-elimination vs. per-term backtracking.

    The query is a union of path lengths, whose ``ep-plus`` expansion
    repeats each path's ∃-component across the inclusion-exclusion
    terms; the context memo computes each once (by semijoin reduction),
    where the pre-context executor re-ran a backtracking search per
    term.
    """
    clusters, size, p = (4, 8, 0.3) if quick else (8, 10, 0.5)
    structure = random_cluster_graph(clusters, size, p, seed=11)
    plan = compile_plan(union_of_paths_query([2, 3]))

    def memoized() -> int:
        return execute(plan, structure, ExecutionContext(structure))

    def backtracking() -> int:
        return execute(
            plan, structure, ExecutionContext(structure, semijoin=False, memoize=False)
        )

    memo_seconds, memo_count = _time(memoized, repeats=1 if quick else 3)
    # The backtracking baseline is the slow side by construction (it is
    # cubic in the universe here); one measurement is plenty.
    back_seconds, back_count = _time(backtracking)
    assert memo_count == back_count
    return {
        "query": "union_paths_23",
        "tuples": structure.total_tuples,
        "universe": len(structure.universe),
        "count": memo_count,
        "terms": len(plan.terms),
        "semijoin_memo_seconds": memo_seconds,
        "backtracking_seconds": back_seconds,
        "speedup": back_seconds / memo_seconds if memo_seconds else None,
    }


def bench_warm_workers(quick: bool) -> dict:
    """Repeated sharded queries: throwaway pools vs. the resident pool.

    The serving pattern: the same query arrives again and again for the
    same 10^4-tuple clustered structure.  The *cold* path is what every
    call paid before PR 3 -- a fresh pool (fork) per call, every worker
    rebuilding each shard's execution context (index + boundary memos)
    from scratch.  The *warm* path is the engine's long-lived
    :class:`~repro.engine.pool.WorkerPool`: forked once, with the
    contexts resident in the workers keyed by structure fingerprint, so
    repeat calls ship fingerprint-matched jobs onto hot state.
    """
    clusters, size, p = (8, 10, 0.3) if quick else (60, 16, 0.7)
    repeats = 2 if quick else 5
    structure = random_cluster_graph(clusters, size, p, seed=7)
    plan = compile_plan(path_query(2, quantify_interior=True))
    sharded = shard_structure(structure, clusters)

    def cold_pool_calls() -> int:
        total = 0
        for _ in range(repeats):
            total += execute_sharded(plan, sharded, parallel=True)
        return total

    pool = WorkerPool(context_capacity=max(8, clusters))
    try:
        warmup = execute_sharded(plan, sharded, parallel=True, pool=pool)

        def resident_pool_calls() -> int:
            total = 0
            for _ in range(repeats):
                total += execute_sharded(plan, sharded, parallel=True, pool=pool)
            return total

        cold_seconds, cold_total = _time(cold_pool_calls)
        warm_seconds, warm_total = _time(resident_pool_calls)
        assert cold_total == warm_total == warmup * repeats
        hits, misses = pool.worker_context_hits, pool.worker_context_misses
    finally:
        pool.close()
    return {
        "query": "path2_pairs",
        "clusters": clusters,
        "tuples": structure.total_tuples,
        "universe": len(structure.universe),
        "repeats": repeats,
        "count": warmup,
        "cold_pool_seconds": cold_seconds,
        "cold_pool_seconds_per_call": cold_seconds / repeats,
        "resident_pool_seconds": warm_seconds,
        "resident_pool_seconds_per_call": warm_seconds / repeats,
        "worker_context_hits": hits,
        "worker_context_misses": misses,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
    }


def bench_serving(quick: bool) -> dict:
    """Concurrent load through the live HTTP serving front end.

    Boots a real :class:`~repro.serve.httpd.CountingServer` (ephemeral
    port, bounded admission) and hammers it with client threads mixing
    ``/count`` and ``/count_sharded`` on a clustered structure.  The
    interesting numbers are the client-observed p50/p99 latencies, the
    count of explicit 429 rejections (admission control doing its job
    under a burst that exceeds ``max_in_flight + max_queue``), and the
    server-side histogram from ``/metrics`` agreeing with the client
    view.  Shutdown is graceful and must leave zero child processes.
    """
    import json as json_
    import multiprocessing
    import threading
    import urllib.error
    import urllib.request

    from repro.serve import (
        BackgroundServer,
        CountingServer,
        CountingService,
        ServiceConfig,
    )

    clients, per_client = (4, 6) if quick else (8, 24)
    clusters, size, p = (4, 6, 0.4) if quick else (8, 8, 0.5)
    structure = random_cluster_graph(clusters, size, p, seed=13)
    structure_json = {
        "relations": {
            name: [list(row) for row in sorted(tuples)]
            for name, tuples in structure.relations.items()
        }
    }
    query = "exists z. (E(x, z) & E(z, y))"
    config = ServiceConfig(
        max_in_flight=4, max_queue=6, request_timeout_seconds=30
    )
    server = CountingServer(
        service=CountingService(config=config, owns_engine=True), port=0
    )

    latencies: list[float] = []
    outcomes = {"completed": 0, "rejected": 0, "failed": 0}
    lock = threading.Lock()

    def client(worker: int) -> None:
        for round_ in range(per_client):
            if (worker + round_) % 2:
                path, payload = "/count_sharded", {
                    "query": query,
                    "structure": structure_json,
                    "shard_count": clusters,
                    "parallel": False,
                }
            else:
                path, payload = "/count", {
                    "query": query,
                    "structure": structure_json,
                }
            request = urllib.request.Request(
                f"{base}{path}",
                data=json_.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            before = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    json_.load(response)
            except urllib.error.HTTPError as error:
                with lock:
                    outcomes["rejected" if error.code == 429 else "failed"] += 1
                continue
            except Exception:
                # Connection-level failures (URLError, resets) must be
                # counted, not kill the client thread and skew the
                # recorded sample.
                with lock:
                    outcomes["failed"] += 1
                continue
            elapsed = time.perf_counter() - before
            with lock:
                latencies.append(elapsed)
                outcomes["completed"] += 1

    # Burst phase: everyone fires one request at the same instant, at
    # 3x the admission capacity, so saturation must answer with
    # explicit 429s (never a collapsing queue).
    burst_size = 3 * (config.max_in_flight + config.max_queue)
    burst_outcomes = {"completed": 0, "rejected": 0, "failed": 0}
    burst_barrier = threading.Barrier(burst_size)

    def burst_client() -> None:
        request = urllib.request.Request(
            f"{base}/count",
            data=json_.dumps(
                {"query": query, "structure": structure_json}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        burst_barrier.wait()
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                json_.load(response)
        except urllib.error.HTTPError as error:
            with lock:
                burst_outcomes[
                    "rejected" if error.code == 429 else "failed"
                ] += 1
            return
        except Exception:
            with lock:
                burst_outcomes["failed"] += 1
            return
        with lock:
            burst_outcomes["completed"] += 1

    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        started = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - started

        threads = [
            threading.Thread(target=burst_client) for _ in range(burst_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        metrics = json_.loads(
            urllib.request.urlopen(f"{base}/metrics", timeout=60).read()
        )
    lingering = multiprocessing.active_children()

    latencies.sort()

    def percentile(q: float) -> float | None:
        if not latencies:
            return None
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    endpoints = metrics["service"]["endpoints"]
    return {
        "clients": clients,
        "requests_per_client": per_client,
        "tuples": structure.total_tuples,
        "max_in_flight": config.max_in_flight,
        "max_queue": config.max_queue,
        "wall_seconds": wall_seconds,
        "throughput_rps": (
            outcomes["completed"] / wall_seconds if wall_seconds else None
        ),
        "completed": outcomes["completed"],
        "rejected_429": outcomes["rejected"],
        "failed": outcomes["failed"],
        "burst_size": burst_size,
        "burst_completed": burst_outcomes["completed"],
        "burst_rejected_429": burst_outcomes["rejected"],
        "burst_failed": burst_outcomes["failed"],
        "latency_p50_seconds": percentile(0.50),
        "latency_p90_seconds": percentile(0.90),
        "latency_p99_seconds": percentile(0.99),
        "server_rejected": sum(e["rejected"] for e in endpoints.values()),
        "server_completed": sum(e["completed"] for e in endpoints.values()),
        "server_count_p99_seconds": endpoints["count"]["latency"]["p99_seconds"],
        "engine_count_calls": metrics["engine"]["count_calls"],
        "lingering_children": len(lingering),
    }


def bench_registry_serving(quick: bool) -> dict:
    """Ship-the-data ``/count`` vs. count-by-reference on large data.

    The workload the registry exists for: the same cheap query arrives
    again and again for the same large structure.  The *inline* client
    re-ships the 10^4-tuple structure as JSON with every request and
    pays transfer + parse + validation + content hashing server-side;
    the *ref* client registered the structure once (``PUT
    /structures/...``, pinned, shard plan precomputed) and sends a
    few dozen bytes naming it.  Both count through the identical
    engine path afterwards, so the measured gap is purely the
    data-shipping overhead the registry removes.  Requests run
    sequentially on one connection-per-request client, so the p50s are
    honest single-request latencies, not queueing artifacts.
    """
    import json as json_
    import multiprocessing
    import urllib.request

    from repro.serve import (
        BackgroundServer,
        CountingServer,
        CountingService,
        ServiceConfig,
    )

    clusters, size, p = (8, 10, 0.3) if quick else (60, 16, 0.7)
    requests_per_mode = 6 if quick else 40
    structure = random_cluster_graph(clusters, size, p, seed=7)
    structure_json = {
        "relations": {
            name: [list(row) for row in sorted(tuples)]
            for name, tuples in structure.relations.items()
        }
    }
    query = "E(x, y)"
    config = ServiceConfig(max_in_flight=4, max_queue=8, request_timeout_seconds=60)
    server = CountingServer(
        service=CountingService(config=config, owns_engine=True), port=0
    )

    def measure(payload: dict, repeats: int) -> tuple[list[float], int]:
        body = json_.dumps(payload).encode()
        latencies = []
        count = None
        for _ in range(repeats):
            request = urllib.request.Request(
                f"{base}/count",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            before = time.perf_counter()
            with urllib.request.urlopen(request, timeout=60) as response:
                count = json_.load(response)["count"]
            latencies.append(time.perf_counter() - before)
        latencies.sort()
        assert count is not None
        return latencies, count

    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        inline_payload = {"query": query, "structure": structure_json}
        ref_payload = {"query": query, "structure": {"ref": "bench"}}
        inline_bytes = len(json_.dumps(inline_payload).encode())
        ref_bytes = len(json_.dumps(ref_payload).encode())

        register_request = urllib.request.Request(
            f"{base}/structures/bench",
            data=json_.dumps(
                {"structure": structure_json, "pin": True,
                 "shard_count": clusters}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="PUT",
        )
        before = time.perf_counter()
        with urllib.request.urlopen(register_request, timeout=120) as response:
            entry = json_.load(response)
        register_seconds = time.perf_counter() - before

        # One warmup each so neither mode pays first-request one-time
        # costs (plan compile, context build) inside its sample.
        measure(inline_payload, 1)
        measure(ref_payload, 1)
        inline_latencies, inline_count = measure(
            inline_payload, requests_per_mode
        )
        ref_latencies, ref_count = measure(ref_payload, requests_per_mode)
        assert inline_count == ref_count

        metrics = json_.loads(
            urllib.request.urlopen(f"{base}/metrics", timeout=60).read()
        )
    lingering = multiprocessing.active_children()

    def p50(latencies: list[float]) -> float:
        return latencies[len(latencies) // 2]

    inline_p50, ref_p50 = p50(inline_latencies), p50(ref_latencies)
    return {
        "query": query,
        "tuples": structure.total_tuples,
        "universe": len(structure.universe),
        "count": ref_count,
        "requests_per_mode": requests_per_mode,
        "inline_request_bytes": inline_bytes,
        "ref_request_bytes": ref_bytes,
        "register_seconds": register_seconds,
        "registered_resident_bytes": entry["resident_bytes"],
        "inline_p50_seconds": inline_p50,
        "inline_p99_seconds": inline_latencies[-1],
        "ref_p50_seconds": ref_p50,
        "ref_p99_seconds": ref_latencies[-1],
        "ref_speedup_p50": inline_p50 / ref_p50 if ref_p50 else None,
        "registry_hits": metrics["engine"]["registry_hits"],
        "lingering_children": len(lingering),
    }


def bench_tracing_overhead(quick: bool) -> dict:
    """Per-call cost of span tracing on the sharded counting path.

    Tracing is on by default, so its overhead is the one observability
    cost every request pays.  This runs the same repeated
    ``count_sharded`` workload twice -- once traced, once with the
    tracer disabled *before* the engine forks its pool (workers inherit
    the flag at fork, so flipping it after would only silence the
    parent) -- and compares per-call p50s.  The acceptance bar is
    under 5% overhead at p50.
    """
    from statistics import median

    from repro.obs.trace import get_tracer

    clusters, size, p = (8, 10, 0.3) if quick else (60, 16, 0.7)
    calls = 6 if quick else 20
    structure = random_cluster_graph(clusters, size, p, seed=7)
    query = path_query(2, quantify_interior=True)
    tracer = get_tracer()

    def measure() -> tuple[list[float], int]:
        engine = Engine()
        try:
            count = engine.count_sharded(
                query, structure, shard_count=clusters, parallel=True
            )  # warm the plan, contexts, and pool before timing
            latencies = []
            for _ in range(calls):
                before = time.perf_counter()
                again = engine.count_sharded(
                    query, structure, shard_count=clusters, parallel=True
                )
                latencies.append(time.perf_counter() - before)
                assert again == count
        finally:
            engine.close()
        return sorted(latencies), count

    was_enabled = tracer.enabled
    try:
        tracer.set_enabled(True)
        traced, traced_count = measure()
        tracer.set_enabled(False)
        untraced, untraced_count = measure()
    finally:
        tracer.set_enabled(None if was_enabled else False)
    assert traced_count == untraced_count
    traced_p50, untraced_p50 = median(traced), median(untraced)
    return {
        "query": "path2_pairs",
        "tuples": structure.total_tuples,
        "universe": len(structure.universe),
        "shards": clusters,
        "calls": calls,
        "count": traced_count,
        "traced_p50_seconds": traced_p50,
        "untraced_p50_seconds": untraced_p50,
        "overhead_pct": (
            (traced_p50 - untraced_p50) / untraced_p50 * 100
            if untraced_p50
            else None
        ),
    }


def _string_cluster_graph(
    clusters: int, cluster_size: int, p: float, seed: int
):
    """A clustered graph relabeled to string elements.

    String elements are the realistic (and adversarial-for-the-object-
    path) case: every object-path join probe hashes and compares
    strings, while the encoded backends intern them to dense ints once
    per context.
    """
    from repro.structures.structure import Structure

    raw = random_cluster_graph(clusters, cluster_size, p, seed=seed)
    names = {element: f"v{element}" for element in raw.universe}
    return Structure(
        raw.signature,
        [names[element] for element in raw.universe],
        {
            name: {tuple(names[v] for v in row) for row in rows}
            for name, rows in raw.relations.items()
        },
    )


def bench_columnar_core(quick: bool) -> dict:
    """Object path vs. integer-encoded backends on sharded counting.

    The workload is the serving shape the encoding targets: the same
    quantified 2-path query arrives repeatedly for the same clustered
    structure and is answered by sequential sharded execution, so every
    call pays the full per-request cost (context build + per-shard
    junction-tree DP) on whichever representation the backend picks.
    Scenarios cover 10^4 / 10^5 / 10^6 tuples (10^4 only under
    ``--quick``); every backend must return the identical count, and
    the acceptance bar is >= 3x encoded-vs-object at >= 10^5 tuples.
    Peak RSS (``ru_maxrss``) is recorded after each backend's runs, and
    a shard-count sweep on the first scenario shows how the gap scales
    with shard granularity.

    Scale comes from shard *count*, not shard size: clusters stay at
    the ~40-node scale where elimination runs through the semijoin /
    table-DP pipeline. Much larger clusters trip the semijoin blowup
    guard on every backend, and in that backtracking regime the
    backends converge instead of separating.
    """
    import resource

    from repro.structures.encoding import numpy_available

    backends = ["object", "array"] + (["numpy"] if numpy_available() else [])
    scenarios = (
        [("1e4", 60, 16, 0.7, 2)]
        if quick
        else [
            ("1e4", 60, 16, 0.7, 3),
            ("1e5", 100, 40, 0.65, 2),
            ("1e6", 1000, 40, 0.65, 1),
        ]
    )
    plan = compile_plan(path_query(2, quantify_interior=True))

    def peak_rss_kb() -> int:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    rows: list[dict] = []
    for label, clusters, size, p, repeats in scenarios:
        structure = _string_cluster_graph(clusters, size, p, seed=7)
        sharded = shard_structure(structure, clusters)
        row: dict = {
            "scenario": label,
            "clusters": clusters,
            "cluster_size": size,
            "tuples": structure.total_tuples,
            "universe": len(structure.universe),
            "shard_count": clusters,
            "repeats": repeats,
            "backends": {},
        }
        counts = set()
        for backend in backends:
            seconds, count = _time(
                lambda: execute_sharded(
                    plan, sharded, parallel=False, encoding=backend
                ),
                repeats=repeats,
            )
            counts.add(count)
            row["backends"][backend] = {
                "seconds_per_call": seconds,
                "count": count,
                "peak_rss_kb": peak_rss_kb(),
            }
        assert len(counts) == 1, (label, row["backends"])
        row["count"] = counts.pop()
        object_seconds = row["backends"]["object"]["seconds_per_call"]
        for backend in backends[1:]:
            encoded_seconds = row["backends"][backend]["seconds_per_call"]
            row["backends"][backend]["speedup_vs_object"] = (
                object_seconds / encoded_seconds if encoded_seconds else None
            )
        row["best_encoded_speedup"] = max(
            row["backends"][b]["speedup_vs_object"] or 0.0
            for b in backends[1:]
        )
        rows.append(row)

    # Shard-count sweep on the first scenario: the encoded win must not
    # be an artifact of one shard granularity.
    label, clusters, size, p, _ = scenarios[0]
    structure = _string_cluster_graph(clusters, size, p, seed=7)
    sweep_backend = backends[-1]  # the best encoded backend available
    sweep: list[dict] = []
    for shard_count in sorted({max(1, clusters // 8), clusters // 2, clusters}):
        sharded = shard_structure(structure, shard_count)
        entry: dict = {"scenario": label, "shard_count": shard_count}
        for backend in ("object", sweep_backend):
            seconds, count = _time(
                lambda: execute_sharded(
                    plan, sharded, parallel=False, encoding=backend
                )
            )
            entry[f"{backend}_seconds"] = seconds
            entry.setdefault("count", count)
            assert entry["count"] == count
        entry["speedup"] = (
            entry["object_seconds"] / entry[f"{sweep_backend}_seconds"]
            if entry[f"{sweep_backend}_seconds"]
            else None
        )
        sweep.append(entry)

    return {
        "query": "path2_pairs",
        "backends": backends,
        "scenarios": rows,
        "shard_sweep": {"backend": sweep_backend, "rows": sweep},
        "best_encoded_speedup": max(r["best_encoded_speedup"] for r in rows),
    }


def _labeled_cluster_graph(clusters: int, cluster_size: int, p: float, seed: int):
    """A string-element clustered graph plus a small unary ``L`` relation.

    This is the live-update workload shape: the bulky edge relation
    ``E`` is effectively static while the small label relation ``L`` is
    the one the update stream touches.  Fine-grained invalidation is
    exactly what separates the paths here -- an ``L``-only delta leaves
    every memo whose read set is ``E`` alone (and every untouched
    shard's counts) warm, where re-registration rebuilds the world.
    """
    from repro.logic.signatures import RelationSymbol, Signature
    from repro.structures.structure import Structure

    raw = random_cluster_graph(clusters, cluster_size, p, seed=seed)
    names = {element: f"v{element}" for element in raw.universe}
    universe = [names[element] for element in raw.universe]
    labels = {(v,) for i, v in enumerate(sorted(universe)) if i % 3 == 0}
    return Structure(
        Signature(list(raw.signature) + [RelationSymbol("L", 1)]),
        universe,
        {
            "E": {tuple(names[v] for v in row) for row in raw.relations["E"]},
            "L": labels,
        },
    )


def bench_live_updates(quick: bool) -> dict:
    """Single-tuple deltas vs. full re-registration on a live entry.

    The serving shape live updates target: a large structure is
    registered and pinned (worker-resident shard contexts), a repeated
    query arrives continuously, and a small relation changes one tuple
    at a time.  The measured unit is one update followed by the query --
    via ``Engine.apply_delta`` (chained fingerprint, routed sub-deltas,
    migrated contexts and worker pins; only state whose read set the
    delta touched is dropped) vs. via ``register_structure`` with the
    rebuilt structure (full content hash, fresh shard plan, every
    worker context rebuilt by the pin broadcast, every memo cold).
    Both paths are charged for producing the new validated structure:
    the delta path builds it incrementally inside ``apply_delta``, so
    the re-registration path constructs its replacement ``Structure``
    from raw universe/relation inputs inside the timed loop.

    Scenarios cover 10^4 and 10^5 tuples (10^4 only under ``--quick``)
    per encoding backend.  Both paths must produce identical counts
    after every update, and the final count is checked against an
    engine that counts the rebuilt-from-scratch structure and never saw
    a delta.  The acceptance bar is >= 10x for the delta path at 10^5
    tuples.
    """
    from repro.structures.delta import StructureDelta
    from repro.structures.encoding import numpy_available
    from repro.structures.structure import Structure

    backends = ["object", "array"] + (["numpy"] if numpy_available() else [])
    scenarios = (
        [("1e4", 60, 16, 0.7, 3)]
        if quick
        else [("1e4", 60, 16, 0.7, 3), ("1e5", 100, 40, 0.65, 3)]
    )
    query = "L(x) & exists z. (E(x, z) & E(z, y))"

    rows: list[dict] = []
    for label, clusters, size, p, updates in scenarios:
        base = _labeled_cluster_graph(clusters, size, p, seed=11)
        shards = max(2, clusters // 2)
        # Each update labels one more existing element: a genuine
        # single-tuple insert that changes the count (the new label's
        # 2-paths start counting), touches only the small relation, and
        # stays within the element's component (no re-shard).
        unlabeled = [
            v for i, v in enumerate(sorted(base.universe)) if i % 3 != 0
        ]
        deltas = [
            StructureDelta(inserts={"L": [(unlabeled[i],)]})
            for i in range(updates)
        ]
        rebuilt = [base]
        for delta in deltas:
            rebuilt.append(rebuilt[-1].apply_delta(delta))
        # Raw inputs for the re-registration path: it pays for building
        # the validated replacement Structure inside the timed loop,
        # mirroring the incremental build apply_delta is charged for.
        raw_inputs = [
            (
                structure.signature,
                sorted(structure.universe, key=repr),
                {name: set(ts) for name, ts in structure.relations.items()},
            )
            for structure in rebuilt[1:]
        ]

        def warmed_engine(backend: str) -> Engine:
            # One worker, warmed until the pinned shard contexts and
            # their memos are resident, so each measured update starts
            # from the steady serving state.  A single worker sees
            # every shard each round, so residency converges quickly;
            # it also keeps warmth deterministic on small hosts, where
            # a second worker never converges (the warm one drains the
            # job queue first).
            engine = Engine(processes=1, encoding=backend)
            engine.register_structure(
                "live", base, pin=True, shard_count=shards
            )
            for _ in range(3):
                engine.count_sharded(query, "live", parallel=True)
            return engine

        row: dict = {
            "scenario": label,
            "tuples": base.total_tuples,
            "universe": len(base.universe),
            "shard_count": shards,
            "updates": updates,
            "backends": {},
        }
        final_counts = set()
        delta_total = rereg_total = 0.0
        for backend in backends:
            engine = warmed_engine(backend)
            steady_seconds, _ = _time(
                lambda: engine.count_sharded(query, "live", parallel=True)
            )
            delta_counts = []
            before = time.perf_counter()
            for delta in deltas:
                engine.apply_delta("live", delta)
                delta_counts.append(
                    engine.count_sharded(query, "live", parallel=True)
                )
            delta_seconds = (time.perf_counter() - before) / updates
            engine.close()

            engine = warmed_engine(backend)
            rereg_counts = []
            before = time.perf_counter()
            for signature, universe, relations in raw_inputs:
                structure = Structure(signature, universe, relations)
                engine.register_structure(
                    "live", structure, pin=True, shard_count=shards
                )
                rereg_counts.append(
                    engine.count_sharded(query, "live", parallel=True)
                )
            rereg_seconds = (time.perf_counter() - before) / updates
            engine.close()

            assert delta_counts == rereg_counts, (
                label, backend, delta_counts, rereg_counts,
            )
            # From-scratch check: an engine that never saw a delta must
            # count the fully rebuilt structure identically.
            fresh = Engine(processes=1, encoding=backend)
            scratch = fresh.count_sharded(
                query, rebuilt[-1], shard_count=shards, parallel=False
            )
            fresh.close()
            assert delta_counts[-1] == scratch, (
                label, backend, delta_counts[-1], scratch,
            )
            final_counts.add(scratch)

            delta_total += delta_seconds * updates
            rereg_total += rereg_seconds * updates
            row["backends"][backend] = {
                "steady_count_seconds": steady_seconds,
                "delta_update_seconds": delta_seconds,
                "rereg_update_seconds": rereg_seconds,
                "speedup": (
                    rereg_seconds / delta_seconds if delta_seconds else None
                ),
                "counts": delta_counts,
            }
        assert len(final_counts) == 1, (label, row["backends"])
        row["final_count"] = final_counts.pop()
        row["speedup"] = delta_total and rereg_total / delta_total
        rows.append(row)

    return {
        "query": "labeled_path2_pairs",
        "backends": backends,
        "scenarios": rows,
        "speedup_at_largest": rows[-1]["speedup"],
    }


def append_report(
    output: Path, key: str, report: dict, force: bool = False
) -> dict:
    """Append ``report`` under ``key`` in the keyed benchmark store.

    Earlier entries are preserved; a legacy flat report (pre-``runs``
    format) already in the file is migrated under its own key instead of
    being clobbered, and re-running an already-recorded key raises
    unless ``force`` says the overwrite is deliberate.
    """
    store: dict = {"benchmark": "engine", "runs": {}}
    if output.exists():
        try:
            existing = json.loads(output.read_text())
        except json.JSONDecodeError:
            # Don't silently destroy an unreadable store: park it next
            # to the output so earlier baselines stay recoverable.
            backup = output.with_suffix(output.suffix + ".corrupt")
            backup.write_text(output.read_text())
            print(f"warning: {output} is not valid JSON; preserved as {backup}")
            existing = {}
        if isinstance(existing, dict) and isinstance(existing.get("runs"), dict):
            store = existing
        elif isinstance(existing, dict) and existing:
            # The ":legacy" suffix keeps a migrated flat report from
            # colliding with (and being clobbered by) a same-version
            # keyed run.
            legacy_key = (
                f"{existing.get('version', 'unknown')}:"
                f"{'quick' if existing.get('quick') else 'full'}:legacy"
            )
            store["runs"][legacy_key] = existing
    if key in store["runs"] and not force:
        raise SystemExit(
            f"error: run key {key!r} already exists in {output}; "
            "a re-run would clobber the recorded baseline "
            "(pass --force to overwrite deliberately)"
        )
    store["runs"][key] = report
    return store


def bench_routing(quick: bool) -> dict:
    """The classification-driven routing economics on frontier pairs.

    Three claims, measured on the matched pairs of
    :func:`repro.workloads.frontier_query_pair` (a path and a clique
    over the same liberal variables -- verdicts FPT vs.
    p-#Clique-hard):

    * an armed ``budget`` policy costs almost nothing on the tractable
      side: warm-plan counting of the FPT query under
      ``{"mode": "budget"}`` vs. plain ``allow`` (target: <= 3% p50
      overhead -- the cooperative charges are the only difference);
    * rejecting the hard side is plan-lookup cheap: client-observed
      p99 of ``/count`` answering ``422`` for the clique query under
      ``policy: "reject"`` over live HTTP (target: < 50ms);
    * a budget abort lands near the requested budget: wall-clock of a
      ``budget`` abort on the hard query vs. its ``max_seconds``
      (target: within 2x).

    Every context is warmed with a *different* query before the timed
    call: repeated identical counts are context-memo hits that never
    reach the charged loops, which would measure the overhead of a
    dictionary lookup instead of the budget.
    """
    import json as json_
    import urllib.error
    import urllib.request

    from repro.serve import (
        BackgroundServer,
        CountingServer,
        CountingService,
        ServiceConfig,
    )
    from repro.workloads.generators import clique_query, frontier_query_pair

    tractable, hard = frontier_query_pair(4)
    structures = [
        random_graph(14 if quick else 26, 0.35, seed=100 + i)
        for i in range(8 if quick else 24)
    ]

    def measure_counts(policy) -> tuple[list[float], list[int]]:
        engine = Engine(policy=policy)
        # Warm the plan cache off the clock, on a structure that is
        # not part of the sample.
        engine.count(str(tractable), random_graph(8, 0.4, seed=99))
        latencies, counts = [], []
        for structure in structures:
            engine.count("E(x, y)", structure)  # context warm, memo cold
            seconds, value = _time(
                lambda s=structure: engine.count(str(tractable), s)
            )
            latencies.append(seconds)
            counts.append(value)
        latencies.sort()
        return latencies, counts

    armed_budget = {"mode": "budget", "max_steps": 10**12, "max_seconds": 600}
    allow_latencies, allow_counts = measure_counts("allow")
    budget_latencies, budget_counts = measure_counts(armed_budget)
    assert allow_counts == budget_counts
    allow_p50 = allow_latencies[len(allow_latencies) // 2]
    budget_p50 = budget_latencies[len(budget_latencies) // 2]
    overhead_pct = (
        (budget_p50 - allow_p50) / allow_p50 * 100 if allow_p50 else None
    )

    # -- hard-side rejection over live HTTP ----------------------------
    reject_requests = 10 if quick else 50
    reject_graph = random_graph(30, 0.4, seed=5)
    reject_payload = json_.dumps(
        {
            "query": str(hard),
            "structure": {
                "relations": {
                    "E": [list(row) for row in sorted(reject_graph.relations["E"])]
                }
            },
            "policy": "reject",
        }
    ).encode()
    config = ServiceConfig(
        max_in_flight=2, max_queue=4, request_timeout_seconds=60
    )
    server = CountingServer(
        service=CountingService(config=config, owns_engine=True), port=0
    )
    reject_latencies: list[float] = []
    verdicts = set()
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        def reject_once() -> float:
            request = urllib.request.Request(
                f"{base}/count",
                data=reject_payload,
                headers={"Content-Type": "application/json"},
            )
            before = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=60):
                    raise AssertionError("hard query was not rejected")
            except urllib.error.HTTPError as error:
                elapsed = time.perf_counter() - before
                assert error.code == 422, error.code
                verdicts.add(json_.load(error)["verdict"])
            return elapsed

        reject_once()  # warmup: pays the one-time compile + classify
        for _ in range(reject_requests):
            reject_latencies.append(reject_once())
    assert verdicts == {"SHARP_CLIQUE_HARD"}
    reject_latencies.sort()

    # -- budget abort vs. the requested budget -------------------------
    abort_budget_seconds = 0.2 if quick else 0.5
    abort_engine = Engine(
        policy={"mode": "budget", "max_seconds": abort_budget_seconds}
    )
    monster = clique_query(5)
    abort_graph = random_graph(60, 0.5, seed=11)
    abort_engine.compile(str(monster))  # classification off the clock
    before = time.perf_counter()
    try:
        abort_engine.count(str(monster), abort_graph)
        raise AssertionError("budget never tripped on the hard query")
    except BudgetExceeded:
        abort_seconds = time.perf_counter() - before
    abort_ratio = abort_seconds / abort_budget_seconds

    return {
        "structures": len(structures),
        "tractable_query": str(tractable),
        "hard_query_atoms": len(hard.atoms()),
        "allow_p50_seconds": allow_p50,
        "budget_p50_seconds": budget_p50,
        "budget_overhead_pct": overhead_pct,
        "reject_requests": reject_requests,
        "reject_p50_seconds": reject_latencies[len(reject_latencies) // 2],
        "reject_p99_seconds": reject_latencies[-1],
        "abort_budget_seconds": abort_budget_seconds,
        "abort_seconds": abort_seconds,
        "abort_ratio": abort_ratio,
    }


def bench_cluster(quick: bool) -> dict:
    """Distributed counting: 1 vs. 3 workers, plus kill recovery.

    Two measurements against real ``python -m repro.cluster.worker``
    subprocesses over TCP:

    * **routing cost** -- ``count_sharded`` by reference on the
      10^5-tuple clustered structure (10^4 under ``--quick``) through
      a 1-worker and a 3-worker cluster, vs. the engine's own local
      ``WorkerPool`` fallback tier.  Cold calls (fresh contexts) bound
      the placement + wire + pickle overhead of shipping shard units
      out of process; warm calls show the worker-resident context
      memo.  On a 1-CPU runner the workers share the core, so this is
      deliberately *not* a parallel-speedup claim -- the check is that
      counts stay bit-identical and cold overhead stays small;
    * **kill recovery** -- the headline number.  A 3-worker cluster
      with ``delay_execute`` fault-widened jobs is timed unperturbed,
      then timed again while the busiest worker is SIGKILLed
      mid-count; in-flight units fail over to surviving replicas
      (replication=2) and the target is a perturbed/unperturbed ratio
      under 2x with at least one reassignment.
    """
    import os as os_
    import signal
    import subprocess
    import threading

    from repro.cluster import ClusterCoordinator

    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    query = "exists z. (E(x, z) & E(z, y))"

    def worker_env(faults: str | None) -> dict:
        env = dict(os_.environ)
        env["PYTHONPATH"] = src_dir + (
            os_.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if faults is not None:
            env["REPRO_FAULTS"] = faults
        else:
            env.pop("REPRO_FAULTS", None)
        return env

    def spawn(coordinator, count: int, faults: str | None = None) -> list:
        host, port = coordinator.address
        return [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.worker",
                    "--connect",
                    f"{host}:{port}",
                    "--capacity",
                    "2",
                    "--name",
                    f"bench{index}",
                ],
                env=worker_env(faults),
            )
            for index in range(count)
        ]

    def reap(processes) -> None:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=15)

    # -- routing cost: local pool vs. 1-worker vs. 3-worker ------------
    clusters, size, p = (60, 16, 0.7) if quick else (100, 40, 0.65)
    shard_count = 4 if quick else 8
    warm_repeats = 1 if quick else 3
    structure = random_cluster_graph(clusters, size, p, seed=7)
    rows: dict = {}

    # The baseline tier: the engine's own local WorkerPool fallback,
    # counting the identical registered, pinned, sharded entry.
    with Engine(processes=1) as engine:
        engine.register_structure(
            "net", structure, pin=True, shard_count=shard_count
        )
        local_cold, expected = _time(
            lambda: engine.count_sharded(query, "net")
        )
        local_warm, count = _time(
            lambda: engine.count_sharded(query, "net"),
            repeats=warm_repeats,
        )
        assert count == expected

    for worker_count in (1, 3):
        with ClusterCoordinator(
            replication=min(2, worker_count)
        ) as coordinator:
            workers = spawn(coordinator, worker_count)
            try:
                coordinator.wait_for_workers(worker_count, timeout=60)
                with Engine(processes=1) as engine:
                    engine.attach_cluster(coordinator)
                    engine.register_structure(
                        "net", structure, pin=True, shard_count=shard_count
                    )
                    cold, count = _time(
                        lambda: engine.count_sharded(query, "net")
                    )
                    assert count == expected, (count, expected)
                    warm, count = _time(
                        lambda: engine.count_sharded(query, "net"),
                        repeats=warm_repeats,
                    )
                    assert count == expected
                    stats = coordinator.stats_snapshot()
                    rows[f"workers_{worker_count}"] = {
                        "cold_seconds": cold,
                        "warm_seconds_per_call": warm,
                        "cold_overhead_vs_local": (
                            cold / local_cold if local_cold else None
                        ),
                        "jobs_completed": stats["jobs_completed"],
                        "jobs_failed": stats["jobs_failed"],
                        "worker_context_hits": stats["worker_context_hits"],
                    }
            finally:
                reap(workers)

    # -- kill recovery: SIGKILL the busiest of three mid-count ---------
    recovery_graph = random_cluster_graph(8, 4, 0.5, seed=41)
    delay = 0.3 if quick else 0.5
    with ClusterCoordinator(
        heartbeat_interval=0.2, replication=2
    ) as coordinator:
        workers = spawn(coordinator, 3, faults=f"delay_execute={delay}")
        try:
            coordinator.wait_for_workers(3, timeout=60)
            with Engine(processes=1) as engine:
                recovery_expected = engine.count(query, recovery_graph)
                engine.attach_cluster(coordinator)
                engine.register_structure(
                    "recovery", recovery_graph, pin=True, shard_count=8
                )
                before = time.perf_counter()
                assert (
                    engine.count_sharded(query, "recovery")
                    == recovery_expected
                )
                unperturbed = time.perf_counter() - before

                outcome: dict = {}

                def run_count() -> None:
                    outcome["value"] = engine.count_sharded(
                        query, "recovery"
                    )

                thread = threading.Thread(target=run_count)
                before = time.perf_counter()
                thread.start()
                victim_pid = None
                deadline = time.perf_counter() + 30
                while victim_pid is None and time.perf_counter() < deadline:
                    details = coordinator.status()["worker_details"]
                    busy = [
                        detail
                        for detail in details.values()
                        if detail["in_flight"] > 0 and detail["pid"]
                    ]
                    if busy:
                        victim_pid = max(
                            busy, key=lambda d: d["in_flight"]
                        )["pid"]
                    else:
                        time.sleep(0.01)
                assert victim_pid is not None, "no worker ever held a job"
                os_.kill(victim_pid, signal.SIGKILL)
                thread.join(timeout=120)
                assert not thread.is_alive(), "count wedged after the kill"
                perturbed = time.perf_counter() - before
                assert outcome["value"] == recovery_expected
                stats = coordinator.stats_snapshot()
                recovery = {
                    "delay_execute_seconds": delay,
                    "unperturbed_seconds": unperturbed,
                    "perturbed_seconds": perturbed,
                    "ratio": (
                        perturbed / unperturbed if unperturbed else None
                    ),
                    "reassignments": stats["reassignments"],
                    "worker_failures": stats["worker_failures"],
                    "jobs_failed": stats["jobs_failed"],
                }
                assert recovery["reassignments"] >= 1
        finally:
            reap(workers)

    return {
        "query": query,
        "tuples": structure.total_tuples,
        "shard_count": shard_count,
        "warm_repeats": warm_repeats,
        "count": expected,
        "local_cold_seconds": local_cold,
        "local_warm_seconds_per_call": local_warm,
        "routing": rows,
        "kill_recovery": recovery,
    }


#: Every benchmark section, in report order.  ``--only`` picks a subset.
SECTIONS = {
    "scenarios": bench_scenarios,
    "families": bench_families,
    "repeated_query": bench_repeated_query,
    "sharded_counting": bench_sharded_counting,
    "semijoin_memo": bench_semijoin_memo,
    "warm_workers": bench_warm_workers,
    "serving": bench_serving,
    "registry_serving": bench_registry_serving,
    "tracing_overhead": bench_tracing_overhead,
    "columnar_core": bench_columnar_core,
    "live_updates": bench_live_updates,
    "routing": bench_routing,
    "cluster": bench_cluster,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / single repeats (CI smoke)"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an already-recorded run key instead of failing",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="SECTION",
        help="run only this section (repeatable); the run is recorded "
        "under a distinct key so it never clobbers a full run",
    )
    args = parser.parse_args(argv)

    selected = list(args.only) if args.only else list(SECTIONS)
    unknown = [name for name in selected if name not in SECTIONS]
    if unknown:
        parser.error(
            f"unknown section(s) {unknown}; choose from {sorted(SECTIONS)}"
        )

    output = Path(args.output)
    if not output.parent.is_dir():
        parser.error(f"output directory {output.parent} does not exist")

    # Fail the clobber check *before* spending minutes benchmarking;
    # append_report re-checks at write time regardless.
    run_key = f"{__version__}:{'quick' if args.quick else 'full'}"
    if args.only:
        run_key += ":only-" + "+".join(
            name for name in SECTIONS if name in selected
        )
    if output.exists() and not args.force:
        try:
            existing = json.loads(output.read_text())
        except json.JSONDecodeError:
            existing = {}
        if isinstance(existing, dict) and run_key in (
            existing.get("runs") or {}
        ):
            parser.error(
                f"run key {run_key!r} already exists in {output}; "
                "pass --force to overwrite it"
            )

    started = time.perf_counter()
    report = {
        "benchmark": "engine",
        "version": __version__,
        "python": platform.python_version(),
        "quick": args.quick,
    }
    for name in SECTIONS:
        if name in selected:
            report[name] = SECTIONS[name](args.quick)

    summary: dict = {"total_seconds": time.perf_counter() - started}
    if "repeated_query" in report:
        summary["repeated_query_speedup"] = report["repeated_query"]["speedup"]
    if "scenarios" in report:
        summary["scenario_median_speedup"] = sorted(
            row["speedup"] for row in report["scenarios"]
        )[len(report["scenarios"]) // 2]
    if "sharded_counting" in report:
        summary["sharded_speedup"] = report["sharded_counting"][
            "sharded_speedup"
        ]
    if "semijoin_memo" in report:
        summary["semijoin_memo_speedup"] = report["semijoin_memo"]["speedup"]
    if "warm_workers" in report:
        summary["warm_workers_speedup"] = report["warm_workers"]["speedup"]
    if "serving" in report:
        summary["serving_p99_seconds"] = report["serving"][
            "latency_p99_seconds"
        ]
        summary["serving_throughput_rps"] = report["serving"][
            "throughput_rps"
        ]
    if "registry_serving" in report:
        summary["registry_serving_speedup_p50"] = report["registry_serving"][
            "ref_speedup_p50"
        ]
    if "tracing_overhead" in report:
        summary["tracing_overhead_pct"] = report["tracing_overhead"][
            "overhead_pct"
        ]
    if "columnar_core" in report:
        summary["columnar_core_best_encoded_speedup"] = report[
            "columnar_core"
        ]["best_encoded_speedup"]
    if "live_updates" in report:
        summary["live_updates_speedup"] = report["live_updates"][
            "speedup_at_largest"
        ]
    if "routing" in report:
        summary["routing_budget_overhead_pct"] = report["routing"][
            "budget_overhead_pct"
        ]
        summary["routing_reject_p99_seconds"] = report["routing"][
            "reject_p99_seconds"
        ]
        summary["routing_abort_ratio"] = report["routing"]["abort_ratio"]
    if "cluster" in report:
        summary["cluster_kill_recovery_ratio"] = report["cluster"][
            "kill_recovery"
        ]["ratio"]
        summary["cluster_reassignments"] = report["cluster"][
            "kill_recovery"
        ]["reassignments"]
    report["summary"] = summary

    store = append_report(output, run_key, report, force=args.force)
    output.write_text(json.dumps(store, indent=2) + "\n")
    print(f"appended run {run_key!r} to {output} ({len(store['runs'])} runs kept)")

    def _ms(seconds: float | None) -> str:
        # A run where nothing completed has no percentiles; the print
        # must still show the failed/rejected counts that explain why.
        return "n/a" if seconds is None else f"{seconds * 1000:.1f}ms"

    if "repeated_query" in report:
        repeated = report["repeated_query"]
        print(
            f"repeated-query: cold {repeated['cold_seconds']:.4f}s, "
            f"warm {repeated['warm_seconds']:.4f}s, "
            f"speedup {repeated['speedup']:.1f}x"
        )
    if "sharded_counting" in report:
        sharded = report["sharded_counting"]
        print(
            f"sharded 10^4-tuple counting ({sharded['tuples']} tuples): "
            f"whole {sharded['whole_single_process_seconds']:.4f}s, "
            f"sharded-parallel {sharded['sharded_parallel_seconds']:.4f}s, "
            f"speedup {sharded['sharded_speedup']:.1f}x"
        )
    if "semijoin_memo" in report:
        semijoin = report["semijoin_memo"]
        print(
            f"semijoin+memo vs per-term backtracking: "
            f"{semijoin['semijoin_memo_seconds']:.4f}s vs "
            f"{semijoin['backtracking_seconds']:.4f}s, "
            f"speedup {semijoin['speedup']:.1f}x"
        )
    if "warm_workers" in report:
        warm_workers = report["warm_workers"]
        print(
            f"warm workers ({warm_workers['tuples']} tuples, "
            f"{warm_workers['repeats']} repeat calls): "
            f"cold pool {warm_workers['cold_pool_seconds']:.4f}s, "
            f"resident pool {warm_workers['resident_pool_seconds']:.4f}s, "
            f"speedup {warm_workers['speedup']:.1f}x "
            f"({warm_workers['worker_context_hits']} worker context hits)"
        )
    if "serving" in report:
        serving = report["serving"]
        rps = serving["throughput_rps"]
        print(
            f"serving ({serving['clients']} clients x "
            f"{serving['requests_per_client']} requests over HTTP): "
            f"{serving['completed']} completed"
            + (f" at {rps:.1f} req/s" if rps is not None else "")
            + f" ({serving['failed']} failed), "
            f"p50 {_ms(serving['latency_p50_seconds'])}, "
            f"p99 {_ms(serving['latency_p99_seconds'])}; "
            f"burst of {serving['burst_size']}: "
            f"{serving['burst_rejected_429']} rejected (429); "
            f"{serving['lingering_children']} children after shutdown"
        )
    if "registry_serving" in report:
        registry_serving = report["registry_serving"]
        print(
            f"registry serving ({registry_serving['tuples']} tuples, "
            f"{registry_serving['requests_per_mode']} requests/mode): "
            f"inline p50 {_ms(registry_serving['inline_p50_seconds'])} "
            f"({registry_serving['inline_request_bytes']} B/request) vs "
            f"ref p50 {_ms(registry_serving['ref_p50_seconds'])} "
            f"({registry_serving['ref_request_bytes']} B/request), "
            f"speedup {registry_serving['ref_speedup_p50']:.1f}x"
        )
    if "tracing_overhead" in report:
        tracing = report["tracing_overhead"]
        print(
            f"tracing overhead ({tracing['tuples']} tuples, "
            f"{tracing['calls']} sharded calls): "
            f"traced p50 {_ms(tracing['traced_p50_seconds'])} vs "
            f"untraced p50 {_ms(tracing['untraced_p50_seconds'])} "
            f"({tracing['overhead_pct']:+.1f}%)"
        )
    if "columnar_core" in report:
        columnar = report["columnar_core"]
        for row in columnar["scenarios"]:
            parts = ", ".join(
                f"{backend} {row['backends'][backend]['seconds_per_call']:.3f}s"
                for backend in columnar["backends"]
            )
            print(
                f"columnar core ({row['scenario']}: {row['tuples']} tuples, "
                f"{row['shard_count']} shards): {parts}; best encoded "
                f"speedup {row['best_encoded_speedup']:.1f}x"
            )
    if "live_updates" in report:
        live = report["live_updates"]
        for row in live["scenarios"]:
            parts = ", ".join(
                f"{backend} {row['backends'][backend]['speedup']:.1f}x"
                for backend in live["backends"]
            )
            print(
                f"live updates ({row['scenario']}: {row['tuples']} tuples, "
                f"{row['updates']} updates): delta vs re-registration "
                f"{row['speedup']:.1f}x ({parts})"
            )
    if "routing" in report:
        routing = report["routing"]
        overhead = routing["budget_overhead_pct"]
        print(
            f"routing ({routing['structures']} structures, "
            f"{routing['reject_requests']} reject requests): "
            f"FPT allow p50 {_ms(routing['allow_p50_seconds'])} vs "
            f"budget p50 {_ms(routing['budget_p50_seconds'])}"
            + (f" ({overhead:+.1f}%)" if overhead is not None else "")
            + f"; hard reject p99 {_ms(routing['reject_p99_seconds'])}; "
            f"budget abort {routing['abort_seconds']:.3f}s vs "
            f"{routing['abort_budget_seconds']:.1f}s budget "
            f"({routing['abort_ratio']:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
