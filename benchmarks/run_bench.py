#!/usr/bin/env python
"""The engine benchmark: cold vs. warm counting over realistic workloads.

Runs the scenario query mixes (social network, triple store, movies) and
the generator query families (paths, stars, grids, random UCQs) through
two paths:

* **cold** -- a fresh compile for every call, i.e. what every
  ``count_answers`` call cost before :mod:`repro.engine` existed;
* **warm** -- one compile, then repeated execution of the cached plan
  (the engine's batch path).

Results are written to ``BENCH_engine.json`` (see ``--output``), the
repo's first recorded perf baseline.  The headline number is the
repeated-query speedup: warm-path batch counting must beat cold per-call
counting by a wide margin for the plan cache to be worth serving from.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import Engine, __version__
from repro.engine.executor import execute
from repro.engine.plan import compile_plan
from repro.structures.random_gen import random_graph
from repro.workloads.generators import (
    example_4_2_query,
    example_5_21_query,
    grid_query,
    path_query,
    random_ucq,
    star_query,
    union_of_paths_query,
)
from repro.workloads.scenarios import all_scenarios


def _time(callable_, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        before = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - before)
    return best, result


def bench_scenarios(quick: bool) -> list[dict]:
    """Every scenario query, cold compile+execute vs. warm execute."""
    out: list[dict] = []
    for scenario in all_scenarios():
        structure = scenario.structure()
        engine = Engine()
        for name, query in scenario.queries.items():
            ep = query.to_ep()
            cold_seconds, count = _time(
                lambda: execute(compile_plan(ep), structure)
            )
            engine.count(ep, structure)  # warm the caches
            warm_seconds, warm_count = _time(
                lambda: engine.count(ep, structure), repeats=1 if quick else 3
            )
            assert count == warm_count, (scenario.name, name)
            out.append(
                {
                    "scenario": scenario.name,
                    "query": name,
                    "count": count,
                    "cold_seconds": cold_seconds,
                    "warm_seconds": warm_seconds,
                    "speedup": cold_seconds / warm_seconds if warm_seconds else None,
                }
            )
    return out


def bench_families(quick: bool) -> list[dict]:
    """Generator families over random graphs: compile cost vs. execute cost."""
    sizes = [10] if quick else [10, 20]
    families = {
        "path4_pairs": path_query(4, quantify_interior=True),
        "star4_centers": star_query(4, quantify_leaves=True),
        "grid2x3": grid_query(2, 3),
        "union_paths_123": union_of_paths_query([1, 2, 3]),
        "example_4_2": example_4_2_query(),
        "example_5_21": example_5_21_query(),
        "random_ucq": random_ucq(3, 4, 3, liberal_count=2, seed=7),
    }
    out: list[dict] = []
    for name, query in families.items():
        for size in sizes:
            structure = random_graph(size, 0.25, seed=size)
            compile_seconds, plan = _time(lambda: compile_plan(query))
            execute_seconds, count = _time(
                lambda: execute(plan, structure), repeats=1 if quick else 3
            )
            out.append(
                {
                    "family": name,
                    "structure_size": size,
                    "count": count,
                    "compile_seconds": compile_seconds,
                    "execute_seconds": execute_seconds,
                    "compile_share": compile_seconds
                    / (compile_seconds + execute_seconds),
                }
            )
    return out


def bench_repeated_query(quick: bool) -> dict:
    """The headline benchmark: one query served against many structures.

    Cold path: compile + execute per call (the pre-engine behavior of
    ``count_answers``).  Warm path: the engine's ``count_many`` with the
    plan compiled once.  This is the serving pattern the ROADMAP's
    traffic scenario cares about.
    """
    query = example_5_21_query()
    structure_count = 8 if quick else 24
    structures = [
        random_graph(8, 0.3, seed=seed) for seed in range(structure_count)
    ]

    def cold() -> list[int]:
        # A fresh compilation per call, exactly like the seed pipeline.
        return [execute(compile_plan(query), s) for s in structures]

    engine = Engine()
    engine.compile(query)  # warm the plan cache

    def warm() -> list[int]:
        return engine.count_many([query], structures, parallel=False)[0]

    cold_seconds, cold_counts = _time(cold)
    warm_seconds, warm_counts = _time(warm, repeats=1 if quick else 3)
    assert cold_counts == warm_counts
    return {
        "query": "example_5_21",
        "structures": structure_count,
        "structure_size": 8,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else None,
        "counts_checksum": sum(cold_counts),
        "engine_stats": engine.stats().as_dict(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / single repeats (CI smoke)"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    output = Path(args.output)
    if not output.parent.is_dir():
        parser.error(f"output directory {output.parent} does not exist")

    started = time.perf_counter()
    report = {
        "benchmark": "engine",
        "version": __version__,
        "python": platform.python_version(),
        "quick": args.quick,
        "scenarios": bench_scenarios(args.quick),
        "families": bench_families(args.quick),
        "repeated_query": bench_repeated_query(args.quick),
    }
    repeated = report["repeated_query"]
    report["summary"] = {
        "total_seconds": time.perf_counter() - started,
        "repeated_query_speedup": repeated["speedup"],
        "scenario_median_speedup": sorted(
            row["speedup"] for row in report["scenarios"]
        )[len(report["scenarios"]) // 2],
    }

    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    print(
        f"repeated-query: cold {repeated['cold_seconds']:.4f}s, "
        f"warm {repeated['warm_seconds']:.4f}s, "
        f"speedup {repeated['speedup']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
