"""The structure registry: residency, pinning, eviction, and the HTTP surface.

Covers the acceptance surface of the named-structure layer: counting by
reference through the engine and over a fresh HTTP connection carrying
zero structure bytes, LRU eviction of unpinned entries under capacity
pressure, pinned entries surviving ``clear_caches()``, 404 on unknown
references, and re-registration under the same name with different
data invalidating the stale worker-resident contexts.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import (
    Engine,
    RegistryFull,
    StructureRegistry,
    UnknownStructureError,
)
from repro.engine.registry import approximate_structure_bytes
from repro.exceptions import ReproError
from repro.serve import (
    BackgroundServer,
    BadRequest,
    CountingServer,
    CountingService,
    structure_or_ref_from_json,
)
from repro.structures.random_gen import random_cluster_graph
from repro.structures.structure import Structure

TRIANGLE = {"E": [(1, 2), (2, 3), (3, 1)]}
PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


def triangle() -> Structure:
    return Structure.from_relations(TRIANGLE)


def clustered(seed: int = 13) -> Structure:
    return random_cluster_graph(4, 6, 0.4, seed=seed)


# ----------------------------------------------------------------------
# Registry unit semantics
# ----------------------------------------------------------------------
def test_registry_register_resolve_and_entry_stats():
    registry = StructureRegistry(max_entries=4)
    entry, previous, evicted = registry.register("tri", triangle(), pin=False)
    assert previous is None and evicted == []
    assert registry.resolve("tri") == triangle()
    assert registry.entry("tri").hits == 2  # resolve + entry both count
    assert "tri" in registry and len(registry) == 1
    again, previous, _ = registry.register("tri", triangle(), pin=False)
    assert previous is entry
    assert again.registrations == 2
    assert again.hits == 2  # per-entry hits survive re-registration
    hits, misses, registrations, evictions = registry.stats_snapshot()
    assert (hits, misses, registrations, evictions) == (2, 0, 2, 0)


def test_registry_rejects_bad_names():
    registry = StructureRegistry()
    for bad in ("", "a/b", "x\n", "y" * 300, 7):
        with pytest.raises(ReproError):
            registry.register(bad, triangle())  # type: ignore[arg-type]


def test_registry_unknown_name_is_a_distinct_error():
    registry = StructureRegistry()
    registry.register("known", triangle())
    with pytest.raises(UnknownStructureError) as excinfo:
        registry.resolve("unknown")
    assert excinfo.value.known == ("known",)
    assert registry.stats_snapshot()[1] == 1  # one miss


def test_registry_evicts_least_recently_used_unpinned():
    registry = StructureRegistry(max_entries=2)
    registry.register("a", triangle(), pin=False)
    registry.register("b", clustered(), pin=False)
    registry.resolve("a")  # b becomes the LRU entry
    _, _, evicted = registry.register("c", clustered(seed=5), pin=False)
    assert [e.name for e in evicted] == ["b"]
    assert registry.names() == ("a", "c")
    assert registry.stats_snapshot()[3] == 1  # one eviction


def test_registry_eviction_skips_pinned_entries():
    registry = StructureRegistry(max_entries=2)
    registry.register("pinned", triangle(), pin=True)
    registry.register("lru", clustered(), pin=False)
    _, _, evicted = registry.register("fresh", clustered(seed=5), pin=False)
    assert [e.name for e in evicted] == ["lru"]
    assert "pinned" in registry


def test_registry_full_when_everything_is_pinned():
    registry = StructureRegistry(max_entries=2)
    registry.register("a", triangle(), pin=True)
    registry.register("b", clustered(), pin=True)
    with pytest.raises(RegistryFull):
        registry.register("c", clustered(seed=5), pin=True)
    # The failed registration must not have disturbed the survivors.
    assert registry.names() == ("a", "b")
    assert registry.resolve("a") == triangle()


def test_failed_reregistration_keeps_the_previous_entry():
    small = triangle()
    budget = approximate_structure_bytes(small) + 16
    registry = StructureRegistry(max_entries=10, max_bytes=budget)
    registry.register("a", small, pin=True)
    # Replacing "a" with something too big for the budget fails -- and
    # must leave the old "a" serving, not drop it on the floor.
    with pytest.raises(RegistryFull):
        registry.register("a", clustered(), pin=True)
    assert registry.resolve("a") == small


def test_registry_byte_capacity_evicts_and_rejects():
    small = triangle()
    budget = approximate_structure_bytes(small) + 16
    registry = StructureRegistry(max_entries=10, max_bytes=budget)
    registry.register("first", small, pin=False)
    # A second structure of the same weight cannot coexist: the first
    # (unpinned) entry is evicted to fit it.
    _, _, evicted = registry.register("second", triangle(), pin=False)
    assert [e.name for e in evicted] == ["first"]
    # A structure bigger than the whole budget is rejected outright.
    with pytest.raises(RegistryFull):
        registry.register("huge", clustered(), pin=False)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def test_engine_counts_by_name_everywhere():
    with Engine(processes=2) as engine:
        graph = triangle()
        expected = engine.count(PATH_QUERY, graph)
        engine.register_structure("tri", graph, pin=False)
        assert engine.count(PATH_QUERY, "tri") == expected
        assert engine.count_sharded(PATH_QUERY, "tri", parallel=False) == expected
        assert engine.count_many([PATH_QUERY], ["tri", graph], parallel=False) == [
            [expected, expected]
        ]
        stats = engine.stats()
        assert stats.registry_registrations == 1
        assert stats.registry_hits >= 3
        with pytest.raises(UnknownStructureError):
            engine.count(PATH_QUERY, "nope")
        assert engine.stats().registry_misses == 1


def test_engine_count_sharded_by_name_reuses_registration_shard_plan():
    with Engine(processes=2) as engine:
        graph = clustered()
        entry = engine.register_structure("net", graph, pin=False, shard_count=4)
        assert entry.shard_count == 4
        expected = engine.count_sharded(PATH_QUERY, graph, shard_count=4,
                                        parallel=False)
        # The name defaults to the registration-time shard plan: same
        # object, no re-partitioning.
        assert engine.count_sharded(PATH_QUERY, "net", parallel=False) == expected
        assert entry.sharded is engine.registry.peek("net").sharded
        # An explicit different shard_count still works (re-partitions).
        assert (
            engine.count_sharded(PATH_QUERY, "net", shard_count=2, parallel=False)
            == expected
        )


def test_engine_register_is_not_fooled_by_references():
    with Engine(processes=2) as engine:
        with pytest.raises(ReproError):
            engine.register_structure("alias", "other")  # type: ignore[arg-type]


def test_pinned_entries_survive_clear_caches():
    with Engine(processes=2) as engine:
        graph = triangle()
        engine.register_structure("tri", graph, pin=True)
        expected = engine.count(PATH_QUERY, "tri")
        engine.clear_caches()
        # The registry is state, not cache: the name still resolves and
        # the pin set is untouched.
        assert engine.count(PATH_QUERY, "tri") == expected
        assert engine.registry.peek("tri").pinned
        assert graph.fingerprint() in engine.pool.pinned_fingerprints()


def test_pinning_broadcasts_into_live_workers():
    with Engine(processes=2) as engine:
        graph = clustered()
        # Start the pool cold on unrelated work first, so the pin below
        # must reach already-forked workers by broadcast.
        engine.count_sharded(
            PATH_QUERY, clustered(seed=5), shard_count=4, parallel=True
        )
        assert engine.pool.started
        engine.register_structure("net", graph, pin=True, shard_count=4)
        per_worker = engine.pool.worker_pinned_fingerprints()
        assert len(per_worker) == 2
        assert all(graph.fingerprint() in keys for keys in per_worker)
        # The first sharded call by reference runs fully on pinned
        # contexts: every shard job is a worker-context hit.
        engine.pool.reset_stats()
        engine.count_sharded(PATH_QUERY, "net", parallel=True)
        hits, misses = engine.pool.stats_snapshot()
        assert misses == 0 and hits > 0


def test_reregistration_with_different_data_invalidates_workers():
    with Engine(processes=2) as engine:
        old = clustered(seed=13)
        new = clustered(seed=14)
        assert old.fingerprint() != new.fingerprint()
        engine.register_structure("net", old, pin=True, shard_count=4)
        engine.count_sharded(PATH_QUERY, "net", parallel=True)  # starts the pool
        engine.register_structure("net", new, pin=True, shard_count=4)
        assert engine.registry.peek("net").structure == new
        parent_pins = engine.pool.pinned_fingerprints()
        assert old.fingerprint() not in parent_pins
        assert new.fingerprint() in parent_pins
        for keys in engine.pool.worker_pinned_fingerprints():
            assert old.fingerprint() not in keys
            assert new.fingerprint() in keys


def test_resharding_same_data_unpins_the_old_shard_plan():
    with Engine(processes=2) as engine:
        graph = clustered()
        first = engine.register_structure("net", graph, pin=True, shard_count=4)
        engine.count_sharded(PATH_QUERY, "net", parallel=True)  # starts the pool
        old_shard_prints = {
            s.fingerprint() for s in first.sharded.non_empty_shards()
        }
        second = engine.register_structure("net", graph, pin=True, shard_count=2)
        new_shard_prints = {
            s.fingerprint() for s in second.sharded.non_empty_shards()
        }
        retired = old_shard_prints - new_shard_prints
        assert retired  # the plans genuinely differ
        parent_pins = set(engine.pool.pinned_fingerprints())
        assert not retired & parent_pins
        assert graph.fingerprint() in parent_pins
        for keys in engine.pool.worker_pinned_fingerprints():
            assert not retired & set(keys)
            assert graph.fingerprint() in keys


def test_unregister_unpins_everywhere():
    with Engine(processes=2) as engine:
        graph = triangle()
        engine.register_structure("tri", graph, pin=True)
        engine.count_sharded(PATH_QUERY, "tri", parallel=True)
        assert engine.unregister_structure("tri")
        assert not engine.unregister_structure("tri")  # idempotent: gone
        assert graph.fingerprint() not in engine.pool.pinned_fingerprints()
        for keys in engine.pool.worker_pinned_fingerprints():
            assert graph.fingerprint() not in keys
        with pytest.raises(UnknownStructureError):
            engine.count(PATH_QUERY, "tri")


# ----------------------------------------------------------------------
# The wire form
# ----------------------------------------------------------------------
def test_structure_or_ref_decoding():
    assert structure_or_ref_from_json({"ref": "tenants"}) == "tenants"
    assert structure_or_ref_from_json({"E": [[1, 2]]}) == Structure.from_relations(
        {"E": [(1, 2)]}
    )
    with pytest.raises(BadRequest):
        structure_or_ref_from_json({"ref": ""})
    with pytest.raises(BadRequest):
        structure_or_ref_from_json({"ref": "x", "relations": {}})


# ----------------------------------------------------------------------
# End to end over HTTP
# ----------------------------------------------------------------------
def _request(
    base: str, method: str, path: str, payload: dict | None = None
) -> tuple[int, dict, dict]:
    """``(status, body, headers)`` of one fresh-connection request."""
    request = urllib.request.Request(
        f"{base}{path}",
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def test_http_registry_end_to_end():
    engine = Engine(processes=2)
    server = CountingServer(
        service=CountingService(engine=engine, owns_engine=True), port=0
    )
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        # Register once, shipping the data.
        status, entry, _ = _request(
            base,
            "PUT",
            "/structures/tenants",
            {"structure": {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}}},
        )
        assert status == 200
        assert entry["name"] == "tenants" and entry["pinned"]
        assert entry["relations"] == {"E": 3}

        # Count by reference from a *fresh* connection (urllib opens a
        # new one per request): the body carries zero structure bytes.
        ref_body = {"query": PATH_QUERY, "structure": {"ref": "tenants"}}
        assert b"relations" not in json.dumps(ref_body).encode()
        status, body, _ = _request(base, "POST", "/count", ref_body)
        assert (status, body) == (200, {"count": 3})
        status, body, _ = _request(
            base,
            "POST",
            "/count_sharded",
            {"query": PATH_QUERY, "structure": {"ref": "tenants"},
             "parallel": False},
        )
        assert (status, body) == (200, {"count": 3})
        status, body, _ = _request(
            base,
            "POST",
            "/count_many",
            {"queries": [PATH_QUERY], "structures": [{"ref": "tenants"}],
             "parallel": False},
        )
        assert (status, body) == (200, {"counts": [[3]]})

        # Introspection: the list, the single entry, health and metrics.
        status, listing, _ = _request(base, "GET", "/structures")
        assert status == 200 and listing["entries"] == 1
        assert listing["structures"][0]["name"] == "tenants"
        status, single, _ = _request(base, "GET", "/structures/tenants")
        assert status == 200 and single["hits"] >= 3
        status, health, _ = _request(base, "GET", "/healthz")
        assert health["registry_entries"] == 1
        status, metrics, _ = _request(base, "GET", "/metrics")
        assert metrics["registry"]["entries"] == 1
        assert metrics["engine"]["registry_hits"] >= 3

        # Unknown references are 404s naming what exists.
        status, body, _ = _request(
            base, "POST", "/count",
            {"query": PATH_QUERY, "structure": {"ref": "ghost"}},
        )
        assert status == 404
        assert body["known_structures"] == ["tenants"]
        status, body, _ = _request(base, "GET", "/structures/ghost")
        assert status == 404

        # Delete, then the reference goes stale.
        status, body, _ = _request(base, "DELETE", "/structures/tenants")
        assert (status, body) == (200, {"deleted": "tenants"})
        status, body, _ = _request(base, "DELETE", "/structures/tenants")
        assert status == 404
        status, body, _ = _request(
            base, "POST", "/count",
            {"query": PATH_QUERY, "structure": {"ref": "tenants"}},
        )
        assert status == 404 and body["known_structures"] == []


def test_http_error_bodies_name_paths_and_methods():
    server = CountingServer(service=CountingService(), port=0)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        status, body, _ = _request(base, "POST", "/nope", {})
        assert status == 404
        assert "/count" in body["known_paths"]
        assert "/structures/<name>" in body["known_paths"]

        status, body, headers = _request(base, "GET", "/count")
        assert status == 405
        assert body["allowed"] == ["POST"]
        assert headers["Allow"] == "POST"

        status, body, headers = _request(base, "POST", "/structures/x", {})
        assert status == 405
        assert body["allowed"] == ["DELETE", "GET", "PATCH", "PUT"]
        assert headers["Allow"] == "DELETE, GET, PATCH, PUT"

        status, body, _ = _request(
            base, "PUT", f"/structures/{'x' * 250}",
            {"structure": {"E": [[1, 2]]}},
        )
        assert status == 400

        # JSON true is a bool, not the integer 1: shard_count rejects it.
        status, body, _ = _request(
            base, "PUT", "/structures/ok",
            {"structure": {"E": [[1, 2]]}, "shard_count": True},
        )
        assert status == 400 and "shard_count" in body["error"]
        status, body, _ = _request(
            base, "POST", "/count_sharded",
            {"query": "E(x, y)", "structure": {"E": [[1, 2]]},
             "shard_count": True},
        )
        assert status == 400 and "shard_count" in body["error"]
